#!/usr/bin/env bash
# Offline verification gate for the workspace. No network access needed:
# proptest/criterion resolve to the vendored shims in vendor/.
#
#   scripts/verify.sh          build + tests + clippy (tier-1)
#   scripts/verify.sh --full   additionally runs the property-test suites
#                              (--features proptest) and compiles the
#                              criterion benches (--features criterion-benches)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== enw-analyze (lints + baseline diff + waiver audit) =="
# Fails on deny findings, on findings not present in the committed
# baseline snapshot (refresh with --write-baseline analyze-baseline.json
# after review), and on stale lint.toml waivers.
cargo run --release -q -p enw-analyze -- --baseline analyze-baseline.json --audit-waivers

echo "== exp16_serving_slo --smoke (serving runtime end to end) =="
cargo run --release -q -p enw-bench --bin exp16_serving_slo -- --smoke
test -s BENCH_serving.json || { echo "exp16 did not emit BENCH_serving.json"; exit 1; }

echo "== exp17_stage_breakdown --smoke (trace attribution across all lanes) =="
cargo run --release -q -p enw-bench --bin exp17_stage_breakdown -- --smoke
test -s BENCH_stage_breakdown.json || { echo "exp17 did not emit BENCH_stage_breakdown.json"; exit 1; }
python3 -c "import json; r = json.load(open('BENCH_stage_breakdown.json')); assert r['deterministic_rerun'] and len(r['lanes']) == 4, r" \
    || { echo "BENCH_stage_breakdown.json failed to parse or is incomplete"; exit 1; }

echo "== exp18_alloc_audit --smoke (zero-allocation hot paths) =="
cargo run --release -q -p enw-bench --bin exp18_alloc_audit -- --smoke
test -s BENCH_alloc.json || { echo "exp18 did not emit BENCH_alloc.json"; exit 1; }
python3 -c "
import json
r = json.load(open('BENCH_alloc.json'))
assert len(r['lanes']) == 4, r
assert all(l['meets_90pct_target'] for l in r['lanes']), r
assert r['serve']['zero_alloc_steady_state'], r
" || { echo "BENCH_alloc.json failed to parse or misses the alloc-reduction targets"; exit 1; }

echo "== exp19_fleet_sweep --smoke (sharded multi-node serving) =="
cargo run --release -q -p enw-bench --bin exp19_fleet_sweep -- --smoke
test -s BENCH_fleet.json || { echo "exp19 did not emit BENCH_fleet.json"; exit 1; }
python3 -c "
import json
r = json.load(open('BENCH_fleet.json'))
assert r['deterministic_rerun'], r
assert len(r['cells']) == 9, r
assert {c['scenario'] for c in r['cells']} == {'diurnal_zipf', 'bursty_uniform', 'flash_hot_set'}, r
assert {c['nodes'] for c in r['cells']} == {2, 4, 8}, r
assert all(len(c['lanes']) == 2 and 'shard' in c for c in r['cells']), r
" || { echo "BENCH_fleet.json failed to parse or misses sweep cells"; exit 1; }

echo "== exp20_dse --smoke (co-design search over every lane) =="
cargo run --release -q -p enw-bench --bin exp20_dse -- --smoke
test -s BENCH_dse.json || { echo "exp20 did not emit BENCH_dse.json"; exit 1; }
python3 -c "
import json
r = json.load(open('BENCH_dse.json'))
assert r['deterministic_rerun'], r
lanes = r['lanes']
assert {l['lane'] for l in lanes} == {'crossbar', 'xmann', 'cam', 'recsys', 'serve'}, r
def dominates(a, b):
    no_worse = (a['latency_ns'] <= b['latency_ns'] and a['energy_pj'] <= b['energy_pj']
                and a['quality_per_area'] >= b['quality_per_area'])
    better = (a['latency_ns'] < b['latency_ns'] or a['energy_pj'] < b['energy_pj']
              or a['quality_per_area'] > b['quality_per_area'])
    return no_worse and better
for l in lanes:
    front = l['front']
    assert len(front) >= 3, (l['lane'], len(front))
    for a in front:
        for b in front:
            assert a is b or not dominates(a, b), (l['lane'], a['key'], b['key'])
assert any(l['default']['dominated_by_front'] for l in lanes), 'no lane beats its default'
assert len(r['picks']['selected']) == len(lanes), r
" || { echo "BENCH_dse.json failed to parse or front is not a valid Pareto set"; exit 1; }

echo "== exp15_parallel_scaling --smoke (thread-scaling gate) =="
# Exits nonzero if any kernel's 2-thread speedup drops below 1.0x, the
# matmul 8-thread speedup falls below 0.9x of its 4-thread one (panel
# contention plateau), or any lane loses bit-identity across thread counts.
cargo run --release -q -p enw-bench --bin exp15_parallel_scaling -- --smoke
test -s BENCH_parallel_kernels.json || { echo "exp15 did not emit BENCH_parallel_kernels.json"; exit 1; }

echo "== exp21_deep_analog --smoke (streaming tiled analog training) =="
# Exits nonzero if any determinism/zero-alloc gate fails or the deep
# stack falls under 6 trainable layers.
cargo run --release -q -p enw-bench --bin exp21_deep_analog -- --smoke
test -s BENCH_analog_training.json || { echo "exp21 did not emit BENCH_analog_training.json"; exit 1; }
python3 -c "
import json
r = json.load(open('BENCH_analog_training.json'))
d = r['determinism']
assert d['rerun_identical'] and d['thread_invariant'] and d['resume_identical'], r
assert r['zero_alloc']['zero_alloc_steady_state'], r
assert r['deep']['layers'] >= 6, r
assert len(r['surface']) >= 8, r
" || { echo "BENCH_analog_training.json failed to parse or misses the training gates"; exit 1; }

if [[ "${1:-}" == "--full" ]]; then
    echo "== cargo test -q --features proptest (property suites) =="
    cargo test -q --features proptest
    echo "== cargo check --benches --features criterion-benches =="
    cargo check -p enw-bench --benches --features criterion-benches
fi

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
