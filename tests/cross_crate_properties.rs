//! Property-based tests spanning crate boundaries: hardware simulators
//! must agree with their functional references for arbitrary inputs.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_core::cam::array::{TcamArray, TcamConfig};
use enw_core::cam::cells;
use enw_core::crossbar::devices;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::mann::encoding::{cube_pattern, encode_levels};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::nn::backend::LinearBackend;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::model::EmbeddingTable;
use proptest::prelude::*;

proptest! {
    // Keep case counts moderate: several of these build arrays per case.
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// TCAM nearest search == brute-force Hamming argmin for any stored
    /// set and any query.
    #[test]
    fn tcam_nearest_is_exact(seed in any::<u64>(), n in 1usize..64, width in 1usize..96) {
        let mut rng = Rng64::new(seed);
        let mut cam = TcamArray::new(width, cells::cmos_16t(), TcamConfig::default());
        let words: Vec<BitVec> = (0..n)
            .map(|_| (0..width).map(|_| rng.bernoulli(0.5)).collect::<BitVec>())
            .collect();
        for w in &words {
            cam.write(w.clone());
        }
        let q: BitVec = (0..width).map(|_| rng.bernoulli(0.5)).collect();
        let (hit, _) = cam.search_nearest(&q);
        let hit = hit.expect("non-empty");
        let best = words.iter().map(|w| w.hamming(&q)).min().expect("non-empty");
        prop_assert_eq!(hit.distance, best);
    }

    /// Range-encoded cube queries never miss a stored word that lies
    /// within the L-infinity radius (no false negatives; over-coverage is
    /// allowed and expected).
    #[test]
    fn cube_search_has_no_false_negatives(
        seed in any::<u64>(),
        dims in 1usize..6,
        radius in 0u32..4,
    ) {
        let bits = 4u32;
        let mut rng = Rng64::new(seed);
        let stored: Vec<Vec<u32>> = (0..24)
            .map(|_| (0..dims).map(|_| rng.below(16) as u32).collect())
            .collect();
        let query: Vec<u32> = (0..dims).map(|_| rng.below(16) as u32).collect();
        let pattern = cube_pattern(&query, radius, bits);
        for s in &stored {
            let linf = s.iter().zip(&query).map(|(&a, &b)| a.abs_diff(b)).max().unwrap_or(0);
            if linf <= radius {
                prop_assert!(
                    pattern.matches(&encode_levels(s, bits)),
                    "stored {s:?} within radius {radius} of {query:?} but not matched"
                );
            }
        }
    }

    /// An ideal analog tile programmed to a target matrix computes the
    /// same forward product as the dense reference (within programming
    /// tolerance).
    #[test]
    fn analog_tile_forward_matches_dense(seed in any::<u64>(), rows in 1usize..8, cols in 1usize..8) {
        let mut rng = Rng64::new(seed);
        let mut tile = AnalogTile::new(rows, cols, &devices::ideal(4000), TileConfig::ideal(), &mut rng);
        let target = Matrix::random_uniform(rows, cols + 1, -0.5, 0.5, &mut rng);
        tile.program_effective(&target);
        let x: Vec<f32> = (0..cols).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let mut xa = x.clone();
        xa.push(1.0);
        let y = tile.forward(&x);
        let y_ref = target.matvec(&xa);
        for (a, b) in y.iter().zip(&y_ref) {
            prop_assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    /// Embedding gather/pool equals the dense one-hot matrix product for
    /// arbitrary index multisets (including repeats).
    #[test]
    fn gather_equals_dense_onehot(seed in any::<u64>(), n_idx in 1usize..16) {
        let mut rng = Rng64::new(seed);
        let table = EmbeddingTable::random(40, 12, &mut rng);
        let idx: Vec<usize> = (0..n_idx).map(|_| rng.below(40)).collect();
        let a = table.lookup_pool(&idx);
        let b = table.lookup_pool_dense(&idx);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Soft read of a one-hot attention equals the addressed slot exactly,
    /// for any memory contents.
    #[test]
    fn one_hot_soft_read_is_slot_read(seed in any::<u64>(), slots in 1usize..16, hot in 0usize..16) {
        let mut rng = Rng64::new(seed);
        let slots = slots.max(hot + 1);
        let mem = DifferentiableMemory::random(slots, 8, &mut rng);
        let mut w = vec![0.0f32; slots];
        w[hot] = 1.0;
        prop_assert_eq!(mem.soft_read(&w), mem.slot(hot).to_vec());
    }

    /// The best slot under any similarity stays the best after adding an
    /// unrelated orthogonal slot far from the query.
    #[test]
    fn nearest_is_stable_under_far_insertions(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut mem = DifferentiableMemory::new(3, 4);
        let q = [1.0f32, 0.2, 0.0, 0.0];
        mem.write_slot(0, &[1.0, 0.0, 0.0, 0.0]);
        mem.write_slot(1, &[0.0, 0.0, 1.0, 0.0]);
        mem.write_slot(2, &[0.0, 0.0, 0.0, -1.0]);
        let before = mem.nearest(&q, Similarity::Cosine);
        prop_assert_eq!(before, 0);
        let _ = rng.next_u64();
    }
}

use enw_core::crossbar::devices::pcm::{PcmConfig, PcmPair};
use enw_core::nn::conv::{ConvNet, ConvNetConfig, MapShape};
use enw_core::nn::rnn::RnnClassifier;
use enw_core::recsys::sequence::{InterestModel, InterestModelConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// PCM pair weights stay in [-1, 1] under arbitrary signed update
    /// sequences, with or without noise, and refresh preserves the weight.
    #[test]
    fn pcm_pair_invariants(seed in any::<u64>(), n in 1usize..60) {
        let mut rng = Rng64::new(seed);
        let mut p = PcmPair::new_with(PcmConfig::bare(), &mut rng);
        for _ in 0..n {
            p.update(rng.range(-0.3, 0.3) as f32, &mut rng);
            let w = p.weight(0.0);
            prop_assert!((-1.0..=1.0).contains(&w), "weight {w} out of range");
        }
        let before = p.weight(0.0);
        p.refresh(0.0);
        prop_assert!((p.weight(0.0) - before).abs() < 1e-4);
    }

    /// CNN forward is deterministic and bounded for bounded inputs
    /// (tanh embedding keeps the representation in [-1, 1]).
    #[test]
    fn conv_net_outputs_are_stable(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: 8, width: 8 },
            conv_channels: vec![4],
            embed_dim: 8,
            classes: 3,
        };
        let mut net = ConvNet::new(&cfg, &mut rng);
        let input: Vec<f32> = (0..64).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let a = net.embed(&input);
        let b = net.embed(&input);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    /// RNN logits depend only on the sequence (stateless between calls),
    /// and a longer prefix of distinct inputs changes them.
    #[test]
    fn rnn_is_stateless_between_calls(seed in any::<u64>(), len in 1usize..8) {
        let mut rng = Rng64::new(seed);
        let mut net = RnnClassifier::new(3, 6, 2, &mut rng);
        let seq: Vec<Vec<f32>> = (0..len)
            .map(|_| (0..3).map(|_| rng.range(-1.0, 1.0) as f32).collect())
            .collect();
        let a = net.predict(&seq);
        let b = net.predict(&seq);
        prop_assert_eq!(a, b);
    }

    /// Attention weights over any history form a distribution, and
    /// pooled interest stays inside the convex hull bound of the
    /// embeddings (max-abs bound).
    #[test]
    fn interest_attention_is_convex(seed in any::<u64>(), hist_len in 1usize..12) {
        let mut rng = Rng64::new(seed);
        let cfg = InterestModelConfig { items: 50, ..Default::default() };
        let m = InterestModel::new(&cfg, &mut rng);
        let history: Vec<usize> = (0..hist_len).map(|_| rng.below(50)).collect();
        let candidate = rng.below(50);
        let w = m.attention(&history, candidate);
        prop_assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Convexity: pooled interest can't exceed the max embedding value.
        let pooled = m.interest(&history, candidate);
        prop_assert!(pooled.iter().all(|v| v.abs() <= 0.5 + 1e-4));
    }
}

use enw_core::crossbar::pipeline::{AnalogPipeline, PipelineConfig};
use enw_core::crossbar::tiled::{TiledAnalogLayer, TilingConfig};
use enw_core::nn::data::SyntheticImages;

proptest! {
    // Pipeline cases build and write-verify program whole tile grids, so
    // keep the case count small.
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// Checkpoint/resume of the streaming tiled pipeline is byte-identical
    /// to the uninterrupted run for arbitrary seeds, split points, and
    /// tile grids (including remainder tiles).
    #[test]
    fn pipeline_resume_is_byte_identical(
        seed in any::<u64>(),
        pre in 1usize..8,
        post in 1usize..8,
        tile_rows in 2usize..12,
        tile_cols in 2usize..12,
    ) {
        let data = SyntheticImages::builder()
            .classes(3)
            .dim(64)
            .train_per_class(4)
            .test_per_class(1)
            .build(&mut Rng64::new(seed))
            .train;
        let cfg = PipelineConfig {
            net: ConvNetConfig {
                input: MapShape { channels: 1, height: 8, width: 8 },
                conv_channels: vec![2],
                embed_dim: 6,
                classes: 3,
            },
            spec: devices::rram(),
            tile: TileConfig::default(),
            tiling: TilingConfig { tile_rows, tile_cols },
            lr: 0.01,
            seed,
        };
        let mut a = AnalogPipeline::new(&cfg, &data).expect("valid pipeline config");
        a.run(&data, pre);
        let mid = a.checkpoint();
        a.run(&data, post);
        let finish = a.checkpoint();
        let mut b = AnalogPipeline::new(&cfg, &data).expect("valid pipeline config");
        b.restore(&mid).expect("own checkpoint restores");
        b.run(&data, post);
        prop_assert_eq!(b.checkpoint(), finish, "resumed run diverged");
    }

    /// A tiled layer over any grid shape covers the whole logical weight
    /// matrix: its forward read agrees with the dense product of its
    /// assembled weights for arbitrary inputs (ideal periphery, so the
    /// only difference is partial-sum association).
    #[test]
    fn tiled_forward_matches_assembled_weights(
        seed in any::<u64>(),
        out_dim in 1usize..20,
        in_dim in 1usize..20,
        tile_rows in 1usize..8,
        tile_cols in 1usize..8,
    ) {
        let mut rng = Rng64::new(seed);
        let mut layer = TiledAnalogLayer::new(
            out_dim,
            in_dim,
            &devices::ideal(4000),
            TileConfig::ideal(),
            TilingConfig { tile_rows, tile_cols },
            &mut rng,
        ).expect("valid tiled config");
        let x: Vec<f32> = (0..in_dim).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let mut xa = x.clone();
        xa.push(1.0);
        let y = layer.forward(&x);
        let y_ref = layer.weights().matvec(&xa);
        for (a, b) in y.iter().zip(&y_ref) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
