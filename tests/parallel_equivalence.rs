//! Serial-vs-parallel bit-exactness across crate boundaries: every
//! parallel entry point must return outputs bitwise identical to its
//! serial counterpart at any worker count (the determinism contract of
//! `enw_core::parallel` — fixed chunk boundaries, ascending-index
//! accumulation inside every chunk).
//!
//! Per-crate unit tests cover each kernel in isolation; this suite checks
//! the composed, cross-crate paths the experiment binaries exercise.

use enw_core::cam::array::TcamConfig;
use enw_core::cam::bank::TcamBank;
use enw_core::cam::cells;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::parallel;
use enw_core::recsys::model::EmbeddingTable;

/// Worker counts exercised by every test: serial fallback, an uneven
/// split, and more workers than most chunk counts.
const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn par_matvec_matches_serial_bitwise() {
    let mut rng = Rng64::new(100);
    // 200 rows exceeds the row-chunk size, so multi-worker runs really
    // split the matrix; 90 columns leaves an uneven tail.
    let m = Matrix::random_uniform(200, 90, -1.0, 1.0, &mut rng);
    let x: Vec<f32> = (0..90).map(|_| rng.range(-1.0, 1.0) as f32).collect();
    let serial = m.matvec(&x);
    for threads in THREAD_COUNTS {
        let par = parallel::with_threads(threads, || m.par_matvec(&x));
        assert_eq!(bits(&serial), bits(&par), "threads = {threads}");
    }
}

#[test]
fn par_matmul_matches_serial_bitwise() {
    let mut rng = Rng64::new(101);
    let a = Matrix::random_uniform(150, 130, -1.0, 1.0, &mut rng);
    let b = Matrix::random_uniform(130, 110, -1.0, 1.0, &mut rng);
    let serial = a.matmul(&b);
    for threads in THREAD_COUNTS {
        let par = parallel::with_threads(threads, || a.par_matmul(&b));
        assert_eq!(bits(serial.as_slice()), bits(par.as_slice()), "threads = {threads}");
    }
}

#[test]
fn parallel_tcam_bank_search_matches_serial_bitwise() {
    let mut rng = Rng64::new(102);
    // 40 arrays x 24 words x 64 bits clears the bank's parallel-dispatch
    // threshold, so multi-worker runs take the fan-out path.
    let mut bank = TcamBank::new(64, 24, cells::fefet_2t(), TcamConfig::default());
    for _ in 0..960 {
        let w: BitVec = (0..64).map(|_| rng.bernoulli(0.5)).collect();
        bank.write(w);
    }
    let queries: Vec<BitVec> =
        (0..8).map(|_| (0..64).map(|_| rng.bernoulli(0.5)).collect()).collect();
    let reference: Vec<_> = {
        let mut b = bank.clone();
        parallel::with_threads(1, || queries.iter().map(|q| b.search_nearest(q)).collect())
    };
    for threads in THREAD_COUNTS {
        let mut b = bank.clone();
        let got: Vec<_> = parallel::with_threads(threads, || {
            queries.iter().map(|q| b.search_nearest(q)).collect()
        });
        assert_eq!(reference, got, "threads = {threads}");
    }
}

#[test]
fn parallel_embedding_gather_matches_serial_bitwise() {
    let mut rng = Rng64::new(103);
    let tables: Vec<EmbeddingTable> =
        (0..6).map(|_| EmbeddingTable::random(512, 48, &mut rng)).collect();
    let index_lists: Vec<Vec<usize>> =
        (0..6).map(|_| (0..100).map(|_| rng.below(512)).collect()).collect();
    let serial: Vec<Vec<f32>> =
        tables.iter().zip(&index_lists).map(|(t, idx)| t.lookup_pool(idx)).collect();
    for threads in THREAD_COUNTS {
        // Fan the per-table gathers out exactly as RecModel::predict does.
        let par: Vec<Vec<f32>> = parallel::with_threads(threads, || {
            parallel::map_chunks(tables.len(), 1, |r| {
                r.map(|t| tables[t].lookup_pool(&index_lists[t])).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        });
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(bits(s), bits(p), "threads = {threads}");
        }
    }
}

#[test]
fn enw_threads_env_var_forces_serial_execution() {
    // ENW_THREADS=1 must pin the worker count (and with_threads must
    // override it in scoped sections). Env mutation is process-global, so
    // this file must hold no other test that reads ENW_THREADS.
    std::env::set_var("ENW_THREADS", "1");
    assert_eq!(parallel::max_threads(), 1);
    let mut rng = Rng64::new(104);
    let a = Matrix::random_uniform(140, 120, -1.0, 1.0, &mut rng);
    let b = Matrix::random_uniform(120, 100, -1.0, 1.0, &mut rng);
    let pinned = a.par_matmul(&b); // serial under ENW_THREADS=1
    let scoped = parallel::with_threads(4, || a.par_matmul(&b));
    assert_eq!(bits(pinned.as_slice()), bits(scoped.as_slice()));
    assert_eq!(parallel::max_threads(), 1, "with_threads must restore the env-pinned count");
    std::env::remove_var("ENW_THREADS");
}
