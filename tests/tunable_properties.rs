//! Property-based tests of the `Tunable` API contract: for every impl in
//! the workspace, decoded configurations re-encode to a fixed point of
//! the parameter space, and out-of-bounds points are always rejected
//! with a typed error.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_core::cam::TcamConfig;
use enw_core::crossbar::tile::TileConfig;
use enw_core::mann::EmbeddingConfig;
use enw_core::nn::mlp::SgdConfig;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::model::RecModelConfig;
use enw_core::serve::policy::BatchPolicy;
use enw_core::tunable::{AxisDomain, AxisValue, Tunable};
use enw_core::xmann::XmannConfig;
use proptest::prelude::*;

/// Round-trip contract on a sampled point `p`: when `decode(p)` accepts
/// (cross-field constraints may legitimately reject a sampled point),
/// the decoded config's encoding is in-bounds, decodes, and is a fixed
/// point — one decode/encode round collapses any lossy family (e.g.
/// multi-layer MLP shapes) and further rounds change nothing.
fn assert_roundtrip<T: Tunable>(what: &str, seed: u64) {
    let space = T::space();
    let mut rng = Rng64::new(seed);
    let p = space.sample(&mut rng);
    assert!(space.validate(&p).is_ok(), "{what}: sample left the space: {}", p.key());
    let Ok(c) = T::decode(&p) else {
        return;
    };
    let p2 = c.encode();
    assert!(space.validate(&p2).is_ok(), "{what}: encode left the space: {}", p2.key());
    let c2 =
        T::decode(&p2).unwrap_or_else(|e| panic!("{what}: re-decode of {} failed: {e}", p2.key()));
    assert_eq!(p2.key(), c2.encode().key(), "{what}: encode is not a fixed point");
}

/// Every axis pushed one step past its bound must fail both space
/// validation and decode, whatever the rest of the point holds.
fn assert_out_of_bounds_rejected<T: Tunable>(what: &str, seed: u64) {
    let space = T::space();
    let mut rng = Rng64::new(seed);
    let p = space.sample(&mut rng);
    for axis in space.axes() {
        let bad = match axis.domain {
            AxisDomain::Int { max, step, .. } => {
                p.with(axis.name, AxisValue::Int(max + step.max(1)))
            }
            AxisDomain::Real { max, .. } => p.with(axis.name, AxisValue::Real(max + 1.0)),
            AxisDomain::Choice { .. } => {
                p.with(axis.name, AxisValue::Choice("not-a-registered-option"))
            }
        };
        assert!(
            space.validate(&bad).is_err(),
            "{what}: axis {} accepted an out-of-bounds value",
            axis.name
        );
        assert!(
            T::decode(&bad).is_err(),
            "{what}: decode accepted out-of-bounds axis {}",
            axis.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// `decode(encode(c))` is the identity on every decoded config, for
    /// every `Tunable` impl in the workspace.
    #[test]
    fn every_tunable_roundtrips(seed in any::<u64>()) {
        assert_roundtrip::<TileConfig>("TileConfig", seed);
        assert_roundtrip::<XmannConfig>("XmannConfig", seed);
        assert_roundtrip::<TcamConfig>("TcamConfig", seed);
        assert_roundtrip::<SgdConfig>("SgdConfig", seed);
        assert_roundtrip::<EmbeddingConfig>("EmbeddingConfig", seed);
        assert_roundtrip::<RecModelConfig>("RecModelConfig", seed);
        assert_roundtrip::<BatchPolicy>("BatchPolicy", seed);
    }

    /// Out-of-bounds decode always errors — no axis silently clamps.
    #[test]
    fn out_of_bounds_decode_always_errors(seed in any::<u64>()) {
        assert_out_of_bounds_rejected::<TileConfig>("TileConfig", seed);
        assert_out_of_bounds_rejected::<XmannConfig>("XmannConfig", seed);
        assert_out_of_bounds_rejected::<TcamConfig>("TcamConfig", seed);
        assert_out_of_bounds_rejected::<SgdConfig>("SgdConfig", seed);
        assert_out_of_bounds_rejected::<EmbeddingConfig>("EmbeddingConfig", seed);
        assert_out_of_bounds_rejected::<RecModelConfig>("RecModelConfig", seed);
        assert_out_of_bounds_rejected::<BatchPolicy>("BatchPolicy", seed);
    }
}
