//! Workspace-level integration tests: each exercises a pipeline that
//! crosses crate boundaries, mirroring one of the paper's experiments
//! end to end (at test-suite scale).

use enw_core::cam::array::{TcamArray, TcamConfig};
use enw_core::cam::cells;
use enw_core::cam::lsh_memory::TcamKeyValueMemory;
use enw_core::crossbar::tiki_taka::TikiTakaConfig;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::crossbar::{devices, train};
use enw_core::mann::embedding::{EmbeddingConfig, EmbeddingNet};
use enw_core::mann::fewshot::{evaluate, SearchMethod};
use enw_core::mann::lsh::RandomHyperplaneLsh;
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::nn::activation::Activation;
use enw_core::nn::backend::LinearBackend;
use enw_core::nn::data::SyntheticImages;
use enw_core::nn::fewshot::{EpisodeSampler, FewShotDomain};
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::model::{RecModel, RecModelConfig};
use enw_core::recsys::quantize::QuantizedTable;
use enw_core::recsys::trace::TraceGenerator;
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;

/// Sec. II end to end: an MLP trained on simulated ECRAM crossbars with a
/// realistic periphery beats chance by a wide margin and stays in the
/// neighbourhood of the FP32 baseline.
#[test]
fn analog_training_tracks_digital_baseline() {
    let mut rng = Rng64::new(1);
    let split = SyntheticImages::builder()
        .classes(4)
        .dim(36)
        .train_per_class(40)
        .test_per_class(15)
        .noise(0.4)
        .build(&mut rng);
    let cfg = SgdConfig { epochs: 4, learning_rate: 0.05 };

    let mut digital = Mlp::digital(&[36, 20, 4], Activation::Tanh, &mut rng);
    let fp = train::train_and_evaluate(&mut digital, &split, &cfg, &mut rng).test_accuracy;

    let mut analog = train::analog_mlp(
        &[36, 20, 4],
        &devices::ecram(),
        TileConfig::default(),
        Activation::Tanh,
        &mut rng,
    );
    let ana = train::train_and_evaluate(&mut analog, &split, &cfg, &mut rng).test_accuracy;

    assert!(fp > 0.8, "digital baseline failed to learn: {fp}");
    assert!(ana > 0.25 + 0.3, "analog training barely above chance: {ana}");
    assert!(ana > fp - 0.25, "analog {ana} too far below digital {fp}");
}

/// Sec. II-B5 end to end: on strongly asymmetric RRAM devices, the
/// coupled-dynamics trainer must beat plain SGD on the same data.
#[test]
fn tiki_taka_beats_plain_sgd_on_rram() {
    let split = SyntheticImages::builder()
        .classes(5)
        .dim(36)
        .train_per_class(50)
        .test_per_class(20)
        .noise(1.0)
        .build(&mut Rng64::new(2));
    let cfg = SgdConfig { epochs: 4, learning_rate: 0.05 };

    let mut rng = Rng64::new(3);
    let mut plain = train::analog_mlp(
        &[36, 20, 5],
        &devices::rram(),
        TileConfig::ideal(),
        Activation::Tanh,
        &mut rng,
    );
    let acc_plain = train::train_and_evaluate(&mut plain, &split, &cfg, &mut rng).test_accuracy;

    let mut rng = Rng64::new(3);
    let mut tt = train::tiki_taka_mlp(
        &[36, 20, 5],
        &devices::rram(),
        TileConfig::ideal(),
        TikiTakaConfig::default(),
        Activation::Tanh,
        &mut rng,
    );
    let acc_tt = train::train_and_evaluate(&mut tt, &split, &cfg, &mut rng).test_accuracy;

    assert!(
        acc_tt > acc_plain,
        "Tiki-Taka ({acc_tt}) must beat plain SGD ({acc_plain}) on asymmetric devices"
    );
}

/// Sec. III: the X-MANN architectural simulator must produce bit-identical
/// soft reads to the functional reference and identical nearest slots.
#[test]
fn xmann_is_functionally_equivalent_to_reference() {
    let mut rng = Rng64::new(4);
    let slots = 512;
    let dim = 32;
    let rows: Vec<Vec<f32>> =
        (0..slots).map(|_| (0..dim).map(|_| rng.range(-1.0, 1.0) as f32).collect()).collect();
    let mut x = Xmann::new(slots, dim, XmannConfig::default(), XmannCostParams::default());
    x.load_memory(&rows);
    let mut reference = DifferentiableMemory::new(slots, dim);
    for (i, r) in rows.iter().enumerate() {
        reference.write_slot(i, r);
    }
    for trial in 0..5 {
        let w: Vec<f32> = {
            let raw: Vec<f32> = (0..slots).map(|_| rng.uniform_f32()).collect();
            let sum: f32 = raw.iter().sum();
            raw.into_iter().map(|v| v / sum).collect()
        };
        assert_eq!(x.soft_read(&w).value, reference.soft_read(&w), "trial {trial}");
    }
    // Content addressing peaks on the planted best match.
    let planted = rows[37].clone();
    let addr = x.content_address(&planted, 20.0).value;
    assert_eq!(enw_core::numerics::vector::argmax(&addr), 37);
}

/// Sec. IV: the TCAM nearest-match search must agree with brute-force
/// Hamming search, and the full LSH pipeline must classify like the
/// reference software memory.
#[test]
fn tcam_search_agrees_with_brute_force() {
    let mut rng = Rng64::new(5);
    let width = 96;
    let mut cam = TcamArray::new(width, cells::cmos_16t(), TcamConfig::default());
    let words: Vec<BitVec> =
        (0..200).map(|_| (0..width).map(|_| rng.bernoulli(0.5)).collect::<BitVec>()).collect();
    for w in &words {
        cam.write(w.clone());
    }
    for _ in 0..20 {
        let q: BitVec = (0..width).map(|_| rng.bernoulli(0.5)).collect();
        let (hit, _) = cam.search_nearest(&q);
        let hit = hit.expect("non-empty");
        let brute = words
            .iter()
            .map(|w| w.hamming(&q))
            .enumerate()
            .min_by_key(|&(i, d)| (d, i))
            .expect("non-empty");
        assert_eq!((hit.index, hit.distance), brute);
    }
}

/// Sec. IV end to end: embedding → LSH → TCAM memory performs one-shot
/// classification well above chance, and the LSH signature degrades
/// retrieval gracefully versus exact cosine.
#[test]
fn lsh_tcam_pipeline_learns_one_shot() {
    let mut rng = Rng64::new(6);
    let domain = FewShotDomain::generate(30, 48, &mut rng);
    let cfg = EmbeddingConfig {
        hidden: vec![48],
        embed_dim: 16,
        background_classes: 15,
        samples_per_class: 20,
        epochs: 6,
        learning_rate: 0.05,
    };
    let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);
    let mut mem =
        TcamKeyValueMemory::new(16, 16, 256, cells::fefet_2t(), TcamConfig::default(), &mut rng);
    let mut correct = 0;
    let mut total = 0;
    for _ in 0..10 {
        let classes = rng.sample_indices(15, 5);
        for (local, &off) in classes.iter().enumerate() {
            let emb = net.embed(&domain.sample(15 + off, &mut rng));
            mem.update(&emb, local);
        }
        for (local, &off) in classes.iter().enumerate() {
            let emb = net.embed(&domain.sample(15 + off, &mut rng));
            let (hit, _) = mem.retrieve(&emb);
            if hit.expect("written this episode").value == local {
                correct += 1;
            }
            total += 1;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.5, "one-shot TCAM accuracy {acc} (chance 0.2)");
    assert!(mem.total_cost().energy_pj > 0.0);
}

/// Sec. IV-B: on the same episodes, the range-encoded TCAM search must
/// stay within a bounded gap of the FP32 cosine baseline (the paper's
/// 96.00% vs 99.06% relationship).
#[test]
fn range_encoding_close_to_cosine() {
    let mut rng = Rng64::new(7);
    let domain = FewShotDomain::generate(30, 48, &mut rng);
    let cfg = EmbeddingConfig {
        hidden: vec![48],
        embed_dim: 16,
        background_classes: 15,
        samples_per_class: 20,
        epochs: 6,
        learning_rate: 0.05,
    };
    let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);
    let sampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 3 };
    let cosine = evaluate(
        &mut net,
        &domain,
        sampler,
        15,
        SearchMethod::Exact(Similarity::Cosine),
        20,
        &mut Rng64::new(100),
    );
    let ranged = evaluate(
        &mut net,
        &domain,
        sampler,
        15,
        SearchMethod::RangeEncoded { bits: 4 },
        20,
        &mut Rng64::new(100),
    );
    assert!(cosine.accuracy > 0.5, "cosine baseline failed: {}", cosine.accuracy);
    assert!(
        ranged.accuracy > cosine.accuracy - 0.15,
        "range-encoded {} too far below cosine {}",
        ranged.accuracy,
        cosine.accuracy
    );
    assert!(ranged.searches_per_query >= 1.0);
}

/// Sec. V: quantized embedding gathers flow through the same MLP stacks
/// with bounded CTR drift (the compression experiment's invariant).
#[test]
fn quantized_recsys_predictions_track_fp32() {
    let cfg = RecModelConfig {
        dense_features: 16,
        bottom_mlp: vec![32, 16],
        tables: vec![(2_000, 4); 4],
        embedding_dim: 16,
        top_mlp: vec![32],
        interaction: enw_core::recsys::model::Interaction::Concat,
    };
    let mut rng = Rng64::new(8);
    let mut model = RecModel::new(&cfg, &mut rng);
    let quantized: Vec<QuantizedTable> =
        model.tables().iter().map(|t| QuantizedTable::from_table(t, 8)).collect();
    let originals = model.tables().to_vec();
    let gen = TraceGenerator::new(&cfg, 1.0);
    for q in gen.batch(50, &mut rng) {
        let pooled_fp: Vec<Vec<f32>> =
            originals.iter().zip(&q.sparse).map(|(t, i)| t.lookup_pool(i)).collect();
        let pooled_q: Vec<Vec<f32>> =
            quantized.iter().zip(&q.sparse).map(|(t, i)| t.lookup_pool(i)).collect();
        let a = model.predict_with_pooled(&q.dense, &pooled_fp);
        let b = model.predict_with_pooled(&q.dense, &pooled_q);
        assert!((a - b).abs() < 0.05, "int8 CTR drift too large: {a} vs {b}");
    }
}

/// Cross-cutting: the analog tile is a drop-in LinearBackend — a network
/// assembled from one digital and one analog layer trains end to end.
#[test]
fn mixed_digital_analog_network_trains() {
    use enw_core::nn::layer::DenseLayer;
    let mut rng = Rng64::new(9);
    let split = SyntheticImages::builder()
        .classes(3)
        .dim(16)
        .train_per_class(50)
        .test_per_class(10)
        .noise(0.25)
        .build(&mut rng);
    // Digital layer feeding... an analog output layer (heterogeneous
    // backends can't share one Mlp's type parameter, so train two stacked
    // single-layer nets by hand).
    let mut tile = AnalogTile::new(3, 16, &devices::ecram(), TileConfig::ideal(), &mut rng);
    let target = Matrix::random_uniform(3, 17, -0.3, 0.3, &mut rng);
    tile.program_effective(&target);
    let mut out_layer = DenseLayer::new(tile, Activation::Identity);
    // Train the analog layer alone on raw pixels (logistic regression).
    for _ in 0..10 {
        for i in 0..split.train.len() {
            let x = split.train.input(i);
            let logits = out_layer.forward(x);
            let (_, grad) =
                enw_core::nn::loss::softmax_cross_entropy(&logits, split.train.label(i));
            out_layer.backward(&grad);
            out_layer.apply_update(0.05);
        }
    }
    let mut correct = 0;
    for i in 0..split.test.len() {
        let logits = out_layer.infer(split.test.input(i));
        if enw_core::numerics::vector::argmax(&logits) == split.test.label(i) {
            correct += 1;
        }
    }
    let acc = correct as f64 / split.test.len() as f64;
    assert!(acc > 0.6, "analog logistic regression accuracy {acc}");
}

/// The LSH encoder preserves neighbourhood structure end to end through
/// the TCAM: nearest-by-cosine and nearest-by-TCAM agree on well-separated
/// clusters.
#[test]
fn lsh_tcam_agrees_with_cosine_on_separated_clusters() {
    let mut rng = Rng64::new(10);
    let lsh = RandomHyperplaneLsh::new(256, 8, &mut rng);
    let mut cam = TcamArray::new(256, cells::cmos_16t(), TcamConfig::default());
    let mut keys = Vec::new();
    for c in 0..8usize {
        let mut key = vec![0.1f32; 8];
        key[c] = 1.0;
        cam.write(lsh.encode(&key));
        keys.push(key);
    }
    for c in 0..8usize {
        let mut q = vec![0.15f32; 8];
        q[c] = 0.9;
        let (hit, _) = cam.search_nearest(&lsh.encode(&q));
        assert_eq!(hit.expect("non-empty").index, c, "class {c}");
    }
}

/// Sec. I/III: the NTM machinery stores and recalls data structures —
/// the copy task round-trips exactly and a stored graph is traversable
/// by content addressing alone.
#[test]
fn ntm_tasks_round_trip() {
    use enw_core::mann::tasks::{copy, GraphMemory};
    let seq: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32 / 10.0; 6]).collect();
    let out = copy(&seq, 16);
    for (a, b) in out.iter().zip(&seq) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-4);
        }
    }
    let mut rng = Rng64::new(11);
    let mut g = GraphMemory::new(6, 16, 24, &mut rng);
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 5)] {
        g.add_edge(a, b);
    }
    assert_eq!(g.walk(0, 5), vec![0, 1, 2, 3, 4, 5]);
}

/// Sec. IV: a CNN embedding (the source papers' architecture) drives the
/// same few-shot pipeline as the MLP embedding and beats chance.
#[test]
fn conv_embedding_runs_fewshot_pipeline() {
    use enw_core::mann::embedding::ConvEmbeddingNet;
    let mut rng = Rng64::new(12);
    let domain = FewShotDomain::generate(24, 64, &mut rng); // 8x8 canvas
    let cfg = EmbeddingConfig {
        hidden: vec![6], // conv channels
        embed_dim: 16,
        background_classes: 12,
        samples_per_class: 15,
        epochs: 4,
        learning_rate: 0.03,
    };
    let mut net = ConvEmbeddingNet::train(&domain, &cfg, &mut rng);
    let sampler = EpisodeSampler { n_way: 4, k_shot: 1, n_query: 3 };
    let out = evaluate(
        &mut net,
        &domain,
        sampler,
        12,
        SearchMethod::Exact(Similarity::Cosine),
        15,
        &mut Rng64::new(200),
    );
    assert!(out.accuracy > 0.45, "CNN few-shot accuracy {} (chance 0.25)", out.accuracy);
}

/// Sec. IV-C: a banked TCAM holding more words than any single array
/// still returns exact nearest matches at flat search latency.
#[test]
fn banked_tcam_scales_capacity() {
    use enw_core::cam::bank::TcamBank;
    let mut rng = Rng64::new(13);
    let mut bank = TcamBank::new(64, 32, cells::fefet_2t(), TcamConfig::default());
    let words: Vec<BitVec> =
        (0..200).map(|_| (0..64).map(|_| rng.bernoulli(0.5)).collect::<BitVec>()).collect();
    for w in &words {
        bank.write(w.clone());
    }
    assert!(bank.array_count() > 1, "capacity must span multiple arrays");
    let q: BitVec = (0..64).map(|_| rng.bernoulli(0.5)).collect();
    let (hit, cost) = bank.search_nearest(&q);
    let brute = words.iter().map(|w| w.hamming(&q)).min().expect("non-empty");
    assert_eq!(hit.expect("non-empty").distance, brute);
    // Search latency is one array evaluation + combine, regardless of rows.
    assert!(cost.latency_ns < 10.0, "banked search latency {}", cost.latency_ns);
}

/// Sec. V: serving and training views of the same model agree on which
/// configurations are embedding-dominated.
#[test]
fn serving_and_training_models_are_consistent() {
    use enw_core::recsys::characterize::RooflineMachine;
    use enw_core::recsys::serving;
    use enw_core::recsys::training::{step_breakdown, Cluster};
    let machine = RooflineMachine::server_cpu();
    let memory_cfg = RecModelConfig::memory_bound();
    let compute_cfg = RecModelConfig::compute_bound();
    // Serving: batching buys the compute-bound model far more throughput.
    let gain = |cfg: &RecModelConfig| {
        serving::throughput(cfg, 128, &machine) / serving::throughput(cfg, 1, &machine)
    };
    assert!(gain(&compute_cfg) > gain(&memory_cfg));
    // Training: the memory-bound model must not be compute-bottlenecked.
    let b = step_breakdown(&memory_cfg, 4096, &Cluster::cpu_cluster(8));
    assert_ne!(b.bottleneck(), "compute");
}

/// Sec. II: a software-trained classifier survives PCM deployment at
/// t = 0 and the projection liner preserves it over time.
#[test]
fn pcm_deployment_end_to_end() {
    use enw_core::crossbar::devices::pcm::PcmConfig;
    use enw_core::crossbar::inference::PcmLayer;
    let mut rng = Rng64::new(14);
    let split = SyntheticImages::builder()
        .classes(4)
        .dim(36)
        .train_per_class(40)
        .test_per_class(20)
        .noise(0.5)
        .build(&mut rng);
    let mut mlp = Mlp::digital(&[36, 16, 4], Activation::Tanh, &mut rng);
    mlp.train_sgd(&split.train, &SgdConfig { epochs: 6, learning_rate: 0.05 }, &mut rng);
    let sw = mlp.evaluate(&split.test);
    let l1 =
        PcmLayer::program(&mlp.layers()[0].backend().weights(), PcmConfig::projected(), &mut rng);
    let l2 =
        PcmLayer::program(&mlp.layers()[1].backend().weights(), PcmConfig::projected(), &mut rng);
    let classify = |x: &[f32], t: f64| {
        let mut xa = x.to_vec();
        xa.push(1.0);
        let mut h = l1.matvec(&xa, t);
        for v in &mut h {
            *v = v.tanh();
        }
        h.push(1.0);
        enw_core::numerics::vector::argmax(&l2.matvec(&h, t))
    };
    let acc_at = |t: f64| {
        let correct = (0..split.test.len())
            .filter(|&i| classify(split.test.input(i), t) == split.test.label(i))
            .count();
        correct as f64 / split.test.len() as f64
    };
    assert!(sw > 0.8, "software baseline failed: {sw}");
    assert!(acc_at(0.0) > sw - 0.15, "deployment lost too much at t=0: {}", acc_at(0.0));
    assert!(acc_at(1e8) > sw - 0.2, "projected PCM lost too much over time: {}", acc_at(1e8));
}
