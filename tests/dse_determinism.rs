//! Integration test of the E20 determinism contract: DSE search
//! trajectories, virtual-clock stamps and Pareto fronts are bit-identical
//! across reruns and across `ENW_THREADS` worker counts, for the real
//! lane evaluators (not just synthetic landscapes).
//!
//! Runs in the default tier-1 suite — determinism is a hard invariant,
//! not an optional property sweep.

use enw_core::parallel::with_threads;
use enw_dse::{explore, Lane, SearchConfig, SearchResult};

fn run_lane(lane: Lane, threads: usize) -> SearchResult {
    with_threads(threads, || explore(&lane.space(), &|p| lane.evaluate(p), &SearchConfig::smoke()))
}

/// One lane's full search result compared across 1, 2 and 8 workers and
/// across a rerun at the same width. `SearchResult` derives `PartialEq`,
/// so this compares fronts, counters, the virtual clock and the full
/// accepted-move trajectory.
fn assert_thread_invariant(lane: Lane) {
    let r1 = run_lane(lane, 1);
    let r2 = run_lane(lane, 2);
    let r8 = run_lane(lane, 8);
    assert_eq!(r1, r2, "{}: 1 vs 2 workers diverged", lane.name());
    assert_eq!(r1, r8, "{}: 1 vs 8 workers diverged", lane.name());
    assert_eq!(r1, run_lane(lane, 1), "{}: rerun at one worker drifted", lane.name());
    assert!(r1.clock_ns > 0, "{}: virtual clock never advanced", lane.name());
    assert!(r1.front.len() >= 3, "{}: front collapsed", lane.name());
}

#[test]
fn crossbar_search_is_thread_invariant() {
    assert_thread_invariant(Lane::Crossbar);
}

#[test]
fn cam_search_is_thread_invariant() {
    assert_thread_invariant(Lane::Cam);
}

#[test]
fn xmann_search_is_thread_invariant() {
    assert_thread_invariant(Lane::Xmann);
}

#[test]
fn serve_search_is_thread_invariant() {
    assert_thread_invariant(Lane::Serve);
}
