//! Allocating-vs-`_into` bit-exactness across crate boundaries: every
//! output-parameter kernel variant must produce outputs bitwise identical
//! to its allocating wrapper, at every worker count. This is the E18
//! contract — the zero-allocation fast paths are drop-in replacements,
//! not approximations.
//!
//! Per-crate unit tests cover each `_into` kernel in isolation; this
//! suite checks the composed paths the experiment binaries and the
//! serving runtime exercise, at the thread counts named by the
//! memory-discipline acceptance criteria (1, 2, 8).

use enw_core::crossbar::devices;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::nn::activation::Activation;
use enw_core::nn::backend::LinearBackend;
use enw_core::nn::mlp::Mlp;
use enw_core::numerics::rng::Rng64;
use enw_core::parallel;
use enw_core::recsys::model::{Interaction, RecModel, RecModelConfig};
use enw_core::recsys::trace::TraceGenerator;
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn crossbar_forward_and_backward_into_match_wrappers_across_threads() {
    // Two tiles built from the same seed share weights, devices and RNG
    // stream; the wrapper and the `_into` form must then stay in lockstep
    // draw for draw, noise included.
    let make = || {
        let mut rng = Rng64::new(7);
        AnalogTile::new(48, 40, &devices::rram(), TileConfig::default(), &mut rng)
    };
    let mut rng = Rng64::new(8);
    let x: Vec<f32> = (0..40).map(|_| rng.uniform_f32() - 0.5).collect();
    let d: Vec<f32> = (0..48).map(|_| rng.uniform_f32() - 0.5).collect();
    let reference = parallel::with_threads(1, || {
        let mut t = make();
        (t.forward(&x), t.backward(&d))
    });
    for threads in THREAD_COUNTS {
        let (y, dx) = parallel::with_threads(threads, || {
            let mut t = make();
            let mut y = vec![0.0f32; 48];
            let mut dx = vec![0.0f32; 40];
            t.forward_into(&x, &mut y);
            t.backward_into(&d, &mut dx);
            (y, dx)
        });
        assert_eq!(bits(&reference.0), bits(&y), "forward, threads = {threads}");
        assert_eq!(bits(&reference.1), bits(&dx), "backward, threads = {threads}");
    }
}

#[test]
fn mlp_predict_into_matches_predict_across_threads() {
    let mut rng = Rng64::new(9);
    let mut mlp = Mlp::digital(&[24, 32, 6], Activation::Relu, &mut rng);
    let x: Vec<f32> = (0..24).map(|_| rng.uniform_f32() - 0.5).collect();
    let reference = parallel::with_threads(1, || mlp.predict(&x));
    for threads in THREAD_COUNTS {
        let out = parallel::with_threads(threads, || {
            let mut out = vec![0.0f32; 6];
            mlp.predict_into(&x, &mut out);
            out
        });
        assert_eq!(bits(&reference), bits(&out), "threads = {threads}");
    }
}

#[test]
fn mann_memory_into_forms_match_across_threads() {
    let mut rng = Rng64::new(10);
    let mem = DifferentiableMemory::random(96, 24, &mut rng);
    let q: Vec<f32> = (0..24).map(|_| rng.uniform_f32() - 0.5).collect();
    let sims_ref = parallel::with_threads(1, || mem.similarities(&q, Similarity::Cosine));
    let w_ref = parallel::with_threads(1, || mem.content_address(&q, Similarity::Cosine, 2.0));
    let r_ref = parallel::with_threads(1, || mem.soft_read(&w_ref));
    for threads in THREAD_COUNTS {
        parallel::with_threads(threads, || {
            let mut sims = vec![0.0f32; 96];
            let mut w = vec![0.0f32; 96];
            let mut r = vec![0.0f32; 24];
            mem.similarities_into(&q, Similarity::Cosine, &mut sims);
            mem.content_address_into(&q, Similarity::Cosine, 2.0, &mut w);
            mem.soft_read_into(&w_ref, &mut r);
            assert_eq!(bits(&sims_ref), bits(&sims), "similarities, threads = {threads}");
            assert_eq!(bits(&w_ref), bits(&w), "content_address, threads = {threads}");
            assert_eq!(bits(&r_ref), bits(&r), "soft_read, threads = {threads}");
        });
    }
}

#[test]
fn xmann_into_forms_match_wrappers_and_costs_across_threads() {
    let (slots, dim) = (80, 20);
    let mut rng = Rng64::new(11);
    let rows: Vec<Vec<f32>> =
        (0..slots).map(|_| (0..dim).map(|_| rng.uniform_f32() - 0.5).collect()).collect();
    let mut xm = Xmann::new(slots, dim, XmannConfig::default(), XmannCostParams::default());
    xm.load_memory(&rows);
    let q: Vec<f32> = (0..dim).map(|_| rng.uniform_f32() - 0.5).collect();
    let w_ref = parallel::with_threads(1, || xm.content_address(&q, 1.5));
    let r_ref = parallel::with_threads(1, || xm.soft_read(&w_ref.value));
    for threads in THREAD_COUNTS {
        parallel::with_threads(threads, || {
            let mut w = vec![0.0f32; slots];
            let mut r = vec![0.0f32; dim];
            let w_cost = xm.content_address_into(&q, 1.5, &mut w);
            let r_cost = xm.soft_read_into(&w_ref.value, &mut r);
            assert_eq!(bits(&w_ref.value), bits(&w), "content_address, threads = {threads}");
            assert_eq!(bits(&r_ref.value), bits(&r), "soft_read, threads = {threads}");
            // The cost model must not depend on which variant ran.
            assert_eq!(w_ref.cost, w_cost, "content_address cost, threads = {threads}");
            assert_eq!(r_ref.cost, r_cost, "soft_read cost, threads = {threads}");
        });
    }
}

#[test]
fn recsys_predict_batch_into_matches_wrapper_across_threads() {
    let mut rng = Rng64::new(12);
    let cfg = RecModelConfig {
        dense_features: 12,
        bottom_mlp: vec![24, 12],
        tables: vec![(400, 6); 5],
        embedding_dim: 12,
        top_mlp: vec![16],
        interaction: Interaction::DotPairwise,
    };
    let mut model = RecModel::new(&cfg, &mut rng);
    let gen = TraceGenerator::new(&cfg, 1.0);
    let queries: Vec<_> = (0..32).map(|_| gen.query(&mut rng)).collect();
    let reference = parallel::with_threads(1, || model.predict_batch(&queries));
    for threads in THREAD_COUNTS {
        let out = parallel::with_threads(threads, || {
            let mut out = vec![0.0f32; queries.len()];
            model.predict_batch_into(&queries, &mut out);
            out
        });
        assert_eq!(bits(&reference), bits(&out), "threads = {threads}");
    }
}
