//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! The build must succeed with zero network access, so the real
//! `proptest` crate cannot be resolved from a registry. This vendored
//! stand-in implements the subset the property tests rely on:
//!
//! - `proptest::prelude::*` (`Strategy`, `any`, `prop::collection::vec`,
//!   `ProptestConfig`, and the `proptest!` / `prop_assert!` /
//!   `prop_assert_eq!` macros)
//! - strategies over numeric ranges, `any::<u64>()`, `any::<bool>()`,
//!   and vectors with fixed or ranged length
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! fully deterministic (a fixed seed mixed with the case index, so
//! failures reproduce without a persistence file), and there is no
//! shrinking — a failing case panics with the case number instead of a
//! minimized input.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let span = self.end - self.start;
            self.start + (rng.next_u64() % span.max(1) as u64) as usize
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            let span = self.end - self.start;
            self.start + (rng.next_u64() % u64::from(span.max(1))) as u32
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            let span = self.end - self.start;
            self.start + rng.next_u64() % span.max(1)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span.max(1)) as i32
        }
    }

    /// Values generatable by [`any`].
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`ArbitraryValue`]; the return type of [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> SizeRange {
            SizeRange { lo: r.start as usize, hi: r.end as usize }
        }
    }

    /// Strategy producing `Vec`s of `element` values; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)` with a fixed or ranged length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    /// Subset of upstream's config: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this shim trades depth for a
            // fast offline suite.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift* generator driving value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, ArbitraryValue, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of upstream's `prelude::prop` module alias, so tests can
    /// write `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of test functions of the form
/// `#[test] fn name(arg in strategy, ...) { body }` (doc comments and
/// extra attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    // Fixed seed mixed with the case index: failures
                    // reproduce without a persistence file.
                    let mut rng = $crate::test_runner::TestRng::new(
                        0x9E37_79B9_7F4A_7C15u64 ^ ((case as u64) << 32 | case as u64),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

/// `assert!` with proptest's name; no shrinking, plain panic.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's name; no shrinking, plain panic.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::new(9);
        for _ in 0..100 {
            let v = prop::collection::vec(any::<bool>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let v = prop::collection::vec(0.0f32..1.0, 4).generate(&mut rng);
        assert_eq!(v.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16 })]

        /// The macro itself: bindings, doc comments, multiple args.
        #[test]
        fn macro_generates_cases(n in 1usize..10, x in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
        }
    }
}
