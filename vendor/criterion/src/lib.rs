//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! The build must succeed with zero network access, so the real
//! `criterion` crate cannot be resolved from a registry. This shim keeps
//! the `benches/*.rs` targets compiling and runnable: each benchmark is
//! timed with a simple warmup + fixed-budget measurement loop and the
//! median-of-batches nanoseconds per iteration is printed. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to `iter`; runs and times the body.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `body`: short warmup, then batches until the time budget is
    /// spent; records the fastest batch (least-noise estimate).
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // Warmup and batch-size calibration.
        let calib = Instant::now();
        let mut calib_iters = 0u64;
        while calib.elapsed() < Duration::from_millis(50) {
            black_box(body());
            calib_iters += 1;
        }
        let batch = calib_iters.max(1);
        let mut best = f64::INFINITY;
        let measure = Instant::now();
        while measure.elapsed() < Duration::from_millis(300) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: f64::NAN };
    f(&mut b);
    if b.ns_per_iter < 1_000.0 {
        println!("{label:<48} {:10.1} ns/iter", b.ns_per_iter);
    } else if b.ns_per_iter < 1_000_000.0 {
        println!("{label:<48} {:10.2} us/iter", b.ns_per_iter / 1e3);
    } else {
        println!("{label:<48} {:10.2} ms/iter", b.ns_per_iter / 1e6);
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver; created by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("fp32", 4).label, "fp32/4");
        assert_eq!(BenchmarkId::from_parameter(256).label, "256");
    }

    #[test]
    fn bencher_records_positive_time() {
        let mut b = Bencher { ns_per_iter: f64::NAN };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter >= 0.0);
    }
}
