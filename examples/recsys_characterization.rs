//! Recommendation-workload characterization walkthrough (paper Sec. V).
//!
//! ```text
//! cargo run --release --example recsys_characterization
//! ```
//!
//! Sweeps one architecture knob at a time — table count, pooling factor,
//! MLP width — and reports where each configuration lands on the roofline,
//! then sizes an embedding cache against Zipf-skewed traffic.

use enw_core::numerics::rng::{Rng64, ZipfSampler};
use enw_core::recsys::cache::{EmbeddingCache, MemoryEnergy};
use enw_core::recsys::characterize::{profile_batched, Bound, RooflineMachine};
use enw_core::recsys::model::{Interaction, RecModelConfig};
use enw_core::report::{percent, Table};

fn base_config() -> RecModelConfig {
    RecModelConfig {
        dense_features: 64,
        bottom_mlp: vec![128, 64, 32],
        tables: vec![(500_000, 8); 8],
        embedding_dim: 32,
        top_mlp: vec![128, 64],
        interaction: Interaction::Concat,
    }
}

fn classify(cfg: &RecModelConfig, machine: &RooflineMachine) -> (f64, &'static str) {
    let p = profile_batched(cfg, 128);
    let emb_t = machine.time_seconds(&p.embeddings);
    let mlp_t = machine.time_seconds(&p.bottom_mlp)
        + machine.time_seconds(&p.top_mlp)
        + machine.time_seconds(&p.interaction);
    let share = emb_t / (emb_t + mlp_t);
    let label = match machine.bound(&p.total()) {
        Bound::Compute => "compute-bound",
        Bound::Memory => "memory-bound",
    };
    (share, label)
}

fn main() {
    let machine = RooflineMachine::server_cpu();
    println!(
        "machine: {:.1} TFLOP/s, {:.0} GB/s (balance {:.0} FLOP/B); batch 128\n",
        machine.peak_flops / 1e12,
        machine.mem_bandwidth / 1e9,
        machine.balance()
    );

    let mut sweep = Table::new(&["knob", "value", "embedding time share", "whole model"]);
    for &tables in &[2usize, 8, 32] {
        let mut cfg = base_config();
        cfg.tables = vec![(500_000, 8); tables];
        let (share, label) = classify(&cfg, &machine);
        sweep.row_owned(vec![
            "embedding tables".into(),
            format!("{tables}"),
            percent(share),
            label.into(),
        ]);
    }
    for &pooling in &[1usize, 8, 64] {
        let mut cfg = base_config();
        cfg.tables = vec![(500_000, pooling); 8];
        let (share, label) = classify(&cfg, &machine);
        sweep.row_owned(vec![
            "pooling factor".into(),
            format!("{pooling}"),
            percent(share),
            label.into(),
        ]);
    }
    for &width in &[64usize, 256, 1024] {
        let mut cfg = base_config();
        cfg.bottom_mlp = vec![width, width / 2, 32];
        cfg.top_mlp = vec![width, width / 2];
        let (share, label) = classify(&cfg, &machine);
        sweep.row_owned(vec!["MLP width".into(), format!("{width}"), percent(share), label.into()]);
    }
    println!("{}", sweep.render());

    println!("== sizing an embedding cache against Zipf traffic ==\n");
    let energy = MemoryEnergy::default();
    let mut cache_table =
        Table::new(&["cache rows", "% of catalogue", "hit rate", "effective pJ/B"]);
    let zipf = ZipfSampler::new(500_000, 1.0);
    for &capacity in &[500usize, 5_000, 50_000] {
        let mut rng = Rng64::new(3);
        let mut cache = EmbeddingCache::new(capacity);
        for _ in 0..100_000 {
            cache.access(0, zipf.sample(&mut rng));
        }
        let hr = cache.stats().hit_rate();
        cache_table.row_owned(vec![
            format!("{capacity}"),
            format!("{:.2}%", 100.0 * capacity as f64 / 500_000.0),
            percent(hr),
            format!("{:.2}", energy.effective_byte_pj(hr)),
        ]);
    }
    println!("{}", cache_table.render());
    println!("Takeaway: the knobs move the same skeleton between compute- and memory-bound —");
    println!("accelerators for this workload class must balance specialization with flexibility");
    println!("(paper Sec. V-B), and small caches buy a lot but never everything.");
}
