//! End-to-end few-shot learning on TCAM hardware (paper Sec. III–IV).
//!
//! ```text
//! cargo run --release --example few_shot_tcam
//! ```
//!
//! The full pipeline of the TCAM-MANN papers: train an embedding network on
//! background classes, then run N-way K-shot episodes on *held-out*
//! classes where the external memory is a real (simulated) TCAM array
//! holding LSH signatures — reporting both accuracy and the hardware cost
//! of every search the episodes performed.

use enw_core::cam::array::TcamConfig;
use enw_core::cam::cells;
use enw_core::cam::lsh_memory::TcamKeyValueMemory;
use enw_core::mann::embedding::{EmbeddingConfig, EmbeddingNet};
use enw_core::mann::fewshot::{evaluate, SearchMethod};
use enw_core::mann::memory::Similarity;
use enw_core::nn::fewshot::{EpisodeSampler, FewShotDomain};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const HOLDOUT_FROM: usize = 25;
const EPISODES: usize = 40;

fn main() {
    let mut rng = Rng64::new(4);
    println!("generating a 50-class synthetic handwriting domain and training the embedding...");
    let domain = FewShotDomain::generate(50, 64, &mut rng);
    let cfg = EmbeddingConfig {
        hidden: vec![96],
        embed_dim: 24,
        background_classes: HOLDOUT_FROM,
        samples_per_class: 30,
        epochs: 8,
        learning_rate: 0.05,
    };
    let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);

    // Functional comparison via the evaluation harness.
    let sampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 5 };
    let mut table = Table::new(&["memory search", "5-way 1-shot accuracy"]);
    for (name, method) in [
        ("FP32 cosine (GPU baseline)", SearchMethod::Exact(Similarity::Cosine)),
        ("LSH 256 planes + Hamming", SearchMethod::Lsh { planes: 256 }),
        ("4-bit combined Linf+L2 cubes", SearchMethod::RangeEncoded { bits: 4 }),
    ] {
        let out = evaluate(
            &mut net,
            &domain,
            sampler,
            HOLDOUT_FROM,
            method,
            EPISODES,
            &mut Rng64::new(77),
        );
        table.row_owned(vec![name.to_string(), percent(out.accuracy)]);
    }
    println!("\n{}", table.render());

    // Now run lifelong episodes on the actual TCAM hardware model,
    // accumulating energy/latency.
    println!("running lifelong one-shot episodes on a 2-FeFET TCAM memory...");
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut mem = TcamKeyValueMemory::new(
        64,
        net.embed_dim(),
        256,
        cells::fefet_2t(),
        TcamConfig::default(),
        &mut rng,
    );
    for _ in 0..EPISODES {
        // Sample 5 held-out classes; show one example each, then query.
        let classes = rng.sample_indices(domain.num_classes() - HOLDOUT_FROM, 5);
        for (local, &off) in classes.iter().enumerate() {
            let emb = net.embed(&domain.sample(HOLDOUT_FROM + off, &mut rng));
            mem.update(&emb, local);
        }
        for (local, &off) in classes.iter().enumerate() {
            let emb = net.embed(&domain.sample(HOLDOUT_FROM + off, &mut rng));
            let (hit, _) = mem.retrieve(&emb);
            if hit.expect("memory written this episode").value == local {
                correct += 1;
            }
            total += 1;
        }
    }
    let cost = mem.total_cost();
    println!(
        "\nTCAM-episode accuracy: {} over {total} queries",
        percent(correct as f64 / total as f64)
    );
    println!(
        "hardware cost of all searches+writes: {:.2} uJ, {:.1} us ({} stored entries, {} writes)",
        cost.energy_pj / 1e6,
        cost.latency_ns / 1e3,
        mem.len(),
        EPISODES * 5,
    );
    println!("\nEvery retrieval was one parallel ternary-array search — no DRAM streaming,");
    println!("no per-entry distance kernel: the core argument of paper Sec. IV.");
}
