//! Quickstart: a five-minute tour of the workspace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Touches one piece of each paper section: trains a small classifier
//! digitally and on a simulated analog crossbar (Sec. II), performs
//! one-shot learning with a TCAM-backed key–value memory (Sec. III–IV),
//! and characterizes a recommendation model (Sec. V).

use enw_core::cam::array::TcamConfig;
use enw_core::cam::cells;
use enw_core::cam::lsh_memory::TcamKeyValueMemory;
use enw_core::crossbar::tile::TileConfig;
use enw_core::crossbar::{devices, train};
use enw_core::nn::activation::Activation;
use enw_core::nn::data::SyntheticImages;
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::characterize::{profile_batched, RooflineMachine};
use enw_core::recsys::model::RecModelConfig;
use enw_core::report::percent;

fn main() {
    let mut rng = Rng64::new(2020);

    // --- Sec. II: the same network, digital vs analog crossbar ---
    println!("[1/3] training a classifier digitally and on simulated ECRAM crossbars...");
    let split = SyntheticImages::builder()
        .classes(5)
        .dim(64)
        .train_per_class(50)
        .test_per_class(20)
        .build(&mut rng);
    let cfg = SgdConfig { epochs: 4, learning_rate: 0.05 };

    let mut digital = Mlp::digital(&[64, 32, 5], Activation::Tanh, &mut rng);
    let acc_digital = train::train_and_evaluate(&mut digital, &split, &cfg, &mut rng).test_accuracy;

    let mut analog = train::analog_mlp(
        &[64, 32, 5],
        &devices::ecram(),
        TileConfig::default(), // 7-bit DAC, 9-bit ADC, read noise
        Activation::Tanh,
        &mut rng,
    );
    let acc_analog = train::train_and_evaluate(&mut analog, &split, &cfg, &mut rng).test_accuracy;
    println!(
        "      FP32: {}   analog ECRAM (stochastic pulses): {}\n",
        percent(acc_digital),
        percent(acc_analog)
    );

    // --- Sec. III–IV: one-shot learning in a TCAM memory ---
    println!("[2/3] one-shot learning with an LSH-signature TCAM memory...");
    let mut mem =
        TcamKeyValueMemory::new(32, 8, 128, cells::fefet_2t(), TcamConfig::default(), &mut rng);
    // One example per class.
    for class in 0..8usize {
        let mut key = vec![0.0f32; 8];
        key[class] = 1.0;
        mem.update(&key, class);
    }
    // Query with noisy versions.
    let mut correct = 0;
    for class in 0..8usize {
        let mut q = vec![0.05f32; 8];
        q[class] = 0.9;
        let (hit, _) = mem.retrieve(&q);
        if hit.expect("memory is non-empty").value == class {
            correct += 1;
        }
    }
    let cost = mem.total_cost();
    println!(
        "      {correct}/8 noisy queries correct after one example each; total hardware cost {:.1} nJ / {:.0} ns\n",
        cost.energy_pj / 1e3,
        cost.latency_ns
    );

    // --- Sec. V: what bounds a recommendation model? ---
    println!("[3/3] characterizing recommendation-model operators (batch 128)...");
    let machine = RooflineMachine::server_cpu();
    for (name, cfg) in [
        ("compute-bound config", RecModelConfig::compute_bound()),
        ("memory-bound config ", RecModelConfig::memory_bound()),
    ] {
        let p = profile_batched(&cfg, 128);
        println!(
            "      {name}: MLP intensity {:.1} FLOP/B, embedding intensity {:.2} FLOP/B (machine balance {:.0})",
            p.bottom_mlp.intensity(),
            p.embeddings.intensity(),
            machine.balance()
        );
    }
    println!("\nNext: `cargo run --release --bin list_experiments -- -v` lists every");
    println!("paper table/figure reproduction; see EXPERIMENTS.md for recorded results.");
}
