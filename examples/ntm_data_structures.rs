//! Memory-augmented data structures (paper Sec. I/III).
//!
//! ```text
//! cargo run --release --example ntm_data_structures
//! ```
//!
//! The paper motivates MANNs with DNC demonstrations: storing sequences
//! and graphs in a differentiable memory and traversing them (e.g.
//! "navigating the London underground"). This example runs those
//! workloads on the workspace's NTM machinery and then replays the same
//! operations on the X-MANN architectural simulator to show what the
//! accelerator would charge for them.

use enw_core::mann::tasks::{copy, GraphMemory};
use enw_core::numerics::rng::Rng64;
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::{GpuCostParams, XmannCostParams};
use enw_core::xmann::GpuMann;

fn main() {
    let mut rng = Rng64::new(7);

    // --- NTM copy task ---
    println!("[1/3] NTM copy task: store a 12-item sequence, read it back...");
    let sequence: Vec<Vec<f32>> =
        (0..12).map(|i| (0..8).map(|j| ((i * 8 + j) as f32 / 48.0).sin()).collect()).collect();
    let recalled = copy(&sequence, 16);
    let max_err = sequence
        .iter()
        .zip(&recalled)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
        .fold(0.0f32, f32::max);
    println!("      recalled {} items, max element error {max_err:.2e}\n", recalled.len());

    // --- Graph storage and traversal ---
    println!("[2/3] content-addressed graph: a toy tube map...");
    let mut g = GraphMemory::new(8, 32, 24, &mut rng);
    // Circle line 0-1-2-3-0 and a radial 1-4-5, 3-6-7.
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (3, 6), (6, 7)] {
        g.add_edge(a, b);
    }
    println!("      stations: 8, edges stored as memory rows: {}", g.edges());
    let mut hub = g.neighbors(1, 4);
    hub.sort_unstable();
    println!("      interchange 1 connects to {hub:?} (found by parallel content search)");
    println!("      walk from 4: {:?}\n", g.walk(4, 3));

    // --- What would the hardware charge? ---
    println!("[3/3] replaying one step of graph search on X-MANN vs GPU cost models...");
    // The memory operation behind every neighbors() call is one
    // similarity scan over all edge rows + one soft read.
    let (slots, dim) = (4096, 48); // a bigger production-like graph memory
    let mut x = Xmann::new(slots, dim, XmannConfig::default(), XmannCostParams::default());
    let mut gpu = GpuMann::new(slots, dim, GpuCostParams::default());
    let query = vec![0.1f32; dim];
    let xs = x.similarity(&query).cost;
    let gs = gpu.similarity(&query).cost;
    let w = vec![1.0 / slots as f32; slots];
    let xr = x.soft_read(&w).cost;
    let gr = gpu.soft_read(&w).cost;
    println!(
        "      X-MANN: {:.1} ns / {:.2} uJ    GPU: {:.1} us / {:.2} uJ    ({:.0}x faster, {:.0}x less energy)",
        (xs.latency_ns + xr.latency_ns),
        (xs.energy_pj + xr.energy_pj) / 1e6,
        (gs.latency_ns + gr.latency_ns) / 1e3,
        (gs.energy_pj + gr.energy_pj) / 1e6,
        (gs.latency_ns + gr.latency_ns) / (xs.latency_ns + xr.latency_ns),
        (gs.energy_pj + gr.energy_pj) / (xs.energy_pj + xr.energy_pj),
    );
    println!("\nEvery graph hop is a full-memory scan on conventional hardware — which is");
    println!("exactly why the paper builds in-memory accelerators for these workloads.");
}
