//! Analog-crossbar training walkthrough (paper Sec. II).
//!
//! ```text
//! cargo run --release --example analog_training
//! ```
//!
//! Trains the same classifier on four device populations, printing the
//! per-epoch loss curves so the effect of device physics on optimization
//! is visible, then shows hardware-aware (drop-connect) training riding
//! through stuck-device defects at inference time.

use enw_core::crossbar::array::DefectMode;
use enw_core::crossbar::tiki_taka::TikiTakaConfig;
use enw_core::crossbar::tile::TileConfig;
use enw_core::crossbar::{devices, train};
use enw_core::nn::activation::Activation;
use enw_core::nn::data::{Split, SyntheticImages};
use enw_core::nn::mlp::SgdConfig;
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const DIMS: [usize; 3] = [64, 32, 10];

fn task() -> Split {
    SyntheticImages::builder()
        .classes(10)
        .dim(64)
        .train_per_class(50)
        .test_per_class(25)
        .noise(1.2)
        .build(&mut Rng64::new(99))
}

fn main() {
    let split = task();
    let cfg = SgdConfig { epochs: 5, learning_rate: 0.05 };

    println!("== device technologies under plain stochastic-pulse SGD ==\n");
    let mut table = Table::new(&["devices", "per-epoch loss", "test accuracy"]);
    for (name, spec) in [
        ("ideal (1000 states)", devices::ideal(1000)),
        ("ECRAM (current-controlled)", devices::ecram()),
        ("ECRAM (voltage-pulsed)", devices::ecram_voltage()),
        ("FeFET (single)", devices::fefet_single()),
        ("FTJ", devices::ftj()),
        ("RRAM", devices::rram()),
    ] {
        let mut rng = Rng64::new(7);
        let mut mlp =
            train::analog_mlp(&DIMS, &spec, TileConfig::ideal(), Activation::Tanh, &mut rng);
        let out = train::train_and_evaluate(&mut mlp, &split, &cfg, &mut rng);
        let curve: Vec<String> = out.loss_history.iter().map(|l| format!("{l:.2}")).collect();
        table.row_owned(vec![name.to_string(), curve.join(" -> "), percent(out.test_accuracy)]);
    }
    println!("{}", table.render());

    println!("== rescuing RRAM with the coupled-dynamics (Tiki-Taka) trainer ==\n");
    let mut rng = Rng64::new(8);
    let mut tt = train::tiki_taka_mlp(
        &DIMS,
        &devices::rram(),
        TileConfig::ideal(),
        TikiTakaConfig::default(),
        Activation::Tanh,
        &mut rng,
    );
    let out = train::train_and_evaluate(&mut tt, &split, &cfg, &mut rng);
    println!("RRAM + Tiki-Taka test accuracy: {}\n", percent(out.test_accuracy));

    println!("== hardware-aware training vs stuck-device defects ==\n");
    let mut result = Table::new(&["training", "defects at inference", "test accuracy"]);
    for (name, drop_connect) in [("standard", 0.0f32), ("drop-connect 30%", 0.3)] {
        let mut rng = Rng64::new(9);
        let tile_cfg = TileConfig { drop_connect, ..TileConfig::ideal() };
        let mut mlp =
            train::analog_mlp(&DIMS, &devices::ecram(), tile_cfg, Activation::Tanh, &mut rng);
        let trained = train::train_and_evaluate(&mut mlp, &split, &cfg, &mut rng);
        result.row_owned(vec![name.to_string(), "none".into(), percent(trained.test_accuracy)]);
        // Inject stuck-at-zero devices into every tile, then re-test.
        let mut defect_rng = Rng64::new(10);
        for layer in mlp.layers_mut() {
            layer.backend_mut().array_mut().inject_defects(
                0.25,
                DefectMode::StuckAtZero,
                &mut defect_rng,
            );
        }
        result.row_owned(vec![
            name.to_string(),
            "25% stuck-at-zero".into(),
            percent(mlp.evaluate(&split.test)),
        ]);
    }
    println!("{}", result.render());
    println!("Drop-connect training randomly suppresses update coincidences, so the learned");
    println!("network never leans on any single device — the hardware-aware training idea of");
    println!("ref. [33] for riding through imperfect yield.");
}
