//! Property-based tests for the numerics substrate.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_numerics::bits::BitVec;
use enw_numerics::matrix::Matrix;
use enw_numerics::quant::Quantizer;
use enw_numerics::rng::Rng64;
use enw_numerics::vector;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn matvec_t_equals_transpose_matvec(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let d: Vec<f32> = (0..rows).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let a = m.matvec_t(&d);
        let b = m.transposed().matvec(&d);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn rank1_update_equals_dense_outer(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        let d: Vec<f32> = (0..rows).map(|_| rng.range(-2.0, 2.0) as f32).collect();
        let x: Vec<f32> = (0..cols).map(|_| rng.range(-2.0, 2.0) as f32).collect();
        m.rank1_update(&d, &x, 0.7);
        for (r, dr) in d.iter().enumerate() {
            for (c, xc) in x.iter().enumerate() {
                prop_assert!((m.at(r, c) - 0.7 * dr * xc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_is_distribution(v in finite_vec(16), beta in 0.1f32..20.0) {
        let p = vector::softmax(&v, beta);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn distance_metric_axioms(a in finite_vec(8), b in finite_vec(8)) {
        // Symmetry and identity for all three Minkowski metrics.
        prop_assert!((vector::dist_l1(&a, &b) - vector::dist_l1(&b, &a)).abs() < 1e-3);
        prop_assert!((vector::dist_l2(&a, &b) - vector::dist_l2(&b, &a)).abs() < 1e-3);
        prop_assert!((vector::dist_linf(&a, &b) - vector::dist_linf(&b, &a)).abs() < 1e-3);
        prop_assert_eq!(vector::dist_l1(&a, &a), 0.0);
        // Metric ordering: Linf <= L2 <= L1 always.
        prop_assert!(vector::dist_linf(&a, &b) <= vector::dist_l2(&a, &b) + 1e-3);
        prop_assert!(vector::dist_l2(&a, &b) <= vector::dist_l1(&a, &b) + 1e-3);
    }

    #[test]
    fn triangle_inequality_l2(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let ab = vector::dist_l2(&a, &b);
        let bc = vector::dist_l2(&b, &c);
        let ac = vector::dist_l2(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-2);
    }

    #[test]
    fn cosine_bounded(a in finite_vec(8), b in finite_vec(8)) {
        let s = vector::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn hamming_is_a_metric(xs in prop::collection::vec(any::<bool>(), 1..200),
                           ys in prop::collection::vec(any::<bool>(), 1..200),
                           zs in prop::collection::vec(any::<bool>(), 1..200)) {
        let n = xs.len().min(ys.len()).min(zs.len());
        let a = BitVec::from_bools(&xs[..n]);
        let b = BitVec::from_bools(&ys[..n]);
        let c = BitVec::from_bools(&zs[..n]);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        prop_assert!(a.hamming(&b) <= n);
    }

    #[test]
    fn quantizer_round_trip_bounded(bits in 2u32..12, v in -10.0f32..10.0) {
        let q = Quantizer::new(bits, 10.0);
        let err = (v - q.round_trip(v)).abs();
        prop_assert!(err <= q.step() / 2.0 + 1e-5);
    }

    #[test]
    fn quantizer_levels_in_range(bits in 2u32..10, v in finite_vec(32)) {
        let q = Quantizer::fit(bits, &v);
        let levels = q.to_levels(&v);
        prop_assert!(levels.iter().all(|&l| l < q.level_count()));
    }

    #[test]
    fn rng_below_uniform_support(n in 1usize..64, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }
}

/// Asserts two matrices/vectors agree to the last bit — the determinism
/// contract of every parallel kernel (no tolerances, ever).
fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "element {i} differs: {x} vs {y}");
    }
}

// Thread-count invariance of the parallel kernels: chunk boundaries and
// per-element accumulation order derive only from the problem shape, so
// ENW_THREADS=1/2/8 must produce bit-identical outputs. Shapes are
// random (including dims of 1 and non-multiples of the register tile);
// the *_parallel_path variants force shapes past the `plan_chunks` gate
// so the pool fan-out itself is always exercised.
proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn par_matmul_bit_identical_at_any_thread_count(
        m in 1usize..96, k in 1usize..96, n in 1usize..96, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let serial = enw_parallel::with_threads(1, || a.par_matmul(&b));
        for t in [2usize, 8] {
            let par = enw_parallel::with_threads(t, || a.par_matmul(&b));
            assert_bits_eq(serial.as_slice(), par.as_slice());
        }
    }

    #[test]
    fn par_matmul_parallel_path_bit_identical(
        m in 64usize..128, k in 33usize..64, n in 33usize..64, seed in any::<u64>()) {
        // m*k*n >= 64*33*33 > 2x TARGET_CHUNK_WORK: always fans out.
        let mut rng = Rng64::new(seed);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let serial = enw_parallel::with_threads(1, || a.par_matmul(&b));
        for t in [2usize, 8] {
            let par = enw_parallel::with_threads(t, || a.par_matmul(&b));
            assert_bits_eq(serial.as_slice(), par.as_slice());
        }
    }

    #[test]
    fn par_matvec_bit_identical_at_any_thread_count(
        rows in 1usize..500, cols in 1usize..260, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let x: Vec<f32> = (0..cols).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let serial = enw_parallel::with_threads(1, || m.par_matvec(&x));
        for t in [2usize, 8] {
            let par = enw_parallel::with_threads(t, || m.par_matvec(&x));
            assert_bits_eq(&serial, &par);
        }
    }

    #[test]
    fn par_matvec_parallel_path_bit_identical(
        rows in 300usize..500, cols in 250usize..300, seed in any::<u64>()) {
        // rows*cols >= 300*250 > 2x TARGET_CHUNK_WORK: always fans out.
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let x: Vec<f32> = (0..cols).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let serial = enw_parallel::with_threads(1, || m.par_matvec(&x));
        for t in [2usize, 8] {
            let par = enw_parallel::with_threads(t, || m.par_matvec(&x));
            assert_bits_eq(&serial, &par);
        }
    }

    #[test]
    fn par_matvec_t_bit_identical_at_any_thread_count(
        rows in 1usize..260, cols in 1usize..500, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let d: Vec<f32> = (0..rows).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let serial = enw_parallel::with_threads(1, || m.par_matvec_t(&d));
        for t in [2usize, 8] {
            let par = enw_parallel::with_threads(t, || m.par_matvec_t(&d));
            assert_bits_eq(&serial, &par);
        }
    }
}
