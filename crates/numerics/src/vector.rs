//! Slice-level vector math: dot products, norms, similarity and distance
//! metrics, and the softmax used by attentional (soft) memory reads.
//!
//! The MANN sections of the paper compare content-addressing under cosine
//! similarity against CAM-friendly metrics (`L1`, `L2`, `L∞`, Hamming); all
//! of those live here so that every crate measures distance identically.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm_l1(a: &[f32]) -> f32 {
    a.iter().map(|x| x.abs()).sum()
}

/// L2 (Euclidean) norm.
#[inline]
pub fn norm_l2(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// L∞ norm (maximum absolute value).
#[inline]
pub fn norm_linf(a: &[f32]) -> f32 {
    a.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// L1 (Manhattan) distance.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dist_l1(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 (Euclidean) distance.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dist_l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// L∞ (Chebyshev) distance.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dist_linf(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

/// Cosine similarity in `[-1, 1]`.
///
/// Returns `0.0` when either vector has (near-)zero norm, matching the
/// convention of attentional-memory implementations where an empty slot must
/// not attract focus.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm_l2(a);
    let nb = norm_l2(b);
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Numerically stable softmax; optionally sharpened by inverse temperature
/// `beta` (`softmax(beta * x)`).
///
/// Returns a distribution that sums to 1 for any finite input.
///
/// # Panics
///
/// Panics if `logits` is empty or `beta` is not finite.
pub fn softmax(logits: &[f32], beta: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; logits.len()];
    softmax_into(logits, beta, &mut out);
    out
}

/// [`softmax`] into a caller-owned buffer (`out` is fully overwritten):
/// exponentials accumulate into `out`, then one in-order sum and divide —
/// bit-identical to the allocating form.
///
/// # Panics
///
/// Panics if `logits` is empty, `beta` is not finite, or the lengths
/// mismatch.
// enw:hot
pub fn softmax_into(logits: &[f32], beta: f32, out: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax over empty slice");
    assert!(beta.is_finite(), "softmax temperature must be finite");
    assert_eq!(out.len(), logits.len(), "softmax output length mismatch");
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(beta * x));
    for (e, &x) in out.iter_mut().zip(logits) {
        *e = (beta * x - max).exp();
    }
    let sum: f32 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax over empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first occurrence on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmin(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmin over empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Normalizes a vector to unit L2 norm in place; leaves a zero vector
/// untouched.
pub fn normalize_l2(xs: &mut [f32]) {
    let n = norm_l2(xs);
    if n > 1e-12 {
        for x in xs.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norms_on_pythagorean_triple() {
        let v = [3.0, -4.0];
        assert_eq!(norm_l1(&v), 7.0);
        assert_eq!(norm_l2(&v), 5.0);
        assert_eq!(norm_linf(&v), 4.0);
    }

    #[test]
    fn distances_agree_with_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.0, 3.0];
        assert_eq!(dist_l1(&a, &b), 5.0);
        assert!((dist_l2(&a, &b) - 13.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(dist_linf(&a, &b), 3.0);
    }

    #[test]
    fn cosine_of_parallel_is_one() {
        let a = [1.0, 2.0];
        let b = [2.0, 4.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0], 1.0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1001.0], 1.0);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_beta_sharpens() {
        let soft = softmax(&[1.0, 2.0], 1.0);
        let sharp = softmax(&[1.0, 2.0], 10.0);
        assert!(sharp[1] > soft[1]);
    }

    #[test]
    fn argmax_argmin() {
        let v = [3.0, -1.0, 7.0, 7.0];
        assert_eq!(argmax(&v), 2);
        assert_eq!(argmin(&v), 1);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut v = [3.0, 4.0];
        normalize_l2(&mut v);
        assert!((norm_l2(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_noop() {
        let mut v = [0.0, 0.0];
        normalize_l2(&mut v);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }
}
