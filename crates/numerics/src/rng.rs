//! Deterministic pseudo-random number generation.
//!
//! All stochastic processes in the workspace — weight initialization,
//! stochastic pulse trains, device noise, trace generation — draw from
//! [`Rng64`], a xoshiro256** generator seeded through SplitMix64. Two runs
//! with the same seed produce identical experiment output on every platform.

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// xoshiro256** is a small, fast, high-quality generator (period 2^256 − 1)
/// suitable for simulation workloads. It is **not** cryptographically secure.
///
/// # Example
///
/// ```
/// use enw_numerics::rng::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of state are expanded from the seed with SplitMix64,
    /// which guarantees a well-mixed, non-zero state for every seed
    /// (including zero).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 { state: [next_sm(), next_sm(), next_sm(), next_sm()], gauss_spare: None }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → mantissa-exact uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range");
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so results are exactly
    /// uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
            // Rejected a biased sample; retry (vanishingly rare for small n).
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Returns a standard normal (mean 0, variance 1) sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller on two uniforms; u1 must be non-zero for ln().
        let mut u1 = self.uniform();
        while u1 <= f64::EPSILON {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal sample with the given `mean` and `std`.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Derives an independent child generator (for parallel sub-experiments).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Captures the generator's full state for checkpointing. Restoring
    /// via [`Rng64::restore`] resumes the exact output stream, including
    /// a cached Box–Muller spare, so checkpoint/resume is bit-identical
    /// to an uninterrupted run.
    pub fn state(&self) -> RngState {
        RngState { words: self.state, gauss_spare_bits: self.gauss_spare.map(f64::to_bits) }
    }

    /// Rebuilds a generator from a captured [`RngState`].
    pub fn restore(state: RngState) -> Rng64 {
        Rng64 {
            state: state.words,
            gauss_spare: state.gauss_spare_bits.map(f64::from_bits),
        }
    }
}

/// A [`Rng64`] snapshot: the four xoshiro256** state words plus the
/// bit pattern of the cached Box–Muller spare (if one is pending).
/// The spare is carried as raw bits so a round trip through a
/// checkpoint file cannot perturb the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    /// xoshiro256** state words.
    pub words: [u64; 4],
    /// `f64::to_bits` of the pending Box–Muller spare, if any.
    pub gauss_spare_bits: Option<u64>,
}

/// Samples from a Zipf (power-law) distribution over `{0, 1, …, n−1}`.
///
/// Rank `r` (0-based) is drawn with probability proportional to
/// `1 / (r + 1)^alpha`. Recommendation-system item popularity is classically
/// Zipf-distributed, which is what makes small embedding caches effective
/// (paper Sec. V-B).
///
/// Sampling is by inverse transform over the precomputed CDF, `O(log n)` per
/// draw.
///
/// # Example
///
/// ```
/// use enw_numerics::rng::{Rng64, ZipfSampler};
///
/// let mut rng = Rng64::new(1);
/// let zipf = ZipfSampler::new(1000, 1.0);
/// let item = zipf.sample(&mut rng);
/// assert!(item < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `alpha >= 0`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.uniform();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(4);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng64::new(6);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSampler::new(500, 0.9);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let z = ZipfSampler::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(999) * 100.0);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = Rng64::new(8);
        let n = 100_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let emp0 = counts[0] as f64 / n as f64;
        assert!((emp0 - z.pmf(0)).abs() < 0.01, "emp {emp0} vs {}", z.pmf(0));
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut rng = Rng64::new(77);
        // Leave a Box–Muller spare pending so the snapshot must carry it.
        let _ = rng.normal();
        let snap = rng.state();
        let ahead: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let spare_ahead = rng.normal();
        let mut resumed = Rng64::restore(snap);
        let replay: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(replay, ahead);
        assert_eq!(resumed.normal().to_bits(), spare_ahead.to_bits());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(42);
        let mut child = a.fork();
        // Parent and child must not produce identical next outputs.
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
