//! Symmetric fixed-point quantization.
//!
//! Reduced precision appears throughout the paper: 2-bit inference weights
//! (Sec. II), the 4-bit fixed-point feature vectors fed to TCAM range
//! encodings (Sec. IV-B1), and embedding-table compression of up to 16×
//! (Sec. V-B). [`Quantizer`] implements the shared primitive: a symmetric
//! uniform quantizer with a per-tensor scale and optional stochastic
//! rounding.

use crate::rng::Rng64;

/// A symmetric uniform quantizer with `bits` of precision.
///
/// Real values in `[-max_abs, +max_abs]` map to integer codes in
/// `[-(2^(bits-1) - 1), +(2^(bits-1) - 1)]`; values outside the range clip.
///
/// # Example
///
/// ```
/// use enw_numerics::quant::Quantizer;
///
/// let q = Quantizer::new(4, 1.0);
/// let code = q.quantize(0.5);
/// let back = q.dequantize(code);
/// assert!((back - 0.5).abs() <= q.step());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    max_abs: f32,
    qmax: i32,
}

impl Quantizer {
    /// Creates a quantizer with the given bit width and clipping range.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16` or `max_abs` is not positive and
    /// finite.
    pub fn new(bits: u32, max_abs: f32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(max_abs > 0.0 && max_abs.is_finite(), "max_abs must be positive and finite");
        Quantizer { bits, max_abs, qmax: (1i32 << (bits - 1)) - 1 }
    }

    /// Creates a quantizer whose range covers the max-abs of `values`
    /// (falling back to 1.0 for an all-zero tensor).
    ///
    /// This is the "statistical scaling factor" calibration the paper cites
    /// for weight quantization.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is out of range (see [`Quantizer::new`]).
    pub fn fit(bits: u32, values: &[f32]) -> Self {
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        Quantizer::new(bits, if max_abs > 0.0 { max_abs } else { 1.0 })
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable code magnitude.
    pub fn qmax(&self) -> i32 {
        self.qmax
    }

    /// Quantization step size in real units.
    pub fn step(&self) -> f32 {
        self.max_abs / self.qmax as f32
    }

    /// Quantizes one value (round-to-nearest, clipped to range).
    pub fn quantize(&self, v: f32) -> i32 {
        let code = (v / self.step()).round() as i64;
        code.clamp(-(self.qmax as i64), self.qmax as i64) as i32
    }

    /// Quantizes with stochastic rounding: the fractional part decides the
    /// probability of rounding up. Unbiased in expectation, which is why
    /// reduced-precision *training* (Sec. II) prefers it.
    pub fn quantize_stochastic(&self, v: f32, rng: &mut Rng64) -> i32 {
        let scaled = (v / self.step()) as f64;
        let floor = scaled.floor();
        let frac = scaled - floor;
        let code = if rng.bernoulli(frac) { floor as i64 + 1 } else { floor as i64 };
        code.clamp(-(self.qmax as i64), self.qmax as i64) as i32
    }

    /// Maps a code back to a real value.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Round-trips one value through the quantizer.
    pub fn round_trip(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }

    /// Quantizes a slice into unsigned fixed-point *levels* `0..2^bits - 1`
    /// (offset binary), the representation TCAM range encodings consume.
    pub fn to_levels(&self, values: &[f32]) -> Vec<u32> {
        values.iter().map(|&v| (self.quantize(v) + self.qmax) as u32).collect()
    }

    /// Number of distinct levels produced by [`Quantizer::to_levels`].
    pub fn level_count(&self) -> u32 {
        (2 * self.qmax + 1) as u32
    }

    /// Mean squared quantization error over a slice.
    pub fn mse(&self, values: &[f32]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values
            .iter()
            .map(|&v| {
                let e = (v - self.round_trip(v)) as f64;
                e * e
            })
            .sum::<f64>()
            / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = Quantizer::new(8, 2.0);
        for i in -100..=100 {
            let v = i as f32 / 50.0; // within range
            assert!((v - q.round_trip(v)).abs() <= q.step() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn clipping_out_of_range() {
        let q = Quantizer::new(4, 1.0);
        assert_eq!(q.quantize(10.0), q.qmax());
        assert_eq!(q.quantize(-10.0), -q.qmax());
    }

    #[test]
    fn fit_covers_data() {
        let data = [0.1, -3.5, 2.0];
        let q = Quantizer::fit(8, &data);
        assert_eq!(q.quantize(-3.5), -q.qmax());
    }

    #[test]
    fn fit_all_zero_does_not_panic() {
        let q = Quantizer::fit(8, &[0.0, 0.0]);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn levels_are_offset_binary() {
        let q = Quantizer::new(4, 1.0);
        let levels = q.to_levels(&[-1.0, 0.0, 1.0]);
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], q.qmax() as u32);
        assert_eq!(levels[2], 2 * q.qmax() as u32);
        assert!(levels.iter().all(|&l| l < q.level_count()));
    }

    #[test]
    fn stochastic_rounding_unbiased() {
        let q = Quantizer::new(4, 1.0);
        let mut rng = Rng64::new(77);
        let v = 0.4 * q.step(); // 40% of the way to the next code
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| q.dequantize(q.quantize_stochastic(v, &mut rng)) as f64).sum::<f64>()
                / n as f64;
        assert!((mean - v as f64).abs() < q.step() as f64 * 0.02, "mean {mean}");
    }

    #[test]
    fn more_bits_less_mse() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 / 500.0) - 1.0).collect();
        let q4 = Quantizer::new(4, 1.0);
        let q8 = Quantizer::new(8, 1.0);
        assert!(q8.mse(&data) < q4.mse(&data));
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn one_bit_rejected() {
        Quantizer::new(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "max_abs")]
    fn bad_range_rejected() {
        Quantizer::new(8, 0.0);
    }
}
