//! Packed bit vectors and Hamming distance.
//!
//! A CAM/TCAM natively computes the Hamming distance between a query and
//! every stored word (paper Sec. IV). [`BitVec`] is the software image of
//! one stored word: bits packed into `u64` limbs so that distance is a few
//! XOR + popcount operations.

/// A fixed-length packed bit vector.
///
/// # Example
///
/// ```
/// use enw_numerics::bits::BitVec;
///
/// let a = BitVec::from_bools(&[true, false, true]);
/// let b = BitVec::from_bools(&[true, true, true]);
/// assert_eq!(a.hamming(&b), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    limbs: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec { len, limbs: vec![0; len.div_ceil(64)] }
    }

    /// Creates a bit vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds");
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of bounds");
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Hamming distance to another bit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming length mismatch");
        hamming_limbs(&self.limbs, &other.limbs) as usize
    }

    /// The packed `u64` limbs (little-endian bit order; bits at positions
    /// `>= len()` are always zero). Lets word stores keep many vectors'
    /// limbs contiguous and run limb-wise kernels like [`hamming_limbs`]
    /// without going through per-bit accessors.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Iterator over the bits as booleans.
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, pos: 0 }
    }
}

/// Hamming distance between two packed limb slices: XOR + `count_ones`
/// per 64-bit word, unrolled four wide so the popcounts form independent
/// dependency chains (and vectorize where the target has a packed
/// popcount). This is the match-line model of a CAM search: every stored
/// word's distance is a handful of word-wide operations, not a per-bit
/// walk.
///
/// # Panics
///
/// Panics if the slices have different lengths.
// enw:hot
#[inline]
pub fn hamming_limbs(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming length mismatch");
    let mut quads_a = a.chunks_exact(4);
    let mut quads_b = b.chunks_exact(4);
    let (mut d0, mut d1, mut d2, mut d3) = (0u32, 0u32, 0u32, 0u32);
    for (qa, qb) in (&mut quads_a).zip(&mut quads_b) {
        d0 += (qa[0] ^ qb[0]).count_ones();
        d1 += (qa[1] ^ qb[1]).count_ones();
        d2 += (qa[2] ^ qb[2]).count_ones();
        d3 += (qa[3] ^ qb[3]).count_ones();
    }
    let mut d = d0 + d1 + d2 + d3;
    for (la, lb) in quads_a.remainder().iter().zip(quads_b.remainder()) {
        d += (la ^ lb).count_ones();
    }
    d
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bools)
    }
}

/// Iterator over the bits of a [`BitVec`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.pos >= self.vec.len() {
            return None;
        }
        let b = self.vec.get(self.pos);
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.vec.len() - self.pos;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130); // spans three limbs
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn hamming_self_is_zero() {
        let v = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(v.hamming(&v), 0);
    }

    #[test]
    fn hamming_counts_differences() {
        let a = BitVec::from_bools(&[true, false, true, false]);
        let b = BitVec::from_bools(&[false, false, true, true]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(b.hamming(&a), 2);
    }

    #[test]
    fn hamming_across_limb_boundary() {
        let mut a = BitVec::zeros(100);
        let mut b = BitVec::zeros(100);
        a.set(70, true);
        b.set(70, true);
        a.set(99, true);
        assert_eq!(a.hamming(&b), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        BitVec::zeros(4).hamming(&BitVec::zeros(5));
    }

    #[test]
    fn collect_and_iter_roundtrip() {
        let bits = [true, true, false, true, false];
        let v: BitVec = bits.iter().copied().collect();
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn clearing_a_bit() {
        let mut v = BitVec::from_bools(&[true, true]);
        v.set(0, false);
        assert!(!v.get(0) && v.get(1));
    }

    #[test]
    fn empty_vec() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert!(v.limbs().is_empty());
    }

    #[test]
    fn hamming_limbs_matches_per_bit_count() {
        // 9 limbs: exercises both the 4-wide unrolled body and the
        // remainder loop.
        let mut a = BitVec::zeros(9 * 64);
        let mut b = BitVec::zeros(9 * 64);
        let mut expected = 0;
        for i in 0..(9 * 64) {
            if i % 3 == 0 {
                a.set(i, true);
            }
            if i % 5 == 0 {
                b.set(i, true);
            }
            if (i % 3 == 0) != (i % 5 == 0) {
                expected += 1;
            }
        }
        assert_eq!(hamming_limbs(a.limbs(), b.limbs()), expected);
        assert_eq!(a.hamming(&b), expected as usize);
    }
}
