//! Dense numerical kernels shared by every simulator in the
//! `emerging-neural-workloads` workspace.
//!
//! The crate deliberately implements its own small linear-algebra and
//! random-number layer instead of binding to an external BLAS or the `rand`
//! ecosystem: every experiment in the workspace must be bit-reproducible
//! from a seed, and the hardware simulators charge energy/latency per
//! arithmetic event, so the kernels must be simple, inspectable Rust.
//!
//! # Modules
//!
//! * [`rng`] — deterministic xoshiro256** generator with normal/Bernoulli
//!   sampling and shuffling.
//! * [`matrix`] — row-major [`matrix::Matrix`] with the handful of
//!   dense kernels neural workloads need (matmul, matvec, transposed matvec,
//!   rank-1 update).
//! * [`vector`] — slice-level vector math: dot products, norms, softmax,
//!   cosine similarity, distance metrics.
//! * [`quant`] — symmetric fixed-point quantization with optional stochastic
//!   rounding, as used for reduced-precision inference and TCAM encodings.
//! * [`bits`] — packed bit vectors with fast Hamming distance (the native
//!   metric of content-addressable memories).
//! * [`stats`] — streaming statistics (Welford) and percentile helpers used
//!   by the characterization harnesses.
//!
//! # Example
//!
//! ```
//! use enw_numerics::matrix::Matrix;
//! use enw_numerics::rng::Rng64;
//!
//! let mut rng = Rng64::new(42);
//! let w = Matrix::random_uniform(4, 3, -1.0, 1.0, &mut rng);
//! let x = [1.0, 0.5, -0.25];
//! let y = w.matvec(&x);
//! assert_eq!(y.len(), 4);
//! ```

pub mod bits;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Rng64;
