//! Streaming statistics and summary helpers used by the characterization
//! harnesses (accuracy curves, energy/latency distributions, hit rates).

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams, `O(1)` memory.
///
/// # Example
///
/// ```
/// use enw_numerics::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a data set by linear
/// interpolation between order statistics. NaN values sort after every
/// finite value (IEEE total order), so clean data behaves classically.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean of strictly positive values.
///
/// Speedup/energy-ratio tables traditionally report geometric means across
/// benchmarks.
///
/// # Panics
///
/// Panics if `data` is empty or any value is not strictly positive.
pub fn geometric_mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "geometric mean of empty data");
    let log_sum: f64 = data
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / data.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = data.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn quantile_median_of_odd() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        assert_eq!(quantile(&[0.0, 10.0], 0.25), 2.5);
    }

    #[test]
    fn quantile_extremes() {
        let d = [5.0, 1.0, 9.0];
        assert_eq!(quantile(&d, 0.0), 1.0);
        assert_eq!(quantile(&d, 1.0), 9.0);
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
