//! Row-major dense matrices and the kernels analog/digital NN simulation
//! needs: matrix–vector products (forward pass), transposed products
//! (backward pass), rank-1 outer-product updates (weight update), and full
//! matrix multiplication.

use crate::rng::Rng64;

/// A dense, row-major `f32` matrix.
///
/// The three kernels [`matvec`](Matrix::matvec),
/// [`matvec_t`](Matrix::matvec_t) and [`rank1_update`](Matrix::rank1_update)
/// mirror the forward, backward and update cycles that a resistive crossbar
/// executes in the analog domain (paper Fig. 1).
///
/// # Example
///
/// ```
/// use enw_numerics::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from an explicit row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.range(lo, hi) as f32;
        }
        m
    }

    /// Creates a matrix with normal entries (Kaiming/Xavier-style inits are
    /// built on top of this in `enw-nn`).
    pub fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal_with(mean, std) as f32;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowed view of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Forward matrix–vector product `y = W · x` (`x` has `cols` entries,
    /// `y` has `rows`).
    ///
    /// This is the crossbar forward pass: input voltages on the columns,
    /// currents summed along each row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *out = acc;
        }
        y
    }

    /// Transposed product `y = Wᵀ · d` (`d` has `rows` entries, `y` has
    /// `cols`).
    ///
    /// This is the crossbar backward pass: the same array is driven from the
    /// rows and read from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn matvec_t(&self, d: &[f32]) -> Vec<f32> {
        assert_eq!(d.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, di) in d.iter().enumerate() {
            if *di == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (out, w) in y.iter_mut().zip(row) {
                *out += w * di;
            }
        }
        y
    }

    /// Rank-1 update `W += scale · d xᵀ` (`d` per row, `x` per column).
    ///
    /// This is the ideal (floating-point) version of the crossbar parallel
    /// weight update; `enw-crossbar` replaces it with stochastic pulse
    /// coincidences on real device models.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `x.len() != cols`.
    pub fn rank1_update(&mut self, d: &[f32], x: &[f32], scale: f32) {
        assert_eq!(d.len(), self.rows, "rank1 row dimension mismatch");
        assert_eq!(x.len(), self.cols, "rank1 column dimension mismatch");
        for (r, di) in d.iter().enumerate() {
            if *di == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = scale * di;
            for (w, xi) in row.iter_mut().zip(x) {
                *w += s * xi;
            }
        }
    }

    /// Full matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `other` element-wise, scaled: `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let d = [2.0, -1.0];
        assert_eq!(m.matvec_t(&d), m.transposed().matvec(&d));
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_update(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m.row(0), &[1.5, 2.0, 2.5]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_shapes() {
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(5, 7);
        assert_eq!(a.matmul(&b).rows(), 2);
        assert_eq!(a.matmul(&b).cols(), 7);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        sample().matvec(&[1.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a.row(1), &[6.0, 8.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_uniform_within_bounds() {
        let mut rng = Rng64::new(1);
        let m = Matrix::random_uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 2.0]]);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        Matrix::zeros(0, 3);
    }
}
