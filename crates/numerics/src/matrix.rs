//! Row-major dense matrices and the kernels analog/digital NN simulation
//! needs: matrix–vector products (forward pass), transposed products
//! (backward pass), rank-1 outer-product updates (weight update), and full
//! matrix multiplication.
//!
//! # Kernel variants and bit-determinism
//!
//! The product kernels come in three tiers that all produce **bitwise
//! identical** results: the plain serial loops, a cache-blocked
//! register-unrolled `matmul` kernel for large shapes, and `par_*`
//! wrappers that split rows/columns at fixed chunk boundaries across the
//! `enw_parallel` worker pool. Every tier accumulates each output
//! element's terms in ascending-`k` order and applies the same
//! [zero-coefficient skip](#zero-skip-fast-path) rule, so callers may
//! switch tiers (or thread counts) without perturbing results.
//!
//! # Zero-skip fast path
//!
//! `matvec_t`, `rank1_update`, and `matmul` skip terms whose
//! *coefficient* (`d[r]` or `a[i][k]`) is exactly `±0.0` instead of
//! multiplying by it. This is a deliberate, shared semantic, not just an
//! optimization: a skipped term contributes nothing even when the other
//! operand is non-finite (`0.0 × ∞` would otherwise inject a `NaN`), so
//! sparse gradients cannot resurrect `Inf`/`NaN` garbage stored in
//! masked-out weights. All kernel tiers share the rule through
//! [`skip_zero_coeff`], which is what keeps the naive, blocked, and
//! parallel paths bit-identical on inputs containing zeros.

use crate::rng::Rng64;
use std::ops::Range;

/// The shared zero-coefficient skip rule (see the module docs): a term
/// is dropped when its coefficient is exactly `±0.0`. Every product
/// kernel in this module — serial, cache-blocked, and parallel — must
/// consult this predicate so the variants stay bit-identical.
#[inline(always)]
fn skip_zero_coeff(a: f32) -> bool {
    a == 0.0
}

/// `out[j] += a · b[j]` over one row window, in ascending-`j` order.
#[inline(always)]
fn axpy_row(out: &mut [f32], a: f32, b: &[f32]) {
    for (o, bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// Cache-block sizes for the blocked `matmul` kernel: `MATMUL_KC` rows
/// of `B` (one k-panel) by `MATMUL_NC` columns (one j-panel) are walked
/// per tile, keeping the panel resident in L1/L2 while every output row
/// in flight reuses it. Re-measured after the per-worker panel packing
/// landed: 256×256, 64×1024 and 256×512 all sit within ~3% of 128×512
/// at n = 1024 (inside host timing noise), so the original choice stands.
const MATMUL_KC: usize = 128;
const MATMUL_NC: usize = 512;

/// Register-tile shape of the matmul microkernel: `MATMUL_MR` output
/// rows × `MATMUL_NR` output columns are accumulated in locals across a
/// whole k-panel, so each `B` row load feeds `MATMUL_MR` rows' FMAs and
/// the output is touched once per panel instead of once per `k` step.
/// 4×16 keeps the accumulator tile at 8 eight-lane vectors — within the
/// 16 architectural AVX2 registers with room for the `B` row — and the
/// fixed-size inner loops are what lets the autovectorizer emit packed
/// fma without a gather.
const MATMUL_MR: usize = 4;
const MATMUL_NR: usize = 16;

/// `matvec` interleave depth: this many rows' dot products advance
/// together so their (sequential, order-preserving) accumulator chains
/// overlap in the FMA pipeline and each `x` load is reused across rows.
const MATVEC_MR: usize = 4;

/// Cap on parallel `matmul` row chunks. Every chunk streams the whole
/// `B` panel set once, so chunk count is a direct multiplier on `B`
/// memory traffic; 16 chunks bound that re-streaming at 16× while still
/// dealing the widest supported fan-out (8 slots) two chunks deep for
/// load balance.
const MATMUL_MAX_CHUNKS: usize = 16;

// Row/column chunks for the parallel wrappers are sized by
// `enw_parallel::plan_chunks` from the per-row (or per-column) work
// estimate. Boundaries depend only on the problem shape — never the
// thread count — which is what makes the parallel results reproducible
// at any `ENW_THREADS`.

/// Dispatch threshold: below this flop count the simple serial loop
/// beats cache-blocking overhead.
const BLOCKED_MIN_FLOPS: usize = 1 << 17;

/// A dense, row-major `f32` matrix.
///
/// The three kernels [`matvec`](Matrix::matvec),
/// [`matvec_t`](Matrix::matvec_t) and [`rank1_update`](Matrix::rank1_update)
/// mirror the forward, backward and update cycles that a resistive crossbar
/// executes in the analog domain (paper Fig. 1).
///
/// # Example
///
/// ```
/// use enw_numerics::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from an explicit row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.range(lo, hi) as f32;
        }
        m
    }

    /// Creates a matrix with normal entries (Kaiming/Xavier-style inits are
    /// built on top of this in `enw-nn`).
    pub fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal_with(mean, std) as f32;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowed view of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Forward matrix–vector product `y = W · x` (`x` has `cols` entries,
    /// `y` has `rows`).
    ///
    /// This is the crossbar forward pass: input voltages on the columns,
    /// currents summed along each row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`matvec`](Matrix::matvec) into a caller-owned output buffer
    /// (`y` is fully overwritten). This is the allocation-free form hot
    /// loops use with `enw_parallel::scratch` workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    // enw:hot
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        self.record_matvec_traffic("numerics/matvec");
        self.matvec_rows(x, y, 0);
    }

    /// Dot products for the row window `row0..row0 + y.len()`, written
    /// into `y` — the shared inner kernel of [`matvec_into`] and the
    /// parallel chunks.
    ///
    /// Rows advance [`MATVEC_MR`] at a time: each row's accumulator is
    /// still a single sequential ascending-`k` chain (bit-identical to
    /// the one-row loop), but the chains are independent, so they
    /// overlap in the FMA pipeline instead of serializing on one
    /// accumulator's latency, and every `x[i]` load feeds `MATVEC_MR`
    /// rows.
    // enw:hot
    fn matvec_rows(&self, x: &[f32], y: &mut [f32], row0: usize) {
        let k = self.cols;
        let mut r = 0;
        while r + MATVEC_MR <= y.len() {
            let base = (row0 + r) * k;
            let r0 = &self.data[base..base + k];
            let r1 = &self.data[base + k..base + 2 * k];
            let r2 = &self.data[base + 2 * k..base + 3 * k];
            let r3 = &self.data[base + 3 * k..base + 4 * k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (i, xi) in x.iter().enumerate() {
                a0 += r0[i] * xi;
                a1 += r1[i] * xi;
                a2 += r2[i] * xi;
                a3 += r3[i] * xi;
            }
            y[r] = a0;
            y[r + 1] = a1;
            y[r + 2] = a2;
            y[r + 3] = a3;
            r += MATVEC_MR;
        }
        for out in y[r..].iter_mut() {
            let row = &self.data[(row0 + r) * k..(row0 + r + 1) * k];
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *out = acc;
            r += 1;
        }
    }

    /// Records the shape-derived span for one matvec-family call:
    /// 2 flops per crosspoint, operand reads (weights + input vector),
    /// output writes. Deterministic — pure function of the shape.
    fn record_matvec_traffic(&self, name: &'static str) {
        let f = std::mem::size_of::<f32>() as u64;
        let (rows, cols) = (self.rows as u64, self.cols as u64);
        enw_trace::record_span_io(name, 2 * rows * cols, f * (rows * cols + cols), f * rows);
    }

    /// As [`record_matvec_traffic`](Matrix::record_matvec_traffic) for
    /// the transposed product (reads the `rows`-long drive vector,
    /// writes the `cols`-long output).
    fn record_matvec_t_traffic(&self) {
        let f = std::mem::size_of::<f32>() as u64;
        let (rows, cols) = (self.rows as u64, self.cols as u64);
        enw_trace::record_span_io(
            "numerics/matvec_t",
            2 * rows * cols,
            f * (rows * cols + rows),
            f * cols,
        );
    }

    /// Transposed product `y = Wᵀ · d` (`d` has `rows` entries, `y` has
    /// `cols`).
    ///
    /// This is the crossbar backward pass: the same array is driven from the
    /// rows and read from the columns.
    ///
    /// Rows whose coefficient `d[r]` is exactly zero are skipped under
    /// the module-level [zero-skip fast path](crate::matrix) shared with
    /// [`matmul`](Matrix::matmul) and the parallel variants.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn matvec_t(&self, d: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.matvec_t_into(d, &mut y);
        y
    }

    /// [`matvec_t`](Matrix::matvec_t) into a caller-owned output buffer
    /// (`y` is fully overwritten, including skipped-term zeros).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `y.len() != cols`.
    // enw:hot
    pub fn matvec_t_into(&self, d: &[f32], y: &mut [f32]) {
        assert_eq!(d.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output dimension mismatch");
        self.record_matvec_t_traffic();
        y.fill(0.0);
        for (r, di) in d.iter().enumerate() {
            if skip_zero_coeff(*di) {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            axpy_row(y, *di, row);
        }
    }

    /// Parallel [`matvec`](Matrix::matvec): output rows are split at
    /// work-estimate-sized chunk boundaries across the `enw_parallel`
    /// pool. Each output element is the same ascending-`k` dot product
    /// as the serial path, so results are bit-identical at any thread
    /// count. Falls back to the serial loop below the dispatch threshold
    /// or with one worker.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn par_matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.par_matvec_into(x, &mut y);
        y
    }

    /// [`par_matvec`](Matrix::par_matvec) into a caller-owned output
    /// buffer (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    // enw:hot
    pub fn par_matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        let Some(chunk) = enw_parallel::plan_chunks(self.rows, self.cols) else {
            return self.matvec_into(x, y);
        };
        // Keep MATVEC_MR-row interleave groups intact within a chunk.
        let chunk = chunk.next_multiple_of(MATVEC_MR);
        self.record_matvec_traffic("numerics/matvec");
        enw_parallel::for_each_chunk_mut(y, chunk, |start, window| {
            self.matvec_rows(x, window, start);
        });
    }

    /// Parallel [`matvec_t`](Matrix::matvec_t): output *columns* are
    /// split at work-estimate-sized chunk boundaries; every worker walks
    /// the rows in ascending order applying the same zero-skip rule, so
    /// each output element sees the identical term sequence as the
    /// serial loop and results are bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn par_matvec_t(&self, d: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.par_matvec_t_into(d, &mut y);
        y
    }

    /// [`par_matvec_t`](Matrix::par_matvec_t) into a caller-owned output
    /// buffer (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `y.len() != cols`.
    // enw:hot
    pub fn par_matvec_t_into(&self, d: &[f32], y: &mut [f32]) {
        assert_eq!(d.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output dimension mismatch");
        let Some(chunk) = enw_parallel::plan_chunks(self.cols, self.rows) else {
            return self.matvec_t_into(d, y);
        };
        self.record_matvec_t_traffic();
        let cols = self.cols;
        y.fill(0.0);
        enw_parallel::for_each_chunk_mut(y, chunk, |c0, window| {
            let c1 = c0 + window.len();
            for (r, di) in d.iter().enumerate() {
                if skip_zero_coeff(*di) {
                    continue;
                }
                axpy_row(window, *di, &self.data[r * cols + c0..r * cols + c1]);
            }
        });
    }

    /// Rank-1 update `W += scale · d xᵀ` (`d` per row, `x` per column).
    ///
    /// This is the ideal (floating-point) version of the crossbar parallel
    /// weight update; `enw-crossbar` replaces it with stochastic pulse
    /// coincidences on real device models.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `x.len() != cols`.
    pub fn rank1_update(&mut self, d: &[f32], x: &[f32], scale: f32) {
        assert_eq!(d.len(), self.rows, "rank1 row dimension mismatch");
        assert_eq!(x.len(), self.cols, "rank1 column dimension mismatch");
        for (r, di) in d.iter().enumerate() {
            if skip_zero_coeff(*di) {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = scale * di;
            for (w, xi) in row.iter_mut().zip(x) {
                *w += s * xi;
            }
        }
    }

    /// Full matrix product `self · other`.
    ///
    /// Terms with a zero left-hand coefficient are skipped under the
    /// module-level [zero-skip fast path](crate::matrix) shared with
    /// [`matvec_t`](Matrix::matvec_t). Large products dispatch to a
    /// cache-blocked, k-unrolled kernel that performs the identical
    /// term sequence per output element, so the dispatch is invisible:
    /// results are bitwise equal either way.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Matrix::matmul) into a caller-owned output matrix
    /// (`out` is fully overwritten). Shares the serial/blocked dispatch
    /// with the allocating form, so results are bitwise equal.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows × other.cols`.
    // enw:hot
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul output shape mismatch");
        self.record_matmul_traffic(other);
        out.data.fill(0.0);
        let flops = self.rows * self.cols * other.cols;
        if flops < BLOCKED_MIN_FLOPS || other.cols < 8 {
            self.matmul_naive_into(other, &mut out.data);
        } else {
            self.matmul_block_rows(other, 0..self.rows, &mut out.data);
        }
    }

    /// Shape-derived span for one matmul call: 2 flops per `m·k·n`
    /// product term, operand reads (`A` + `B`), output writes.
    fn record_matmul_traffic(&self, other: &Matrix) {
        let f = std::mem::size_of::<f32>() as u64;
        let (m, k, n) = (self.rows as u64, self.cols as u64, other.cols as u64);
        enw_trace::record_span_io("numerics/matmul", 2 * m * k * n, f * (m * k + k * n), f * m * n);
    }

    /// Parallel [`matmul`](Matrix::matmul): rows of the output are split
    /// at work-estimate-sized chunk boundaries across the `enw_parallel`
    /// pool, each chunk computed by the same cache-blocked kernel.
    /// Bit-identical to the serial product at any thread count; falls
    /// back to the serial dispatch below the flop threshold or with one
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn par_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.par_matmul_into(other, &mut out);
        out
    }

    /// [`par_matmul`](Matrix::par_matmul) into a caller-owned output
    /// matrix (`out` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows × other.cols`.
    // enw:hot
    pub fn par_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let n = other.cols;
        let Some(row_chunk) = enw_parallel::plan_chunks(self.rows, self.cols * n) else {
            return self.matmul_into(other, out);
        };
        // Chunks must keep MR-row groups intact or every chunk lands in
        // the microkernel's row-remainder (per-term axpy) path, and each
        // chunk streams the whole `B` panel set once, so the chunk count
        // is capped to bound `B` re-streaming (16 chunks still deal 8
        // slots two-deep). Both adjustments depend only on the problem
        // size, so determinism holds.
        let row_chunk =
            row_chunk.max(self.rows.div_ceil(MATMUL_MAX_CHUNKS)).next_multiple_of(MATMUL_MR);
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul output shape mismatch");
        self.record_matmul_traffic(other);
        out.data.fill(0.0);
        enw_parallel::for_each_chunk_mut(&mut out.data, row_chunk * n, |start, window| {
            let r0 = start / n;
            self.matmul_block_rows(other, r0..r0 + window.len() / n, window);
        });
    }

    /// Reference triple loop (i, k, j ascending) with the shared
    /// zero-skip rule; the term-order contract the other kernels match.
    fn matmul_naive_into(&self, other: &Matrix, out: &mut [f32]) {
        let k = self.cols;
        let n = other.cols;
        for i in 0..self.rows {
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if skip_zero_coeff(a) {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                axpy_row(&mut out[i * n..(i + 1) * n], a, brow);
            }
        }
    }

    /// Cache-blocked, register-tiled product over a row range of `self`,
    /// writing into `out_rows` (the row-major window for those rows).
    ///
    /// Walks `B` in `MATMUL_KC × MATMUL_NC` panels so a panel stays
    /// cache-resident, and computes each panel through the
    /// [`MATMUL_MR`]`×`[`MATMUL_NR`] register microkernel
    /// ([`matmul_microkernel_mr_nr`](Matrix::matmul_microkernel_mr_nr)):
    /// the accumulator tile lives in locals across the whole k-panel, so
    /// output traffic drops from once per `k` step to once per panel and
    /// every `B` row load is reused by `MATMUL_MR` output rows. Row and
    /// column remainders fall back to the per-term axpy path. Every path
    /// accumulates each output element in ascending-`k` order with the
    /// shared zero-skip rule, so the result is bitwise equal to
    /// [`matmul_naive_into`](Matrix::matmul_naive_into). (A packed-`Bᵀ`
    /// dot-product formulation was measured ~2.5× *slower* here: the
    /// per-term zero-skip branch defeats autovectorization of dot
    /// products, while the axpy/tile forms keep vectorizable j-loops.)
    fn matmul_block_rows(&self, other: &Matrix, rows: Range<usize>, out_rows: &mut [f32]) {
        let k = self.cols;
        let n = other.cols;
        let nrows = rows.end - rows.start;
        debug_assert_eq!(out_rows.len(), nrows * n);
        let b = &other.data;
        let mut jb = 0;
        while jb < n {
            let je = (jb + MATMUL_NC).min(n);
            let nstrips = (je - jb) / MATMUL_NR;
            let mut kb = 0;
            while kb < k {
                let ke = (kb + MATMUL_KC).min(k);
                let kc = ke - kb;
                // Pack the panel's full-NR strips into thread-local
                // scratch, NR-contiguous per k step: the microkernel's
                // k-loop then streams the panel sequentially instead of
                // striding by `n` per step. Under `par_matmul_into` the
                // packing runs on each participant, so every worker owns
                // a private packed copy of the panels it consumes —
                // which is what keeps 8-thread chunks from contending on
                // the same `B` cache lines. Values are copied verbatim
                // and consumed in the identical (kk, j) order, so the
                // result stays bitwise equal to the unpacked kernel.
                let pack_len = if nrows >= MATMUL_MR { nstrips * kc * MATMUL_NR } else { 0 };
                let mut pack_guard = None;
                if pack_len > 0 {
                    let mut g = enw_parallel::scratch::take_f32(pack_len);
                    for s in 0..nstrips {
                        let j0 = jb + s * MATMUL_NR;
                        let panel = &mut g[s * kc * MATMUL_NR..(s + 1) * kc * MATMUL_NR];
                        for (kk, dst) in (kb..ke).zip(panel.chunks_exact_mut(MATMUL_NR)) {
                            dst.copy_from_slice(&b[kk * n + j0..kk * n + j0 + MATMUL_NR]);
                        }
                    }
                    pack_guard = Some(g);
                }
                let packed: &[f32] = pack_guard.as_deref().unwrap_or(&[]);
                let mut oi = 0;
                while oi + MATMUL_MR <= nrows {
                    let i = rows.start + oi;
                    self.matmul_microkernel_mr_nr(b, packed, out_rows, i, oi, kb..ke, jb..je, n);
                    oi += MATMUL_MR;
                }
                // Row remainder (< MR rows): per-term axpy, same
                // ascending-k order per output element.
                while oi < nrows {
                    let arow = &self.data[(rows.start + oi) * k..(rows.start + oi + 1) * k];
                    let orow = &mut out_rows[oi * n + jb..oi * n + je];
                    for kk in kb..ke {
                        let av = arow[kk];
                        if !skip_zero_coeff(av) {
                            axpy_row(orow, av, &b[kk * n + jb..kk * n + je]);
                        }
                    }
                    oi += 1;
                }
                kb = ke;
            }
            jb = je;
        }
    }

    /// The register microkernel: accumulates the `MATMUL_MR × MATMUL_NR`
    /// output tile at `(global row `i`, window row `oi`)` over the
    /// k-panel `ks`, one `MATMUL_NR`-wide column strip of `js` at a
    /// time. Full strips read the k-panel from `packed` (the caller's
    /// NR-contiguous per-worker copy of `B`'s panel — see
    /// [`matmul_block_rows`](Matrix::matmul_block_rows)); the column
    /// remainder reads `b` directly. The accumulator tile is loaded from
    /// the output once per strip, updated in locals for the whole panel
    /// (fixed-size inner loops the autovectorizer turns into packed
    /// fma), and stored back once. Per output element the term order is
    /// ascending `k` with the per-coefficient zero skip — exactly the
    /// naive kernel's fold, so the bits match.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn matmul_microkernel_mr_nr(
        &self,
        b: &[f32],
        packed: &[f32],
        out_rows: &mut [f32],
        i: usize,
        oi: usize,
        ks: Range<usize>,
        js: Range<usize>,
        n: usize,
    ) {
        let k = self.cols;
        let kc = ks.end - ks.start;
        let a0 = &self.data[i * k..(i + 1) * k];
        let a1 = &self.data[(i + 1) * k..(i + 2) * k];
        let a2 = &self.data[(i + 2) * k..(i + 3) * k];
        let a3 = &self.data[(i + 3) * k..(i + 4) * k];
        let mut j = js.start;
        let mut strip = 0;
        while j + MATMUL_NR <= js.end {
            let panel = &packed[strip * kc * MATMUL_NR..(strip + 1) * kc * MATMUL_NR];
            let mut acc = [[0.0f32; MATMUL_NR]; MATMUL_MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&out_rows[(oi + r) * n + j..(oi + r) * n + j + MATMUL_NR]);
            }
            for (kk, bk) in (ks.start..ks.end).zip(panel.chunks_exact(MATMUL_NR)) {
                let (c0, c1, c2, c3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                if !skip_zero_coeff(c0) {
                    for (av, bv) in acc[0].iter_mut().zip(bk) {
                        *av += c0 * bv;
                    }
                }
                if !skip_zero_coeff(c1) {
                    for (av, bv) in acc[1].iter_mut().zip(bk) {
                        *av += c1 * bv;
                    }
                }
                if !skip_zero_coeff(c2) {
                    for (av, bv) in acc[2].iter_mut().zip(bk) {
                        *av += c2 * bv;
                    }
                }
                if !skip_zero_coeff(c3) {
                    for (av, bv) in acc[3].iter_mut().zip(bk) {
                        *av += c3 * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out_rows[(oi + r) * n + j..(oi + r) * n + j + MATMUL_NR].copy_from_slice(accr);
            }
            j += MATMUL_NR;
            strip += 1;
        }
        // Column remainder (< NR wide): per-term axpy on the tail strip,
        // still ascending k per element.
        if j < js.end {
            for (r, arow) in [a0, a1, a2, a3].into_iter().enumerate() {
                let orow = &mut out_rows[(oi + r) * n + j..(oi + r) * n + js.end];
                for kk in ks.start..ks.end {
                    let av = arow[kk];
                    if !skip_zero_coeff(av) {
                        axpy_row(orow, av, &b[kk * n + j..kk * n + js.end]);
                    }
                }
            }
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `other` element-wise, scaled: `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let d = [2.0, -1.0];
        assert_eq!(m.matvec_t(&d), m.transposed().matvec(&d));
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_update(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m.row(0), &[1.5, 2.0, 2.5]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_shapes() {
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(5, 7);
        assert_eq!(a.matmul(&b).rows(), 2);
        assert_eq!(a.matmul(&b).cols(), 7);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        sample().matvec(&[1.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a.row(1), &[6.0, 8.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_uniform_within_bounds() {
        let mut rng = Rng64::new(1);
        let m = Matrix::random_uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 2.0]]);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        Matrix::zeros(0, 3);
    }

    /// Independent reference for the documented matmul semantics: the
    /// (i, k, j) triple loop with the zero-coefficient skip.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Vec<f32> {
        let mut out = vec![0.0f32; a.rows() * b.cols()];
        for i in 0..a.rows() {
            for kk in 0..a.cols() {
                let av = a.at(i, kk);
                if av == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[i * b.cols() + j] += av * b.at(kk, j);
                }
            }
        }
        out
    }

    fn random_with_zeros(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        for i in (0..rows * cols).step_by(7) {
            m.as_mut_slice()[i] = 0.0;
        }
        m
    }

    #[test]
    fn blocked_matmul_bitwise_matches_reference() {
        // 70×150 × 150×90 clears BLOCKED_MIN_FLOPS, has non-multiple-of-8
        // k and non-multiple-of-block edges, and zeros exercise both the
        // fused-8 fallback and the skip path.
        let a = random_with_zeros(70, 150, 1);
        let b = random_with_zeros(150, 90, 2);
        let blocked = a.matmul(&b);
        let reference = matmul_reference(&a, &b);
        assert_eq!(
            blocked.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_kernels_bitwise_match_serial_across_thread_counts() {
        let a = random_with_zeros(130, 140, 3);
        let b = random_with_zeros(140, 120, 4);
        let mut rng = Rng64::new(5);
        let x: Vec<f32> = (0..140).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let mut d: Vec<f32> = (0..130).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        d[7] = 0.0;
        let serial = (a.matvec(&x), a.matvec_t(&d), a.matmul(&b));
        for threads in [1usize, 3, 8] {
            let par = enw_parallel::with_threads(threads, || {
                (a.par_matvec(&x), a.par_matvec_t(&d), a.par_matmul(&b))
            });
            assert!(serial.0.iter().zip(&par.0).all(|(s, p)| s.to_bits() == p.to_bits()));
            assert!(serial.1.iter().zip(&par.1).all(|(s, p)| s.to_bits() == p.to_bits()));
            assert!(serial
                .2
                .as_slice()
                .iter()
                .zip(par.2.as_slice())
                .all(|(s, p)| s.to_bits() == p.to_bits()));
        }
    }

    #[test]
    fn zero_skip_drops_nonfinite_terms() {
        // A zero coefficient must suppress Inf/NaN in the other operand
        // (0·∞ would otherwise produce NaN) — on every kernel tier.
        let mut a = random_with_zeros(64, 64, 6);
        for kk in 0..64 {
            a.set(0, kk, 0.0);
        }
        let mut b = random_with_zeros(64, 64, 7);
        for j in 0..64 {
            b.set(0, j, f32::INFINITY);
            b.set(1, j, f32::NAN);
        }
        // Row 0 of `a` is all-zero, so its output row touches every B row
        // — including the non-finite ones — only through skipped terms
        // and must come out exactly zero.
        let c = a.matmul(&b);
        assert!(c.row(0).iter().all(|v| *v == 0.0), "{:?}", &c.row(0)[..4]);
        // matvec_t with d == 0 on the rows whose weights are non-finite.
        let mut w = Matrix::zeros(2, 3);
        w.set(0, 0, f32::INFINITY);
        w.set(1, 1, f32::NAN);
        let y = w.matvec_t(&[0.0, 0.0]);
        assert_eq!(y, vec![0.0; 3]);
        let yp = enw_parallel::with_threads(3, || w.par_matvec_t(&[0.0, 0.0]));
        assert_eq!(yp, vec![0.0; 3]);
    }
}
