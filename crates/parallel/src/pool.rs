//! The persistent, lazily-started worker pool behind every parallel
//! entry point.
//!
//! The previous runtime paid a `thread::scope` spawn/join per call —
//! microseconds of kernel-level coordination that swamped the parallel
//! win on short kernels (E15 measured `matmul_1024x1024` *losing* time
//! at 2 threads). This pool spawns each worker **once**, on first use,
//! and parks it on a condvar between jobs, so the steady-state cost of a
//! parallel section is one mutex-protected enqueue and one unpark per
//! participating worker. Workers keep their thread-local scratch pools
//! ([`crate::scratch`]) warm across jobs, which also removes the
//! first-touch allocations the scoped runtime repaid on every call.
//!
//! # Deterministic ownership
//!
//! A job exposes `slots` participant slots: slot 0 is the **caller**
//! (which does chunk work instead of idling on the latch) and slots
//! `1..slots` are pool workers. Chunk *c* is always owned by slot
//! `c % slots` — a static round-robin deal that depends only on the
//! chunk count and the slot count, never on scheduling order. Chunk
//! boundaries themselves derive only from the problem size (see
//! [`crate::plan_chunks`]), each chunk is computed exactly as the serial
//! loop would compute it, and per-chunk results land in index-order
//! slots that the caller folds left to right. Scheduling nondeterminism
//! therefore affects *when* a chunk runs, never *what* it computes or
//! where its result goes, so outputs are bit-identical at any
//! `ENW_THREADS`.
//!
//! # Nesting
//!
//! A parallel section reached from inside a pool worker runs serially
//! inline ([`is_pool_worker`]): the outer job already owns all workers,
//! and blocking a worker on a sub-job it must itself execute would
//! deadlock. Serial execution inside a chunk computes the same bits, so
//! the determinism contract is unaffected.
//!
//! # Panics
//!
//! A panicking chunk does not poison the pool: workers catch the unwind,
//! record the first payload in the job latch, and go back to parking.
//! The caller re-raises the payload after every participant has left the
//! job's stack frame — which is also what makes the lifetime erasure
//! below sound.
//!
//! # Tracing
//!
//! `enw-trace` merges thread-local recorders into the process sink when
//! a thread exits. Pool workers never exit, so each worker flushes
//! explicitly ([`enw_trace::flush_local`]) after every job; the merge is
//! commutative, so per-job flushing records the same totals as the old
//! merge-on-join.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// A type-erased parallel job: participants call `run(slot)` with their
/// slot index. The references are lifetime-erased to `'static`; this is
/// sound because [`run_job`] does not return (normally or by unwinding)
/// until every participant has finished with them.
#[derive(Clone, Copy)]
struct Job {
    run: &'static (dyn Fn(usize) + Sync),
    latch: &'static Latch,
    /// Participant slot the receiving worker should run.
    slot: usize,
}

// SAFETY: both references point at Sync data; the raw erasure only
// removed the lifetime, not the Sync bound.
unsafe impl Send for Job {}

/// Stack-allocated completion latch: counts worker slots still running
/// and carries the first panic payload out of the job.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Latch {
        Latch { state: Mutex::new(LatchState { remaining, panic: None }), done: Condvar::new() }
    }

    /// Marks one participant finished, recording its panic payload (the
    /// first one wins) if it unwound.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.panic.is_none() {
            st.panic = panic;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every worker slot has completed; returns the first
    /// recorded panic payload.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panic.take()
    }
}

/// One worker's mailbox: a FIFO of jobs plus the condvar it parks on.
/// A FIFO (rather than a single slot) lets two user threads overlap
/// parallel sections — each worker simply drains jobs in arrival order.
struct Mailbox {
    queue: Mutex<Vec<Job>>,
    wake: Condvar,
}

/// The process-wide pool. Workers are spawned lazily by
/// [`Pool::ensure_workers`] and live for the rest of the process,
/// parked on their mailbox condvar while idle.
struct Pool {
    /// Mailboxes of spawned workers; grows monotonically, never shrinks.
    /// Boxed and leaked so worker threads can hold `'static` references.
    mailboxes: Mutex<Vec<&'static Mailbox>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool { mailboxes: Mutex::new(Vec::new()) })
}

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True on a pool worker thread. Parallel entry points use this to run
/// nested parallel sections serially inline (see module docs).
pub fn is_pool_worker() -> bool {
    IS_POOL_WORKER.with(|f| f.get())
}

impl Pool {
    /// Grows the pool toward `n` spawned workers and returns how many it
    /// actually has. If the OS refuses a thread, the pool stops growing
    /// and callers cover the missing slots inline — degraded throughput,
    /// identical results.
    fn ensure_workers(&'static self, n: usize) -> usize {
        let mut boxes = self.mailboxes.lock().unwrap_or_else(|e| e.into_inner());
        while boxes.len() < n {
            let mb: &'static Mailbox = Box::leak(Box::new(Mailbox {
                queue: Mutex::new(Vec::new()),
                wake: Condvar::new(),
            }));
            let id = boxes.len();
            let spawned = thread::Builder::new()
                .name(format!("enw-worker-{id}"))
                .spawn(move || worker_loop(mb));
            match spawned {
                Ok(_) => boxes.push(mb),
                Err(_) => break,
            }
        }
        boxes.len()
    }

    /// Enqueues `job` (with per-worker slot indices `1..=workers`) on
    /// the first `workers` mailboxes and unparks them.
    fn dispatch(&'static self, workers: usize, job: Job) {
        let boxes = self.mailboxes.lock().unwrap_or_else(|e| e.into_inner());
        for (w, mb) in boxes.iter().take(workers).enumerate() {
            let mut q = mb.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push(Job { slot: w + 1, ..job });
            drop(q);
            mb.wake.notify_one();
        }
    }

    /// Number of workers currently spawned.
    fn spawned(&'static self) -> usize {
        self.mailboxes.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

fn worker_loop(mb: &'static Mailbox) {
    IS_POOL_WORKER.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = mb.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.is_empty() {
                    break q.remove(0); // FIFO: preserve job arrival order
                }
                q = mb.wake.wait(q).unwrap_or_else(|e| e.into_inner()); // park
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| (job.run)(job.slot)));
        // Merge this worker's trace recordings before the caller can
        // observe job completion (pool workers never exit, so the
        // merge-on-thread-drop path never runs for them).
        enw_trace::flush_local();
        job.latch.complete(result.err());
    }
}

/// Runs `run(slot)` for every slot in `0..slots` across the pool: slot 0
/// on the calling thread, slots `1..slots` on pool workers (spawned on
/// first use). Blocks until every slot has finished; re-raises the first
/// panic any slot produced.
///
/// `run` must treat the slot index as its identity in a static chunk
/// deal (`chunk c` belongs to `slot c % slots`) so that no two slots
/// touch the same chunk.
///
/// # Panics
///
/// Propagates panics from any slot (after all slots have finished, so
/// borrowed state stays alive for the full job).
pub(crate) fn run_job(slots: usize, run: &(dyn Fn(usize) + Sync)) {
    debug_assert!(slots >= 2, "serial case is the caller's fast path");
    let extra = slots - 1;
    let p = pool();
    // Workers the pool could actually provide; any shortfall (the OS
    // refused a thread) is covered by the caller inline below — slot
    // ownership is positional, so results don't change.
    let extra = p.ensure_workers(extra).min(extra);
    if extra == 0 {
        for s in 0..slots {
            run(s);
        }
        return;
    }
    let latch = Latch::new(extra);
    // SAFETY: lifetime erasure to 'static. Every dispatched copy of
    // these references is consumed by a worker that signals `latch`
    // afterwards, and we do not leave this frame — even on panic —
    // until `latch.wait()` has seen all `extra` completions.
    let job: Job = unsafe {
        Job {
            run: std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                run,
            ),
            latch: std::mem::transmute::<&Latch, &'static Latch>(&latch),
            slot: 0,
        }
    };
    p.dispatch(extra, job);
    // The caller is slot 0: it does chunk work instead of idling (plus
    // any trailing slots no worker exists for). Its own panic is
    // deferred until the workers are done with `run`.
    let caller = catch_unwind(AssertUnwindSafe(|| {
        run(0);
        for s in extra + 1..slots {
            run(s);
        }
    }));
    let worker_panic = latch.wait();
    if let Err(payload) = caller {
        std::panic::resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        std::panic::resume_unwind(payload);
    }
}

/// Spawns (if necessary) `workers` pool workers without running a job —
/// lets latency-sensitive callers (the serving runtime) pay thread
/// start-up before the first request instead of inside it. A no-op for
/// counts the pool already has.
pub fn prewarm(workers: usize) {
    pool().ensure_workers(workers.saturating_sub(1));
}

/// Runs `f` on the calling thread **and** every currently spawned pool
/// worker, returning the results in deterministic slot order (caller
/// first, then workers by pool index). Used for pool-wide aggregation
/// of thread-local state — e.g. [`crate::scratch::worker_stats`].
///
/// When called from inside a pool worker (where a broadcast would
/// deadlock on its own mailbox) only the calling thread's value is
/// returned.
pub fn broadcast<R: Send>(f: impl Fn() -> R + Sync) -> Vec<R> {
    let own = f();
    if is_pool_worker() {
        return vec![own];
    }
    let p = pool();
    let n = p.spawned();
    if n == 0 {
        return vec![own];
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;
    let f_ref = &f;
    let run = move |slot: usize| {
        if slot == 0 {
            return; // the caller's value was taken before dispatch
        }
        *slots_ref[slot - 1].lock().unwrap_or_else(|e| e.into_inner()) = Some(f_ref());
    };
    run_job(n + 1, &run);
    let mut out = Vec::with_capacity(n + 1);
    out.push(own);
    // Every dispatched slot is filled before `run_job` returns (a worker
    // panic would have propagated there), so this drops nothing.
    for s in slots {
        if let Some(v) = s.into_inner().unwrap_or_else(|e| e.into_inner()) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_job_runs_every_slot_exactly_once() {
        for slots in [2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..slots).map(|_| AtomicUsize::new(0)).collect();
            let hits_ref = &hits;
            run_job(slots, &move |s| {
                hits_ref[s].fetch_add(1, Ordering::SeqCst);
            });
            for (s, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "slot {s} of {slots}");
            }
        }
    }

    #[test]
    fn pool_threads_persist_across_jobs() {
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<Vec<String>> = StdMutex::new(Vec::new());
        let seen_ref = &seen;
        for _ in 0..4 {
            run_job(3, &move |s| {
                if s > 0 {
                    seen_ref.lock().unwrap().push(format!("{:?}", thread::current().id()));
                }
            });
        }
        // 4 jobs x 2 worker slots land on the same 2 persistent threads
        // (not 8 fresh ones).
        let mut ids = seen.into_inner().unwrap();
        assert_eq!(ids.len(), 8);
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn worker_panic_reaches_caller_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_job(4, &|s| {
                if s == 2 {
                    panic!("slot 2 boom");
                }
            });
        }));
        let payload = caught.expect_err("panic payload");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "slot 2 boom", "original payload must propagate");
        // The pool must keep working after a panicking job.
        let ok = AtomicUsize::new(0);
        let ok_ref = &ok;
        run_job(4, &move |_| {
            ok_ref.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn broadcast_covers_caller_and_all_workers() {
        prewarm(4); // ensure at least 3 spawned workers
        let results = broadcast(|| if is_pool_worker() { 1usize } else { 0usize });
        assert!(results.len() >= 4, "caller + >=3 workers, got {}", results.len());
        assert_eq!(results[0], 0, "slot 0 is the caller");
        assert!(results[1..].iter().all(|&v| v == 1), "other slots are pool workers");
    }

    #[test]
    fn nested_sections_detect_pool_context() {
        let nested: Vec<bool> = broadcast(is_pool_worker);
        assert!(!nested[0]);
        // Inside a worker, nested parallel entry points must see
        // is_pool_worker() == true and degrade to serial.
        assert!(nested[1..].iter().all(|&v| v));
    }
}
