//! Thread-local, size-classed scratch buffer pools for zero-allocation
//! hot paths.
//!
//! The paper's recsys (Sec. V) and X-MANN (Sec. III) workloads are
//! memory-bound: per-call `Vec` churn in an inference loop costs more
//! than the arithmetic it feeds. Kernels therefore borrow their
//! temporaries from a per-thread pool instead of allocating:
//!
//! ```
//! use enw_parallel::scratch;
//! let mut y = scratch::take_f32(128); // zeroed, len == 128
//! y[0] = 1.0;
//! drop(y); // buffer returns to this thread's pool for reuse
//! ```
//!
//! **Size classes.** A request for `len` elements is served from the
//! class `ceil(log2(len))`; freed buffers are binned by
//! `floor(log2(capacity))`, so any pooled buffer in a class can satisfy
//! any request mapped to it without growing. Each thread retains at most
//! a few buffers per class — steady-state kernels hit the pool every
//! time, while one-off giants are dropped rather than hoarded.
//!
//! **Determinism.** Checked-out buffers are always zero-filled to the
//! requested length before the caller sees them, so no stale contents
//! from a previous checkout (possibly a different kernel) can leak into
//! results. Pools are `thread_local!`, never shared, so the values a
//! kernel computes are independent of which worker ran it — results
//! stay bit-identical at any `ENW_THREADS`.
//!
//! **RAII.** [`ScratchF32`], [`ScratchUsize`] and [`ScratchBits`] are
//! checkout guards: they deref to a slice and return the buffer to the
//! pool on drop (including on panic unwind). During thread teardown the
//! pool may already be destroyed; the guard then simply frees the
//! buffer.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers with more than `2^MAX_CLASS` elements are never pooled.
const MAX_CLASS: usize = 28;

/// Retained buffers per size class per thread. Hot kernels need one or
/// two temporaries of a given shape at a time; anything beyond this is
/// returned to the allocator.
const MAX_PER_CLASS: usize = 4;

/// Class that serves a request for `len` elements: `ceil(log2(len))`.
fn request_class(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Class a freed buffer of `capacity` elements is binned into:
/// `floor(log2(capacity))`, so every resident of class `c` has capacity
/// at least `2^c` and can serve any request mapped to `c`.
fn capacity_class(capacity: usize) -> usize {
    (usize::BITS - 1 - capacity.max(1).leading_zeros()) as usize
}

/// Per-thread pool counters, for tests and the allocation audit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts served on this thread.
    pub checkouts: u64,
    /// Checkouts served by reusing a pooled buffer (no allocation).
    pub pool_hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub fresh_allocs: u64,
}

struct Pool<T> {
    classes: Vec<Vec<Vec<T>>>,
    stats: PoolStats,
}

impl<T> Pool<T> {
    fn new() -> Self {
        Pool { classes: Vec::new(), stats: PoolStats::default() }
    }

    fn checkout(&mut self, len: usize) -> Vec<T> {
        self.stats.checkouts += 1;
        let class = request_class(len);
        if class <= MAX_CLASS {
            if let Some(stack) = self.classes.get_mut(class) {
                if let Some(buf) = stack.pop() {
                    self.stats.pool_hits += 1;
                    return buf;
                }
            }
        }
        self.stats.fresh_allocs += 1;
        // Allocate the full class width so the buffer re-bins into the
        // same class it was checked out from.
        Vec::with_capacity(len.max(1).next_power_of_two())
    }

    fn put_back(&mut self, mut buf: Vec<T>) {
        let class = capacity_class(buf.capacity());
        if buf.capacity() == 0 || class > MAX_CLASS {
            return; // not worth pooling / too large to hoard
        }
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let stack = &mut self.classes[class];
        if stack.len() < MAX_PER_CLASS {
            buf.clear();
            stack.push(buf);
        }
    }

    fn clear(&mut self) {
        self.classes.clear();
        self.stats = PoolStats::default();
    }
}

macro_rules! scratch_pool {
    ($pool:ident, $take:ident, $guard:ident, $elem:ty, $zero:expr, $doc:expr) => {
        thread_local! {
            static $pool: RefCell<Pool<$elem>> = RefCell::new(Pool::new());
        }

        #[doc = $doc]
        ///
        /// RAII checkout guard: derefs to a slice of the requested
        /// length and returns the buffer to this thread's pool on drop.
        pub struct $guard {
            buf: Vec<$elem>,
        }

        #[doc = concat!("Checks out a zero-filled buffer of `len` elements (see [`", stringify!($guard), "`]).")]
        pub fn $take(len: usize) -> $guard {
            let mut buf = $pool.with(|p| p.borrow_mut().checkout(len));
            buf.clear();
            buf.resize(len, $zero);
            $guard { buf }
        }

        impl $guard {
            /// The checked-out buffer as a shared slice.
            pub fn as_slice(&self) -> &[$elem] {
                &self.buf
            }

            /// The checked-out buffer as a mutable slice.
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                &mut self.buf
            }
        }

        impl Deref for $guard {
            type Target = [$elem];
            fn deref(&self) -> &[$elem] {
                &self.buf
            }
        }

        impl DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut [$elem] {
                &mut self.buf
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                let buf = std::mem::take(&mut self.buf);
                // `try_with`: during thread teardown the pool TLS slot
                // may already be gone — then just free the buffer.
                let _ = $pool.try_with(|p| p.borrow_mut().put_back(buf));
            }
        }
    };
}

scratch_pool!(
    POOL_F32,
    take_f32,
    ScratchF32,
    f32,
    0.0f32,
    "Pooled `f32` scratch buffer (activations, pooled embeddings, matvec outputs)."
);
scratch_pool!(
    POOL_USIZE,
    take_usize,
    ScratchUsize,
    usize,
    0usize,
    "Pooled `usize` scratch buffer (index lists, permutation workspaces)."
);
scratch_pool!(
    POOL_BITS,
    take_bits,
    ScratchBits,
    u64,
    0u64,
    "Pooled `u64`-word scratch buffer (bit-vector workspaces for CAM/TCAM kernels)."
);

impl PoolStats {
    fn add(&mut self, s: PoolStats) {
        self.checkouts += s.checkouts;
        self.pool_hits += s.pool_hits;
        self.fresh_allocs += s.fresh_allocs;
    }
}

/// Combined checkout counters for this thread's three pools.
///
/// **Calling-thread-only.** Scratch pools are `thread_local!`, and this
/// function reads only the *calling* thread's counters. Kernels that ran
/// on the persistent worker pool checked their scratch out on *worker*
/// threads, which this function cannot see — after a parallel section it
/// can legitimately report zero checkouts. Use [`worker_stats`] for the
/// pool-wide picture.
pub fn thread_stats() -> PoolStats {
    let mut total = PoolStats::default();
    for s in [
        POOL_F32.with(|p| p.borrow().stats),
        POOL_USIZE.with(|p| p.borrow().stats),
        POOL_BITS.with(|p| p.borrow().stats),
    ] {
        total.checkouts += s.checkouts;
        total.pool_hits += s.pool_hits;
        total.fresh_allocs += s.fresh_allocs;
    }
    total
}

/// Combined checkout counters across the calling thread **and every
/// spawned pool worker**, summed in deterministic slot order (caller
/// first, then workers by pool index).
///
/// This is what the E18 allocation audit reads after parallel sections:
/// under the persistent pool, worker threads hold their own
/// `thread_local!` pools, so [`thread_stats`] on the audit thread misses
/// all checkouts that kernels performed on workers. The aggregation runs
/// as a pool broadcast; from inside a pool worker it degrades to that
/// worker's own counters.
pub fn worker_stats() -> PoolStats {
    let mut total = PoolStats::default();
    for s in crate::pool::broadcast(thread_stats) {
        total.add(s);
    }
    total
}

/// Drops every buffer retained by this thread's pools and zeroes the
/// counters. Used by tests and the allocation audit to measure cold
/// (first-touch) versus warm behaviour.
///
/// **Calling-thread-only**, like [`thread_stats`]: buffers retained by
/// persistent pool workers stay warm. Use [`reset_worker_pools`] to
/// clear every worker's pools as well.
pub fn reset_thread_pools() {
    POOL_F32.with(|p| p.borrow_mut().clear());
    POOL_USIZE.with(|p| p.borrow_mut().clear());
    POOL_BITS.with(|p| p.borrow_mut().clear());
}

/// [`reset_thread_pools`] on the calling thread **and every spawned pool
/// worker** (a pool broadcast). Gives the allocation audit a genuinely
/// cold start under the persistent pool.
pub fn reset_worker_pools() {
    crate::pool::broadcast(reset_thread_pools);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_and_sized() {
        reset_thread_pools();
        let mut a = take_f32(37);
        assert_eq!(a.len(), 37);
        assert!(a.iter().all(|&v| v == 0.0));
        for v in a.iter_mut() {
            *v = 7.5;
        }
        drop(a);
        // Reused buffer must come back zeroed despite the writes above.
        let b = take_f32(37);
        assert_eq!(b.len(), 37);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn same_class_checkout_reuses_the_buffer() {
        reset_thread_pools();
        let a = take_f32(100); // class ceil(log2 100) = 7
        drop(a);
        let before = thread_stats();
        let b = take_f32(100);
        drop(b);
        let c = take_f32(128); // 128 maps to the same class 7
        drop(c);
        let after = thread_stats();
        assert_eq!(after.pool_hits - before.pool_hits, 2, "warm checkouts must hit the pool");
        assert_eq!(after.fresh_allocs, before.fresh_allocs, "warm checkouts must not allocate");
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        reset_thread_pools();
        let small = take_usize(8);
        let big = take_usize(1 << 12);
        assert_eq!(small.len(), 8);
        assert_eq!(big.len(), 1 << 12);
        drop(small);
        drop(big);
        // A mid-size request lands in its own class; the class-7 request
        // below must not be served by the class-3 buffer.
        let mid = take_usize(100);
        assert_eq!(mid.len(), 100);
    }

    #[test]
    fn pool_retention_is_bounded() {
        reset_thread_pools();
        // Check out more guards of one class than the pool retains.
        let guards: Vec<ScratchBits> = (0..MAX_PER_CLASS + 3).map(|_| take_bits(64)).collect();
        drop(guards);
        let stats = thread_stats();
        assert_eq!(stats.fresh_allocs as usize, MAX_PER_CLASS + 3);
        // Only MAX_PER_CLASS buffers were retained; the rest were freed.
        let again: Vec<ScratchBits> = (0..MAX_PER_CLASS + 3).map(|_| take_bits(64)).collect();
        let warm = thread_stats();
        assert_eq!(warm.pool_hits as usize, MAX_PER_CLASS);
        drop(again);
    }

    #[test]
    fn zero_len_checkout_is_fine() {
        let g = take_f32(0);
        assert!(g.is_empty());
    }

    #[test]
    fn reset_clears_retained_buffers_and_stats() {
        let g = take_f32(64);
        drop(g);
        reset_thread_pools();
        assert_eq!(thread_stats(), PoolStats::default());
        let _g = take_f32(64);
        assert_eq!(thread_stats().fresh_allocs, 1, "pool must be cold after reset");
    }

    #[test]
    fn classes_round_as_documented() {
        assert_eq!(request_class(1), 0);
        assert_eq!(request_class(2), 1);
        assert_eq!(request_class(3), 2);
        assert_eq!(request_class(100), 7);
        assert_eq!(request_class(128), 7);
        assert_eq!(capacity_class(128), 7);
        assert_eq!(capacity_class(255), 7);
        assert_eq!(capacity_class(256), 8);
    }

    #[test]
    fn worker_stats_see_pool_worker_checkouts() {
        crate::with_threads(4, || {
            reset_worker_pools();
            // One scratch checkout per chunk; chunks land on pool
            // workers that thread_stats (calling-thread-only) misses.
            let worker_hits = crate::pool::broadcast(|| {
                if crate::pool::is_pool_worker() {
                    let g = take_f32(64);
                    g.len() as u64
                } else {
                    0
                }
            });
            let expected: u64 = worker_hits.iter().filter(|&&v| v > 0).count() as u64;
            assert!(expected >= 1, "broadcast should have reached pool workers");
            let local = thread_stats();
            let global = worker_stats();
            assert_eq!(
                global.checkouts - local.checkouts,
                expected,
                "worker_stats must add exactly the worker-side checkouts"
            );
            reset_worker_pools();
            assert_eq!(worker_stats(), PoolStats::default(), "reset must reach workers too");
        });
    }

    #[test]
    fn pools_are_thread_local() {
        reset_thread_pools();
        let g = take_f32(512);
        drop(g);
        let other = std::thread::spawn(|| {
            let before = thread_stats();
            let g = take_f32(512);
            drop(g);
            (before, thread_stats())
        });
        let (before, after) = other.join().unwrap();
        assert_eq!(before, PoolStats::default(), "fresh thread starts with an empty pool");
        assert_eq!(after.fresh_allocs, 1, "other thread cannot see this thread's buffers");
    }
}
