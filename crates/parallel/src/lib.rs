//! Dependency-free parallel runtime with deterministic chunked reduction.
//!
//! Every hot loop in the workspace — crossbar MVM rows, TCAM arrays in a
//! bank, embedding tables, few-shot episodes — is data-parallel over an
//! index range. This module runs such loops on a scoped worker pool
//! (`std::thread::scope`, no unsafe, no external crates) while keeping a
//! guarantee the numeric code depends on:
//!
//! **Determinism.** Work is split at *fixed chunk boundaries* derived
//! only from the problem size and a caller-chosen chunk length — never
//! from the thread count. Each chunk is computed exactly as the serial
//! code would compute it, and per-chunk results are handed back in chunk
//! order. A caller that folds them left-to-right therefore performs the
//! same floating-point operations in the same order as the serial loop,
//! so results are bit-identical for 1, 3, or 64 threads.
//!
//! The worker count comes from, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests and the scaling experiment),
//! 2. the `ENW_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every entry point degenerates to the plain serial
//! loop on the calling thread — no pool, no overhead.

pub mod scratch;

use std::cell::Cell;
use std::ops::Range;
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel entry points will use.
///
/// Resolution order: [`with_threads`] override, then `ENW_THREADS`
/// (values that fail to parse, or `0`, are ignored), then the machine's
/// available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("ENW_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the worker count pinned to `n` on this thread.
///
/// Nested calls stack; the previous override is restored on exit (also
/// on panic, since the guard restores on drop). This is how the
/// equivalence tests and `exp15_parallel_scaling` sweep thread counts.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Splits `0..n` at fixed `chunk`-sized boundaries.
fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk)).map(|c| c * chunk..((c + 1) * chunk).min(n)).collect()
}

/// Applies `f` to each fixed-boundary chunk of `0..n`, in parallel, and
/// returns the per-chunk results **in chunk order**.
///
/// Chunk boundaries depend only on `n` and `chunk`, so the result vector
/// is identical for any worker count; fold it left-to-right for a
/// bit-deterministic reduction.
pub fn map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(n, chunk);
    let workers = max_threads().min(ranges.len());
    if workers <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let nchunks = ranges.len();
    let ranges = &ranges;
    let f = &f;
    let mut results: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    // Round-robin chunk claim: static, no work stealing.
                    let mut out = Vec::new();
                    let mut c = w;
                    while c < nchunks {
                        out.push((c, f(ranges[c].clone())));
                        c += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload rather
            // than wrapping it in a second panic message.
            let chunk_results = match h.join() {
                Ok(rs) => rs,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (c, r) in chunk_results {
                results[c] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("chunk not computed")).collect()
}

/// Like [`map_chunks`], but hands each worker a disjoint `&mut` window
/// of `data` (split at fixed `chunk` boundaries) plus the window's start
/// offset. Per-chunk results come back in chunk order.
pub fn for_each_chunk_mut<T, R, F>(data: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = data.len().div_ceil(chunk);
    let workers = max_threads().min(nchunks);
    if workers <= 1 {
        return data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, window)| f(c * chunk, window))
            .collect();
    }
    // Deal the disjoint windows round-robin onto per-worker queues.
    let mut queues: Vec<Vec<(usize, usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (c, window) in data.chunks_mut(chunk).enumerate() {
        queues[c % workers].push((c, c * chunk, window));
    }
    let f = &f;
    let mut results: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|q| {
                s.spawn(move || {
                    q.into_iter()
                        .map(|(c, start, window)| (c, f(start, window)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload rather
            // than wrapping it in a second panic message.
            let chunk_results = match h.join() {
                Ok(rs) => rs,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (c, r) in chunk_results {
                results[c] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("chunk not computed")).collect()
}

/// True when a parallel entry point should bother spawning: more than
/// one worker is available *and* the problem clears the caller's
/// serial-dispatch threshold.
pub fn should_parallelize(work_items: usize, threshold: usize) -> bool {
    work_items >= threshold && max_threads() > 1
}

/// Abstract per-chunk work (≈ scalar operations) that [`adaptive_chunk`]
/// aims for. Large enough to amortise chunk dispatch and the per-chunk
/// result slot, small enough that a big kernel still splits into many
/// chunks for load balancing.
const TARGET_CHUNK_WORK: usize = 1 << 15;

/// Sizes a chunk for `n` items that each cost roughly `work_per_item`
/// abstract units (≈ scalar ops), targeting [`TARGET_CHUNK_WORK`] per
/// chunk.
///
/// Earlier kernels used fixed chunk constants, which made cheap rows
/// over-chunked (dispatch-bound — the flat 1→8 scaling visible in
/// `BENCH_parallel_kernels.json`) and expensive rows under-split. The
/// returned size depends only on the problem shape, never on the worker
/// count, so chunk boundaries — and therefore reduction order — remain
/// bit-deterministic at any `ENW_THREADS`.
pub fn adaptive_chunk(n: usize, work_per_item: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (TARGET_CHUNK_WORK / work_per_item.max(1)).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_are_fixed() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(4, 4), vec![0..4]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn map_chunks_results_in_chunk_order_for_any_thread_count() {
        let serial: Vec<Range<usize>> = with_threads(1, || map_chunks(23, 5, |r| r));
        for t in [2, 3, 8] {
            let par = with_threads(t, || map_chunks(23, 5, |r| r));
            assert_eq!(par, serial, "thread count {t} changed chunk order");
        }
    }

    #[test]
    fn map_chunks_reduction_is_bit_identical() {
        let xs: Vec<f32> = (0..997).map(|i| (i as f32 * 0.37).sin()).collect();
        let sum_chunks = |chunks: Vec<f32>| chunks.into_iter().fold(0.0f32, |a, b| a + b);
        let partial = |r: Range<usize>| xs[r].iter().fold(0.0f32, |a, &b| a + b);
        let serial = sum_chunks(with_threads(1, || map_chunks(xs.len(), 64, partial)));
        for t in [2, 3, 7] {
            let par = sum_chunks(with_threads(t, || map_chunks(xs.len(), 64, partial)));
            assert_eq!(par.to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_every_element_once() {
        let mut data = vec![0u32; 31];
        for t in [1, 3, 8] {
            data.iter_mut().for_each(|v| *v = 0);
            let starts = with_threads(t, || {
                for_each_chunk_mut(&mut data, 7, |start, window| {
                    for (i, v) in window.iter_mut().enumerate() {
                        *v += (start + i) as u32;
                    }
                    start
                })
            });
            assert_eq!(starts, vec![0, 7, 14, 21, 28]);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as u32, "element {i} touched wrong number of times");
            }
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let inner = with_threads(3, || {
            let nested = with_threads(5, max_threads);
            assert_eq!(nested, 5);
            max_threads()
        });
        assert_eq!(inner, 3);
        // Override cleared after the scope exits (ambient value may be
        // env-dependent, so check the override cell directly).
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), None);
    }

    #[test]
    fn env_var_sets_worker_count() {
        // Process-global: this is the only test that touches ENW_THREADS.
        std::env::set_var("ENW_THREADS", "1");
        assert_eq!(max_threads(), 1);
        std::env::set_var("ENW_THREADS", "6");
        assert_eq!(max_threads(), 6);
        // Garbage and zero fall back to the machine default.
        std::env::set_var("ENW_THREADS", "zero");
        assert!(max_threads() >= 1);
        std::env::set_var("ENW_THREADS", "0");
        assert!(max_threads() >= 1);
        // The thread-local override outranks the environment.
        std::env::set_var("ENW_THREADS", "4");
        assert_eq!(with_threads(2, max_threads), 2);
        std::env::remove_var("ENW_THREADS");
    }

    #[test]
    fn should_parallelize_respects_threshold_and_override() {
        with_threads(8, || {
            assert!(should_parallelize(1000, 100));
            assert!(!should_parallelize(10, 100));
        });
        with_threads(1, || {
            assert!(!should_parallelize(1000, 100));
        });
    }

    #[test]
    fn adaptive_chunk_tracks_work_estimate() {
        // Cheap items coalesce into big chunks; expensive items split.
        assert_eq!(adaptive_chunk(1 << 20, 1), TARGET_CHUNK_WORK);
        assert_eq!(adaptive_chunk(1 << 20, TARGET_CHUNK_WORK), 1);
        // Never exceeds the item count, never returns zero.
        assert_eq!(adaptive_chunk(10, 1), 10);
        assert_eq!(adaptive_chunk(0, 0), 1);
        assert_eq!(adaptive_chunk(5, usize::MAX), 1);
        // Independent of the worker count by construction.
        let at1 = with_threads(1, || adaptive_chunk(4096, 100));
        let at8 = with_threads(8, || adaptive_chunk(4096, 100));
        assert_eq!(at1, at8);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_chunks(16, 1, |r| {
                    if r.start == 9 {
                        panic!("boom");
                    }
                    r.start
                })
            })
        });
        assert!(caught.is_err());
    }
}
