//! Dependency-free parallel runtime with deterministic chunked reduction.
//!
//! Every hot loop in the workspace — crossbar MVM rows, TCAM arrays in a
//! bank, embedding tables, few-shot episodes — is data-parallel over an
//! index range. This module runs such loops on a **persistent, lazily
//! started worker pool** ([`pool`]): workers are spawned once on first
//! use, park on a condvar between jobs, and keep their thread-local
//! scratch pools warm, so the steady-state cost of a parallel section is
//! an enqueue and an unpark — no thread spawn/join on the hot path. The
//! runtime keeps a guarantee the numeric code depends on:
//!
//! **Determinism.** Work is split at *fixed chunk boundaries* derived
//! only from the problem size and a caller-chosen chunk length — never
//! from the thread count. Chunk *i* is always owned by participant slot
//! `i % slots` (a static deal, no work stealing), computed exactly as
//! the serial code would compute it, and handed back in chunk order. A
//! caller that folds the results left-to-right therefore performs the
//! same floating-point operations in the same order as the serial loop,
//! so results are bit-identical for 1, 3, or 64 threads.
//!
//! **One work-estimate model.** [`plan_chunks`] is the single gate for
//! "should this call go parallel, and at what granularity": it sizes
//! chunks for [`TARGET_CHUNK_WORK`] abstract units and only returns a
//! plan when the problem yields at least two such chunks. Kernels either
//! get `None` (run serial) or a chunk size that is guaranteed to split —
//! the gate and the granularity can no longer disagree.
//!
//! The worker count comes from, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests and the scaling experiment),
//! 2. the `ENW_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every entry point degenerates to the plain serial
//! loop on the calling thread — no pool interaction, no overhead. The
//! same degeneration applies to parallel sections reached from *inside*
//! a pool worker (nested parallelism runs serial inline; see [`pool`]).

pub mod pool;
pub mod scratch;

pub use pool::prewarm;

use std::cell::Cell;
use std::ops::Range;
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel entry points will use.
///
/// Resolution order: [`with_threads`] override, then `ENW_THREADS`
/// (values that fail to parse, or `0`, are ignored), then the machine's
/// available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("ENW_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    machine_parallelism()
}

/// [`std::thread::available_parallelism`], resolved once per process.
/// The raw call re-reads cgroup quota files on Linux — several heap
/// allocations and microseconds of syscalls — far too heavy for a
/// per-kernel-dispatch gate.
fn machine_parallelism() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MACHINE.get_or_init(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `f` with the worker count pinned to `n` on this thread.
///
/// Nested calls stack; the previous override is restored on exit (also
/// on panic, since the guard restores on drop). This is how the
/// equivalence tests and `exp15_parallel_scaling` sweep thread counts.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Raw-pointer writer for per-chunk result slots. Sound because the
/// static chunk deal gives every index to exactly one participant, and
/// the owning `Vec` outlives the job (the pool blocks until all slots
/// finish).
struct SlotWriter<R>(*mut Option<R>);

// SAFETY: distinct job slots write distinct indices; R crosses threads.
unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    /// # Safety
    ///
    /// `idx` must be in bounds of the backing `Vec` and owned by exactly
    /// one job slot, and the `Vec` must outlive the job.
    unsafe fn write(&self, idx: usize, value: R) {
        *self.0.add(idx) = Some(value);
    }
}

/// Raw-pointer base for handing disjoint `&mut` windows of one slice to
/// different job slots (the pointer equivalent of `chunks_mut`).
struct DataPtr<T>(*mut T);

// SAFETY: windows derived from this pointer are disjoint per the static
// chunk deal; sending &mut access of T across threads needs T: Send.
unsafe impl<T: Send> Send for DataPtr<T> {}
unsafe impl<T: Send> Sync for DataPtr<T> {}

impl<T> DataPtr<T> {
    /// # Safety
    ///
    /// `start..start + len` must be in bounds of the backing slice,
    /// disjoint from every other live window, and the slice must outlive
    /// the job.
    #[allow(clippy::mut_from_ref)] // windows are disjoint per the chunk deal
    unsafe fn window(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

/// Participant count for a problem with `nchunks` chunks: 1 (serial)
/// unless multiple threads are available, we are not already inside a
/// pool worker, and there is more than one chunk to hand out.
fn job_slots(nchunks: usize) -> usize {
    if pool::is_pool_worker() {
        return 1;
    }
    max_threads().min(nchunks).max(1)
}

/// Applies `f` to each fixed-boundary chunk of `0..n`, in parallel on
/// the persistent pool, and returns the per-chunk results **in chunk
/// order**.
///
/// Chunk boundaries depend only on `n` and `chunk`, so the result vector
/// is identical for any worker count; fold it left-to-right for a
/// bit-deterministic reduction.
pub fn map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    let range = move |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let slots = job_slots(nchunks);
    if slots <= 1 {
        return (0..nchunks).map(|c| f(range(c))).collect();
    }
    let mut results: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    let out = SlotWriter(results.as_mut_ptr());
    let f = &f;
    pool::run_job(slots, &move |slot| {
        let mut c = slot;
        while c < nchunks {
            let r = f(range(c));
            // SAFETY: chunk c belongs to this slot alone (c % slots ==
            // slot), and `results` outlives the job.
            unsafe { out.write(c, r) };
            c += slots;
        }
    });
    results.into_iter().map(|r| r.expect("chunk not computed")).collect()
}

/// Like [`map_chunks`], but hands each participant a disjoint `&mut`
/// window of `data` (split at fixed `chunk` boundaries) plus the
/// window's start offset. Per-chunk results come back in chunk order.
pub fn for_each_chunk_mut<T, R, F>(data: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let len = data.len();
    let nchunks = len.div_ceil(chunk);
    let slots = job_slots(nchunks);
    if slots <= 1 {
        return data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, window)| f(c * chunk, window))
            .collect();
    }
    let mut results: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    let out = SlotWriter(results.as_mut_ptr());
    let base = DataPtr(data.as_mut_ptr());
    let f = &f;
    pool::run_job(slots, &move |slot| {
        let mut c = slot;
        while c < nchunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            // SAFETY: fixed chunk boundaries make the windows disjoint,
            // each chunk index belongs to exactly one slot, and `data`
            // outlives the job.
            let window = unsafe { base.window(start, end - start) };
            let r = f(start, window);
            // SAFETY: as in `map_chunks`.
            unsafe { out.write(c, r) };
            c += slots;
        }
    });
    results.into_iter().map(|r| r.expect("chunk not computed")).collect()
}

/// Like [`map_chunks`] for side-effect-only chunk bodies: no per-chunk
/// result vector is built, so a parallel section costs **zero heap
/// allocations** in steady state (the pool's mailboxes and latch are
/// retained/stack-allocated). This is the fan-out primitive for
/// zero-alloc training loops; reductions go through caller-owned
/// buffers indexed by chunk, or an integer atomic when the combine is
/// commutative in exact arithmetic (pulse counts, byte totals).
pub fn run_chunks<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    let range = move |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let slots = job_slots(nchunks);
    if slots <= 1 {
        for c in 0..nchunks {
            f(range(c));
        }
        return;
    }
    let f = &f;
    pool::run_job(slots, &move |slot| {
        let mut c = slot;
        while c < nchunks {
            f(range(c));
            c += slots;
        }
    });
}

/// Like [`for_each_chunk_mut`] for side-effect-only chunk bodies: hands
/// each participant a disjoint `&mut` window of `data` without building
/// a per-chunk result vector, so the section is allocation-free in
/// steady state (see [`run_chunks`]).
pub fn run_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let len = data.len();
    let nchunks = len.div_ceil(chunk);
    let slots = job_slots(nchunks);
    if slots <= 1 {
        for (c, window) in data.chunks_mut(chunk).enumerate() {
            f(c * chunk, window);
        }
        return;
    }
    let base = DataPtr(data.as_mut_ptr());
    let f = &f;
    pool::run_job(slots, &move |slot| {
        let mut c = slot;
        while c < nchunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            // SAFETY: fixed chunk boundaries make the windows disjoint,
            // each chunk index belongs to exactly one slot, and `data`
            // outlives the job.
            let window = unsafe { base.window(start, end - start) };
            f(start, window);
            c += slots;
        }
    });
}

/// Abstract per-chunk work (≈ scalar operations) that [`plan_chunks`]
/// aims for. Large enough to amortise chunk dispatch and the per-chunk
/// result slot, small enough that a big kernel still splits into many
/// chunks for load balancing.
pub const TARGET_CHUNK_WORK: usize = 1 << 15;

/// Sizes a chunk for `n` items that each cost roughly `work_per_item`
/// abstract units (≈ scalar ops), targeting [`TARGET_CHUNK_WORK`] per
/// chunk. The granularity half of [`plan_chunks`]; use that instead
/// unless the call site has already decided to go parallel.
///
/// The returned size depends only on the problem shape, never on the
/// worker count, so chunk boundaries — and therefore reduction order —
/// remain bit-deterministic at any `ENW_THREADS`.
pub fn adaptive_chunk(n: usize, work_per_item: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (TARGET_CHUNK_WORK / work_per_item.max(1)).clamp(1, n)
}

/// The single go-parallel decision for a loop of `n` items costing
/// `work_per_item` abstract units (≈ scalar ops) each: `Some(chunk)`
/// when the loop should run on the pool split at `chunk`-item
/// boundaries, `None` when it should stay serial.
///
/// The gate and the granularity share one model, so they cannot
/// disagree: a plan is returned only when the total estimated work fills
/// at least two [`TARGET_CHUNK_WORK`]-sized chunks, and the returned
/// chunk size is exactly [`adaptive_chunk`]'s — by construction a `Some`
/// always splits into ≥ 2 chunks. (The previous pair of independent
/// heuristics, `should_parallelize` + `adaptive_chunk`, could pass the
/// parallelize threshold yet produce a single chunk, paying dispatch for
/// no split.) `None` also covers single-thread configurations and calls
/// made from inside a pool worker (nested sections run serial inline).
///
/// The *decision* may depend on the thread count; the chunk *size* never
/// does, so outputs stay bit-identical whichever branch runs.
pub fn plan_chunks(n: usize, work_per_item: usize) -> Option<usize> {
    if n == 0 || pool::is_pool_worker() {
        return None;
    }
    // Work check before the thread-count check: small loops bail out on
    // shape arithmetic alone, so sub-threshold hot paths (single-query
    // inference, small tiles) never pay an env-var or `OnceLock` read.
    let total = n.saturating_mul(work_per_item.max(1));
    if total < 2 * TARGET_CHUNK_WORK {
        return None;
    }
    if max_threads() <= 1 {
        return None;
    }
    let chunk = adaptive_chunk(n, work_per_item);
    // Defensive: the gate above already implies >= 2 chunks except at
    // saturation edges (e.g. n == 1 with work_per_item == usize::MAX).
    if n.div_ceil(chunk) < 2 {
        return None;
    }
    Some(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_are_fixed() {
        assert_eq!(map_chunks(10, 4, |r| r), vec![0..4, 4..8, 8..10]);
        assert_eq!(map_chunks(4, 4, |r| r), vec![0..4]);
        assert_eq!(map_chunks(0, 4, |r| r), Vec::<Range<usize>>::new());
        assert_eq!(map_chunks(3, 0, |r| r), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn map_chunks_results_in_chunk_order_for_any_thread_count() {
        let serial: Vec<Range<usize>> = with_threads(1, || map_chunks(23, 5, |r| r));
        for t in [2, 3, 8] {
            let par = with_threads(t, || map_chunks(23, 5, |r| r));
            assert_eq!(par, serial, "thread count {t} changed chunk order");
        }
    }

    #[test]
    fn map_chunks_reduction_is_bit_identical() {
        let xs: Vec<f32> = (0..997).map(|i| (i as f32 * 0.37).sin()).collect();
        let sum_chunks = |chunks: Vec<f32>| chunks.into_iter().fold(0.0f32, |a, b| a + b);
        let partial = |r: Range<usize>| xs[r].iter().fold(0.0f32, |a, &b| a + b);
        let serial = sum_chunks(with_threads(1, || map_chunks(xs.len(), 64, partial)));
        for t in [2, 3, 7] {
            let par = sum_chunks(with_threads(t, || map_chunks(xs.len(), 64, partial)));
            assert_eq!(par.to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_every_element_once() {
        let mut data = vec![0u32; 31];
        for t in [1, 3, 8] {
            data.iter_mut().for_each(|v| *v = 0);
            let starts = with_threads(t, || {
                for_each_chunk_mut(&mut data, 7, |start, window| {
                    for (i, v) in window.iter_mut().enumerate() {
                        *v += (start + i) as u32;
                    }
                    start
                })
            });
            assert_eq!(starts, vec![0, 7, 14, 21, 28]);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as u32, "element {i} touched wrong number of times");
            }
        }
    }

    #[test]
    fn run_chunks_covers_every_index_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..29).map(|_| AtomicU32::new(0)).collect();
        for t in [1, 3, 8] {
            hits.iter().for_each(|h| h.store(0, Ordering::SeqCst));
            let hits_ref = &hits;
            with_threads(t, || {
                run_chunks(29, 6, |r| {
                    for i in r {
                        hits_ref[i].fetch_add(1, Ordering::SeqCst);
                    }
                })
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "index {i} at {t} threads");
            }
        }
    }

    #[test]
    fn run_chunks_mut_matches_for_each_chunk_mut() {
        let mut a = vec![0u32; 31];
        let mut b = vec![0u32; 31];
        for t in [1, 2, 8] {
            a.iter_mut().for_each(|v| *v = 0);
            b.iter_mut().for_each(|v| *v = 0);
            with_threads(t, || {
                for_each_chunk_mut(&mut a, 7, |start, w| {
                    for (i, v) in w.iter_mut().enumerate() {
                        *v = (start + i) as u32 * 3;
                    }
                });
                run_chunks_mut(&mut b, 7, |start, w| {
                    for (i, v) in w.iter_mut().enumerate() {
                        *v = (start + i) as u32 * 3;
                    }
                });
            });
            assert_eq!(a, b, "thread count {t}");
        }
    }

    #[test]
    fn nested_parallel_sections_run_serial_inline() {
        // An inner map_chunks reached from inside a pool job must not
        // re-enter the pool (deadlock) — it runs serial and still
        // produces chunk-ordered results.
        let outer = with_threads(4, || {
            map_chunks(4, 1, |r| {
                let inner = map_chunks(6, 2, |ir| ir.start);
                (r.start, inner)
            })
        });
        for (c, (start, inner)) in outer.iter().enumerate() {
            assert_eq!(*start, c);
            assert_eq!(*inner, vec![0, 2, 4]);
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let inner = with_threads(3, || {
            let nested = with_threads(5, max_threads);
            assert_eq!(nested, 5);
            max_threads()
        });
        assert_eq!(inner, 3);
        // Override cleared after the scope exits (ambient value may be
        // env-dependent, so check the override cell directly).
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), None);
    }

    #[test]
    fn env_var_sets_worker_count() {
        // Process-global: this is the only test that touches ENW_THREADS.
        std::env::set_var("ENW_THREADS", "1");
        assert_eq!(max_threads(), 1);
        std::env::set_var("ENW_THREADS", "6");
        assert_eq!(max_threads(), 6);
        // Garbage and zero fall back to the machine default.
        std::env::set_var("ENW_THREADS", "zero");
        assert!(max_threads() >= 1);
        std::env::set_var("ENW_THREADS", "0");
        assert!(max_threads() >= 1);
        // The thread-local override outranks the environment.
        std::env::set_var("ENW_THREADS", "4");
        assert_eq!(with_threads(2, max_threads), 2);
        std::env::remove_var("ENW_THREADS");
    }

    #[test]
    fn adaptive_chunk_tracks_work_estimate() {
        // Cheap items coalesce into big chunks; expensive items split.
        assert_eq!(adaptive_chunk(1 << 20, 1), TARGET_CHUNK_WORK);
        assert_eq!(adaptive_chunk(1 << 20, TARGET_CHUNK_WORK), 1);
        // Never exceeds the item count, never returns zero.
        assert_eq!(adaptive_chunk(10, 1), 10);
        assert_eq!(adaptive_chunk(0, 0), 1);
        assert_eq!(adaptive_chunk(5, usize::MAX), 1);
        // Independent of the worker count by construction.
        let at1 = with_threads(1, || adaptive_chunk(4096, 100));
        let at8 = with_threads(8, || adaptive_chunk(4096, 100));
        assert_eq!(at1, at8);
    }

    #[test]
    fn plan_chunks_gate_and_granularity_agree() {
        with_threads(8, || {
            // Any Some(chunk) must split into at least two chunks and
            // must equal the adaptive size — the two halves of the model
            // cannot disagree.
            for (n, wpi) in [
                (1usize, 1usize),
                (2, TARGET_CHUNK_WORK),
                (3, TARGET_CHUNK_WORK - 1),
                (1 << 16, 1),
                (65, 1 << 10),
                (1000, 64),
                (7, usize::MAX), // saturating total must not wrap to a refusal
            ] {
                match plan_chunks(n, wpi) {
                    Some(chunk) => {
                        assert_eq!(chunk, adaptive_chunk(n, wpi), "n={n} wpi={wpi}");
                        assert!(n.div_ceil(chunk) >= 2, "single-chunk plan for n={n} wpi={wpi}");
                    }
                    None => {
                        let total = n.saturating_mul(wpi.max(1));
                        assert!(total < 2 * TARGET_CHUNK_WORK, "refused big job n={n} wpi={wpi}");
                    }
                }
            }
        });
    }

    #[test]
    fn plan_chunks_boundary_cases() {
        with_threads(8, || {
            // Exactly at the two-chunk threshold: 2 items of exactly
            // TARGET_CHUNK_WORK each parallelize with chunk == 1 ...
            assert_eq!(plan_chunks(2, TARGET_CHUNK_WORK), Some(1));
            // ... one unit below the threshold stays serial.
            assert_eq!(plan_chunks(2, TARGET_CHUNK_WORK - 1), None);
            // Cheap items: the first Some appears once two full chunks
            // of TARGET_CHUNK_WORK singles exist.
            assert_eq!(plan_chunks(2 * TARGET_CHUNK_WORK - 1, 1), None);
            assert_eq!(plan_chunks(2 * TARGET_CHUNK_WORK, 1), Some(TARGET_CHUNK_WORK));
            // Degenerate shapes never plan.
            assert_eq!(plan_chunks(0, 1000), None);
            assert_eq!(plan_chunks(0, 0), None);
            // One giant item cannot split: chunk would be 1 == n.
            assert_eq!(plan_chunks(1, usize::MAX), None);
        });
        // Single-thread configurations never plan, whatever the size.
        with_threads(1, || {
            assert_eq!(plan_chunks(1 << 20, 1 << 10), None);
        });
    }

    #[test]
    fn plan_chunks_is_none_inside_pool_workers() {
        let plans: Vec<Option<usize>> =
            with_threads(4, || pool::broadcast(|| plan_chunks(1 << 20, 64)));
        assert!(plans[0].is_some(), "caller thread should plan");
        assert!(plans.len() >= 2, "pool should have spawned workers");
        assert!(plans[1..].iter().all(|p| p.is_none()), "workers must run nested loops serial");
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_chunks(16, 1, |r| {
                    if r.start == 9 {
                        panic!("boom");
                    }
                    r.start
                })
            })
        });
        assert!(caught.is_err());
    }
}
