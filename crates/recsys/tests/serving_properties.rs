//! Property-based tests for the SLA batch-size search (paper Sec. V-B),
//! exercised by the `enw-serve` scheduler's batch-close policy.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_recsys::characterize::RooflineMachine;
use enw_recsys::error::RecsysError;
use enw_recsys::model::{Interaction, RecModelConfig};
use enw_recsys::serving::{batch_latency, try_max_batch_under_sla};
use proptest::prelude::*;

/// A small model family spanning compute- and memory-bound shapes.
fn cfg_for(kind: usize) -> RecModelConfig {
    match kind % 3 {
        0 => RecModelConfig::compute_bound(),
        1 => RecModelConfig::memory_bound(),
        _ => RecModelConfig {
            dense_features: 8,
            bottom_mlp: vec![32, 16],
            tables: vec![(1024, 8), (512, 4)],
            embedding_dim: 16,
            top_mlp: vec![32],
            interaction: Interaction::Concat,
        },
    }
}

proptest! {
    /// The search result is admissible (fits the SLA and the cap) and
    /// maximal (one more query would break the SLA, unless capped).
    #[test]
    fn search_is_admissible_and_maximal(kind in 0usize..3,
                                        sla_x in 1.0f64..200.0,
                                        cap in 1u64..2048) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        let b = try_max_batch_under_sla(&cfg, &m, sla, cap);
        // sla >= latency(1) by construction, so a batch always fits.
        let b = b.expect("reachable SLA must admit batch 1");
        prop_assert!(b >= 1 && b <= cap);
        prop_assert!(batch_latency(&cfg, b, &m) <= sla);
        if b < cap {
            prop_assert!(batch_latency(&cfg, b + 1, &m) > sla,
                         "batch {} is not maximal under cap {}", b, cap);
        }
    }

    /// Monotonicity: a looser SLA or a larger cap never shrinks the batch.
    #[test]
    fn search_is_monotone_in_sla_and_cap(kind in 0usize..3,
                                         sla_x in 1.0f64..100.0,
                                         slack in 1.0f64..4.0,
                                         cap in 1u64..1024) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        let tight = try_max_batch_under_sla(&cfg, &m, sla, cap).expect("reachable");
        let loose = try_max_batch_under_sla(&cfg, &m, sla * slack, cap).expect("reachable");
        prop_assert!(loose >= tight, "loosening the SLA shrank the batch: {} -> {}", tight, loose);
        let wider = try_max_batch_under_sla(&cfg, &m, sla, cap * 2).expect("reachable");
        prop_assert!(wider >= tight, "raising the cap shrank the batch: {} -> {}", tight, wider);
    }

    /// Edge: a zero cap admits nothing, whatever the SLA.
    #[test]
    fn zero_cap_admits_nothing(kind in 0usize..3, sla_x in 0.0f64..1000.0) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        prop_assert_eq!(try_max_batch_under_sla(&cfg, &m, sla, 0), Err(RecsysError::ZeroBatchCap));
    }

    /// Edge: an SLA below the single-query latency is unreachable at any cap.
    #[test]
    fn sub_unit_sla_is_unreachable(kind in 0usize..3,
                                   frac in 0.01f64..0.99,
                                   cap in 1u64..4096) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = frac * batch_latency(&cfg, 1, &m);
        prop_assert_eq!(try_max_batch_under_sla(&cfg, &m, sla, cap),
                        Err(RecsysError::InfeasibleSla { sla_seconds: sla }));
    }
}
