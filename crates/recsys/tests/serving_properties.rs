//! Property-based tests for the SLA batch-size search (paper Sec. V-B),
//! exercised by the `enw-serve` scheduler's batch-close policy.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_numerics::rng::Rng64;
use enw_recsys::characterize::RooflineMachine;
use enw_recsys::error::RecsysError;
use enw_recsys::model::{EmbeddingTable, Interaction, RecModel, RecModelConfig};
use enw_recsys::serving::{batch_latency, try_max_batch_under_sla};
use enw_recsys::trace::TraceGenerator;
use proptest::prelude::*;

/// A small model family spanning compute- and memory-bound shapes.
fn cfg_for(kind: usize) -> RecModelConfig {
    match kind % 3 {
        0 => RecModelConfig::compute_bound(),
        1 => RecModelConfig::memory_bound(),
        _ => RecModelConfig {
            dense_features: 8,
            bottom_mlp: vec![32, 16],
            tables: vec![(1024, 8), (512, 4)],
            embedding_dim: 16,
            top_mlp: vec![32],
            interaction: Interaction::Concat,
        },
    }
}

proptest! {
    /// The search result is admissible (fits the SLA and the cap) and
    /// maximal (one more query would break the SLA, unless capped).
    #[test]
    fn search_is_admissible_and_maximal(kind in 0usize..3,
                                        sla_x in 1.0f64..200.0,
                                        cap in 1u64..2048) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        let b = try_max_batch_under_sla(&cfg, &m, sla, cap);
        // sla >= latency(1) by construction, so a batch always fits.
        let b = b.expect("reachable SLA must admit batch 1");
        prop_assert!(b >= 1 && b <= cap);
        prop_assert!(batch_latency(&cfg, b, &m) <= sla);
        if b < cap {
            prop_assert!(batch_latency(&cfg, b + 1, &m) > sla,
                         "batch {} is not maximal under cap {}", b, cap);
        }
    }

    /// Monotonicity: a looser SLA or a larger cap never shrinks the batch.
    #[test]
    fn search_is_monotone_in_sla_and_cap(kind in 0usize..3,
                                         sla_x in 1.0f64..100.0,
                                         slack in 1.0f64..4.0,
                                         cap in 1u64..1024) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        let tight = try_max_batch_under_sla(&cfg, &m, sla, cap).expect("reachable");
        let loose = try_max_batch_under_sla(&cfg, &m, sla * slack, cap).expect("reachable");
        prop_assert!(loose >= tight, "loosening the SLA shrank the batch: {} -> {}", tight, loose);
        let wider = try_max_batch_under_sla(&cfg, &m, sla, cap * 2).expect("reachable");
        prop_assert!(wider >= tight, "raising the cap shrank the batch: {} -> {}", tight, wider);
    }

    /// Edge: a zero cap admits nothing, whatever the SLA.
    #[test]
    fn zero_cap_admits_nothing(kind in 0usize..3, sla_x in 0.0f64..1000.0) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = sla_x * batch_latency(&cfg, 1, &m);
        prop_assert_eq!(try_max_batch_under_sla(&cfg, &m, sla, 0), Err(RecsysError::ZeroBatchCap));
    }

    /// Edge: an SLA below the single-query latency is unreachable at any cap.
    #[test]
    fn sub_unit_sla_is_unreachable(kind in 0usize..3,
                                   frac in 0.01f64..0.99,
                                   cap in 1u64..4096) {
        let cfg = cfg_for(kind);
        let m = RooflineMachine::server_cpu();
        let sla = frac * batch_latency(&cfg, 1, &m);
        prop_assert_eq!(try_max_batch_under_sla(&cfg, &m, sla, cap),
                        Err(RecsysError::InfeasibleSla { sla_seconds: sla }));
    }
}

// Thread-count invariance and kernel equivalence of the gather/predict
// path: the software-pipelined gather and the pool fan-out must be
// bit-identical to the serial reference at any ENW_THREADS.
proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// The unrolled + prefetching gather is bitwise equal to the plain
    /// one-row-at-a-time loop for any index multiset (including repeats
    /// and non-multiples of the 8-row unroll).
    #[test]
    fn gather_pool_matches_naive_accumulation(
        rows in 1usize..300, dim in 1usize..80, lookups in 1usize..40,
        seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let table = EmbeddingTable::random(rows, dim, &mut rng);
        let indices: Vec<usize> = (0..lookups).map(|_| rng.below(rows)).collect();
        let fast = table.lookup_pool(&indices);
        let mut naive = vec![0.0f32; dim];
        for &i in &indices {
            for (p, v) in naive.iter_mut().zip(table.row(i)) {
                *p += v;
            }
        }
        for (a, b) in fast.iter().zip(&naive) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Batch prediction is bit-identical at ENW_THREADS=1/2/8 — the
    /// model's table fan-out and batch fan-out must not perturb results.
    #[test]
    fn predict_batch_bit_identical_at_any_thread_count(
        kind in 0usize..3, batch in 1usize..48, seed in any::<u64>()) {
        // Small instantiable shapes (cfg_for's roofline configs allocate
        // gigabyte-scale tables); interaction and MLP variety still come
        // from `kind`.
        let cfg = RecModelConfig {
            dense_features: 8,
            bottom_mlp: vec![32, 16],
            tables: vec![(2048, 4), (512, 2), (128, 8)],
            embedding_dim: 16,
            top_mlp: if kind == 0 { vec![64, 32] } else { vec![32] },
            interaction: if kind == 1 { Interaction::DotPairwise } else { Interaction::Concat },
        };
        let mut rng = Rng64::new(seed);
        let model = RecModel::new(&cfg, &mut rng);
        let queries = TraceGenerator::new(&cfg, 1.0).batch(batch, &mut rng);
        let predict_at = |threads: usize| {
            let mut m = model.clone();
            enw_parallel::with_threads(threads, || m.predict_batch(&queries))
        };
        let serial = predict_at(1);
        for t in [2usize, 8] {
            let par = predict_at(t);
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "thread count {}", t);
            }
        }
    }
}
