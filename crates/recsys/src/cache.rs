//! Embedding-cache simulation (paper Sec. V-B: accelerating embedding
//! operations "could leverage techniques such as caching, prefetching,
//! and near memory processing" \[66\]).
//!
//! An LRU cache of embedding rows sits in front of DRAM. Because item
//! popularity is Zipf-distributed, a cache holding a small fraction of
//! the catalogue captures most lookups; the experiment harness sweeps
//! capacity and skew to map that trade-off.

use std::collections::BTreeMap;

/// An LRU cache over `(table, row)` embedding identifiers.
///
/// # Example
///
/// ```
/// use enw_recsys::cache::EmbeddingCache;
///
/// let mut cache = EmbeddingCache::new(2);
/// cache.access(0, 7);
/// cache.access(0, 7);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    capacity: usize,
    /// Key → last-use tick. Ordered map: deterministic iteration keeps
    /// hit/miss traces bit-reproducible (enw-analyze rule ENW-D001).
    entries: BTreeMap<(usize, usize), u64>,
    /// Tick → key: the recency order (ticks are unique), giving O(log n)
    /// eviction of the least recently used entry.
    order: BTreeMap<u64, (usize, usize)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that went to DRAM.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl EmbeddingCache {
    /// A cache holding up to `capacity` embedding rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        EmbeddingCache {
            capacity,
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an access to `(table, row)`; returns `true` on hit.
    pub fn access(&mut self, table: usize, row: usize) -> bool {
        self.clock += 1;
        let key = (table, row);
        if let Some(tick) = self.entries.get_mut(&key) {
            self.order.remove(tick);
            *tick = self.clock;
            self.order.insert(self.clock, key);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used entry (smallest tick).
            if let Some((&lru_tick, &lru_key)) = self.order.iter().next() {
                self.order.remove(&lru_tick);
                self.entries.remove(&lru_key);
            }
        }
        self.entries.insert(key, self.clock);
        self.order.insert(self.clock, key);
        false
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses }
    }

    /// Resets counters (keeps contents — for warm-up/measure protocols).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// DRAM vs cache access energy for computing traffic savings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEnergy {
    /// Energy per byte from DRAM (pJ/B).
    pub dram_byte_pj: f64,
    /// Energy per byte from the on-chip cache (pJ/B).
    pub cache_byte_pj: f64,
}

impl Default for MemoryEnergy {
    fn default() -> Self {
        MemoryEnergy { dram_byte_pj: 10.0, cache_byte_pj: 0.5 }
    }
}

impl MemoryEnergy {
    /// Average energy per accessed byte at a given hit rate.
    pub fn effective_byte_pj(&self, hit_rate: f64) -> f64 {
        hit_rate * self.cache_byte_pj + (1.0 - hit_rate) * self.dram_byte_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = EmbeddingCache::new(4);
        assert!(!c.access(0, 1));
        assert!(c.access(0, 1));
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = EmbeddingCache::new(2);
        c.access(0, 1);
        c.access(0, 2);
        c.access(0, 1); // refresh 1; 2 becomes LRU
        c.access(0, 3); // evicts 2
        assert!(c.access(0, 1), "1 should still be cached");
        assert!(!c.access(0, 2), "2 should have been evicted");
    }

    #[test]
    fn distinct_tables_do_not_collide() {
        let mut c = EmbeddingCache::new(4);
        c.access(0, 5);
        assert!(!c.access(1, 5));
    }

    #[test]
    fn capacity_respected() {
        let mut c = EmbeddingCache::new(3);
        for i in 0..10 {
            c.access(0, i);
        }
        assert!(c.entries.len() <= 3);
    }

    #[test]
    fn zipf_traffic_gets_high_hit_rate_with_small_cache() {
        use enw_numerics::rng::{Rng64, ZipfSampler};
        let mut rng = Rng64::new(1);
        let zipf = ZipfSampler::new(100_000, 1.0);
        let mut c = EmbeddingCache::new(1000); // 1% of catalogue
        for _ in 0..20_000 {
            let row = zipf.sample(&mut rng);
            c.access(0, row);
        }
        let hr = c.stats().hit_rate();
        assert!(hr > 0.4, "hit rate {hr} too low for Zipf(1.0) with 1% cache");
    }

    #[test]
    fn uniform_traffic_gets_low_hit_rate() {
        use enw_numerics::rng::Rng64;
        let mut rng = Rng64::new(2);
        let mut c = EmbeddingCache::new(1000);
        for _ in 0..20_000 {
            c.access(0, rng.below(100_000));
        }
        let hr = c.stats().hit_rate();
        assert!(hr < 0.1, "hit rate {hr} too high for uniform traffic");
    }

    #[test]
    fn energy_interpolates_with_hit_rate() {
        let e = MemoryEnergy::default();
        assert_eq!(e.effective_byte_pj(1.0), 0.5);
        assert_eq!(e.effective_byte_pj(0.0), 10.0);
        assert!(e.effective_byte_pj(0.5) < 10.0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = EmbeddingCache::new(4);
        c.access(0, 1);
        c.reset_stats();
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(c.access(0, 1), "contents must survive reset");
    }
}
