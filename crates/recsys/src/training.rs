//! Distributed-training cost model for recommendation systems (paper
//! Sec. V-B: "state-of-the-art recommendation models are typically
//! trained across many machines … efficient training requires carefully
//! balancing compute, memory, and network communication", with retraining
//! "on hourly and daily intervals").
//!
//! The standard parallelization (per the cited deployments) is *hybrid*:
//! the dense MLPs are data-parallel (replicated; gradients all-reduced),
//! while the embedding tables are model-parallel (sharded by table/row;
//! lookups and their gradients travel over the network as all-to-all
//! exchanges). The model charges, per mini-batch step:
//!
//! * compute: MLP FLOPs per worker;
//! * memory: embedding-row traffic on the owning worker;
//! * network: all-to-all activation/gradient exchange for the sharded
//!   lookups, plus the all-reduce of MLP gradients.

use crate::characterize::profile_batched;
use crate::model::RecModelConfig;

/// Cluster parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cluster {
    /// Worker count.
    pub workers: usize,
    /// Per-worker arithmetic throughput (FLOP/s).
    pub flops_per_worker: f64,
    /// Per-worker memory bandwidth (bytes/s).
    pub mem_bw_per_worker: f64,
    /// Per-link network bandwidth (bytes/s).
    pub net_bw_per_worker: f64,
}

impl Cluster {
    /// A representative CPU training cluster node count.
    pub fn cpu_cluster(workers: usize) -> Self {
        Cluster {
            workers,
            flops_per_worker: 2.0e12,
            mem_bw_per_worker: 100.0e9,
            net_bw_per_worker: 12.5e9, // 100 Gb/s
        }
    }
}

/// Per-step time breakdown (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBreakdown {
    /// Dense compute (forward + backward ≈ 3× forward FLOPs).
    pub compute_s: f64,
    /// Embedding-row reads and gradient writes on the owning workers.
    pub memory_s: f64,
    /// All-to-all embedding exchange + MLP gradient all-reduce.
    pub network_s: f64,
}

impl StepBreakdown {
    /// Wall-clock per step assuming the three phases overlap imperfectly:
    /// the slowest dominates, the others hide behind it except for a 20 %
    /// serialization residue (pipelined but not perfectly).
    pub fn step_time(&self) -> f64 {
        let max = self.compute_s.max(self.memory_s).max(self.network_s);
        let sum = self.compute_s + self.memory_s + self.network_s;
        max + 0.2 * (sum - max)
    }

    /// Which resource dominates the step.
    pub fn bottleneck(&self) -> &'static str {
        if self.compute_s >= self.memory_s && self.compute_s >= self.network_s {
            "compute"
        } else if self.memory_s >= self.network_s {
            "memory"
        } else {
            "network"
        }
    }
}

/// MLP parameter bytes of a configuration (for the all-reduce volume).
fn mlp_param_bytes(cfg: &RecModelConfig) -> u64 {
    let mut dims = vec![cfg.dense_features];
    dims.extend_from_slice(&cfg.bottom_mlp);
    let mut bytes = 0u64;
    for w in dims.windows(2) {
        bytes += ((w[0] + 1) * w[1] * 4) as u64;
    }
    let mut top = vec![crate::model::RecModel::interaction_width(cfg)];
    top.extend_from_slice(&cfg.top_mlp);
    top.push(1);
    for w in top.windows(2) {
        bytes += ((w[0] + 1) * w[1] * 4) as u64;
    }
    bytes
}

/// Models one synchronous training step of global batch `batch` on
/// `cluster`, with tables sharded across workers and MLPs replicated.
pub fn step_breakdown(cfg: &RecModelConfig, batch: u64, cluster: &Cluster) -> StepBreakdown {
    let per_worker_batch = (batch as f64 / cluster.workers as f64).ceil() as u64;
    let p = profile_batched(cfg, per_worker_batch.max(1));

    // Compute: forward + backward ≈ 3× forward FLOPs for the dense parts.
    let dense_flops = (p.bottom_mlp.flops + p.top_mlp.flops + p.interaction.flops) as f64 * 3.0;
    let compute_s = dense_flops / cluster.flops_per_worker;

    // Memory: each sharded table serves the *global* batch's lookups for
    // its shard; per worker that is the global embedding traffic divided
    // by workers — read on forward, written (gradient) on backward.
    let total_lookup_bytes: f64 =
        cfg.tables.iter().map(|&(_, l)| (l * cfg.embedding_dim * 4) as f64).sum::<f64>()
            * batch as f64;
    let memory_s = 2.0 * total_lookup_bytes / cluster.workers as f64 / cluster.mem_bw_per_worker;

    // Network: all-to-all exchange of pooled activations + their
    // gradients (each worker sends/receives the pooled vectors its local
    // samples need from remote shards), plus ring all-reduce of the MLP
    // gradients (2·(W−1)/W · param bytes).
    let pooled_bytes_per_sample: f64 = (cfg.tables.len() * cfg.embedding_dim * 4) as f64;
    let remote_fraction = (cluster.workers - 1) as f64 / cluster.workers as f64;
    let alltoall = 2.0 * pooled_bytes_per_sample * per_worker_batch as f64 * remote_fraction;
    let allreduce = 2.0 * remote_fraction * mlp_param_bytes(cfg) as f64;
    let network_s = (alltoall + allreduce) / cluster.net_bw_per_worker;

    StepBreakdown { compute_s, memory_s, network_s }
}

/// Time to complete one retraining run of `samples` examples at global
/// batch `batch` (seconds) — the quantity that must fit inside the
/// paper's hourly/daily refresh windows.
pub fn retraining_time(cfg: &RecModelConfig, samples: u64, batch: u64, cluster: &Cluster) -> f64 {
    let steps = samples.div_ceil(batch);
    step_breakdown(cfg, batch, cluster).step_time() * steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_workers_shrink_step_time() {
        let cfg = RecModelConfig::memory_bound();
        let t4 = step_breakdown(&cfg, 4096, &Cluster::cpu_cluster(4)).step_time();
        let t16 = step_breakdown(&cfg, 4096, &Cluster::cpu_cluster(16)).step_time();
        assert!(t16 < t4, "scaling failed: {t16} vs {t4}");
    }

    #[test]
    fn embedding_heavy_config_is_memory_or_network_bound() {
        let b = step_breakdown(&RecModelConfig::memory_bound(), 4096, &Cluster::cpu_cluster(8));
        assert_ne!(b.bottleneck(), "compute", "{b:?}");
    }

    #[test]
    fn mlp_heavy_config_is_compute_bound_on_fast_network() {
        let mut cluster = Cluster::cpu_cluster(8);
        cluster.net_bw_per_worker = 100.0e9; // fast fabric isolates compute
        let b = step_breakdown(&RecModelConfig::compute_bound(), 4096, &cluster);
        assert_eq!(b.bottleneck(), "compute", "{b:?}");
    }

    #[test]
    fn slow_network_becomes_the_bottleneck() {
        let mut cluster = Cluster::cpu_cluster(8);
        cluster.net_bw_per_worker = 0.1e9;
        let b = step_breakdown(&RecModelConfig::memory_bound(), 4096, &cluster);
        assert_eq!(b.bottleneck(), "network", "{b:?}");
    }

    #[test]
    fn step_time_at_least_slowest_phase() {
        let b = step_breakdown(&RecModelConfig::memory_bound(), 4096, &Cluster::cpu_cluster(8));
        let max = b.compute_s.max(b.memory_s).max(b.network_s);
        assert!(b.step_time() >= max);
        assert!(b.step_time() <= b.compute_s + b.memory_s + b.network_s);
    }

    #[test]
    fn retraining_time_scales_with_samples() {
        let cfg = RecModelConfig::memory_bound();
        let cluster = Cluster::cpu_cluster(16);
        let t1 = retraining_time(&cfg, 1_000_000, 4096, &cluster);
        let t10 = retraining_time(&cfg, 10_000_000, 4096, &cluster);
        assert!((t10 / t1 - 10.0).abs() < 0.1);
        // Loose plausibility band (this is a small benchmark model, so
        // 10M samples complete in under a second of modeled time).
        assert!(t10 > 1e-3 && t10 < 1e6, "implausible retraining time {t10}");
    }

    #[test]
    fn param_bytes_counts_all_layers() {
        let cfg = RecModelConfig {
            dense_features: 4,
            bottom_mlp: vec![8, 4],
            tables: vec![(10, 1); 2],
            embedding_dim: 4,
            top_mlp: vec![8],
            interaction: crate::model::Interaction::Concat,
        };
        // bottom: (4+1)*8 + (8+1)*4 = 76 params; top: in=12 → (12+1)*8 + (8+1)*1 = 113.
        assert_eq!(mlp_param_bytes(&cfg), (76 + 113) * 4);
    }
}
