//! Typed failures for the recommendation workload.

use std::error::Error;
use std::fmt;

/// Why a recsys operation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecsysError {
    /// A batch cap of zero admits no batch at all.
    ZeroBatchCap,
    /// Even a batch of one misses the SLA on the given machine.
    InfeasibleSla {
        /// The SLA bound that cannot be met (seconds).
        sla_seconds: f64,
    },
    /// A model configuration failed validation.
    InvalidConfig {
        /// Which constraint was violated.
        reason: &'static str,
    },
}

impl fmt::Display for RecsysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecsysError::ZeroBatchCap => {
                write!(f, "batch cap is zero: no batch size can be admitted")
            }
            RecsysError::InfeasibleSla { sla_seconds } => {
                write!(f, "even batch 1 misses the {sla_seconds} s SLA")
            }
            RecsysError::InvalidConfig { reason } => {
                write!(f, "invalid model configuration: {reason}")
            }
        }
    }
}

impl Error for RecsysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        assert!(RecsysError::ZeroBatchCap.to_string().contains("zero"));
        assert!(RecsysError::InfeasibleSla { sla_seconds: 0.5 }.to_string().contains("0.5"));
        assert!(RecsysError::InvalidConfig { reason: "dense_features must be > 0" }
            .to_string()
            .contains("dense_features"));
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn Error> = Box::new(RecsysError::ZeroBatchCap);
        assert!(err.source().is_none());
    }
}
