//! Neural recommendation workloads — paper Sec. V.
//!
//! Recommendation models are the paper's example of an emerging workload
//! that no existing accelerator serves well: they mix *dense* MLP stacks
//! (compute-heavy, regular) with *sparse* categorical features resolved
//! through huge embedding tables (capacity- and bandwidth-heavy,
//! irregular). The same model skeleton (Fig. 6) can therefore be
//! compute-bound or memory-bound depending on configuration — the property
//! the characterization experiments (E12–E14) map out.
//!
//! # Modules
//!
//! * [`model`] — the DLRM-style model: embedding tables with multi-hot
//!   pooled lookups, bottom/top MLPs, concat or pairwise-dot interaction.
//! * [`trace`] — Zipf-skewed synthetic inference traces (the production-
//!   trace substitute; see DESIGN.md).
//! * [`characterize`] — per-operator FLOP/byte accounting and roofline
//!   classification.
//! * [`quantize`] — per-row reduced-precision embedding tables (up to 16×
//!   compression at 2 bits).
//! * [`cache`] — LRU embedding-cache simulation and DRAM-vs-cache energy.
//! * [`sequence`] — DIN-style attention over user interaction history
//!   (the paper's "RNNs and attention" emerging-model class).
//! * [`serving`] — latency-bounded serving: SLA-constrained batch sizing
//!   and the throughput/latency trade-off.
//! * [`training`] — distributed-training cost model: hybrid data/model
//!   parallelism, all-to-all embedding exchange, retraining-window math.
//!
//! # Example
//!
//! ```
//! use enw_recsys::model::{RecModel, RecModelConfig};
//! use enw_recsys::trace::TraceGenerator;
//! use enw_numerics::rng::Rng64;
//!
//! let mut rng = Rng64::new(0);
//! let mut cfg = RecModelConfig::compute_bound();
//! cfg.tables = vec![(1000, 2); 4]; // shrink for the example
//! let mut model = RecModel::new(&cfg, &mut rng);
//! let gen = TraceGenerator::new(&cfg, 1.0);
//! let q = gen.query(&mut rng);
//! let ctr = model.predict_query(&q);
//! assert!((0.0..=1.0).contains(&ctr));
//! ```

pub mod cache;
pub mod characterize;
pub mod error;
pub mod model;
pub mod quantize;
pub mod sequence;
pub mod serving;
pub mod trace;
pub mod training;

pub use cache::{CacheStats, EmbeddingCache, MemoryEnergy};
pub use characterize::{profile, Bound, ModelProfile, OpProfile, RooflineMachine};
pub use error::RecsysError;
pub use model::{
    EmbeddingTable, Interaction, RecModel, RecModelConfig, RecModelConfigBuilder, TableView,
};
pub use quantize::QuantizedTable;
pub use sequence::{InterestModel, InterestModelConfig};
pub use serving::{batch_latency, throughput, try_max_batch_under_sla, try_sla_throughput};
pub use trace::{SparseQuery, TraceGenerator};
pub use training::{retraining_time, step_breakdown, Cluster, StepBreakdown};
