//! Latency-bounded serving (paper Sec. V intro + V-B): recommendation
//! inference runs under strict tail-latency SLAs, so batch size is the
//! lever trading throughput against latency — and the compute- vs
//! memory-bound regimes respond to it very differently (batching
//! amortizes MLP weights but not embedding gathers).

use crate::characterize::{profile_batched, RooflineMachine};
use crate::error::RecsysError;
use crate::model::RecModelConfig;

/// Modeled latency (seconds) of one batched inference: the sum of
/// per-operator roofline times (operators execute sequentially within a
/// query's dataflow).
pub fn batch_latency(cfg: &RecModelConfig, batch: u64, machine: &RooflineMachine) -> f64 {
    let p = profile_batched(cfg, batch);
    machine.time_seconds(&p.bottom_mlp)
        + machine.time_seconds(&p.embeddings)
        + machine.time_seconds(&p.interaction)
        + machine.time_seconds(&p.top_mlp)
}

/// Throughput (queries per second) at a given batch size.
pub fn throughput(cfg: &RecModelConfig, batch: u64, machine: &RooflineMachine) -> f64 {
    batch as f64 / batch_latency(cfg, batch, machine)
}

/// Largest batch size whose latency fits `sla_seconds` (binary search up
/// to `max_batch`). Fails with [`RecsysError::ZeroBatchCap`] when
/// `max_batch == 0` (a zero cap admits no batch at all — the result is
/// always within the caller's cap) and with
/// [`RecsysError::InfeasibleSla`] when even batch 1 misses the SLA.
pub fn try_max_batch_under_sla(
    cfg: &RecModelConfig,
    machine: &RooflineMachine,
    sla_seconds: f64,
    max_batch: u64,
) -> Result<u64, RecsysError> {
    if max_batch == 0 {
        return Err(RecsysError::ZeroBatchCap);
    }
    if batch_latency(cfg, 1, machine) > sla_seconds {
        return Err(RecsysError::InfeasibleSla { sla_seconds });
    }
    let (mut lo, mut hi) = (1u64, max_batch);
    // Latency is monotone in batch, so binary search applies.
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if batch_latency(cfg, mid, machine) <= sla_seconds {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(lo)
}

/// Peak throughput achievable under an SLA (QPS at the largest
/// admissible batch); fails like [`try_max_batch_under_sla`].
pub fn try_sla_throughput(
    cfg: &RecModelConfig,
    machine: &RooflineMachine,
    sla_seconds: f64,
    max_batch: u64,
) -> Result<f64, RecsysError> {
    try_max_batch_under_sla(cfg, machine, sla_seconds, max_batch)
        .map(|b| throughput(cfg, b, machine))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> RooflineMachine {
        RooflineMachine::server_cpu()
    }

    #[test]
    fn latency_is_monotone_in_batch() {
        let cfg = RecModelConfig::compute_bound();
        let m = machine();
        let mut prev = 0.0;
        for b in [1u64, 8, 64, 512] {
            let l = batch_latency(&cfg, b, &m);
            assert!(l > prev, "latency must grow with batch: {l} after {prev}");
            prev = l;
        }
    }

    #[test]
    fn batching_helps_compute_bound_throughput_more() {
        // MLP-heavy models gain from weight amortization; embedding-heavy
        // ones barely do (per-query bytes are irreducible).
        let m = machine();
        let gain = |cfg: &RecModelConfig| throughput(cfg, 256, &m) / throughput(cfg, 1, &m);
        let g_compute = gain(&RecModelConfig::compute_bound());
        let g_memory = gain(&RecModelConfig::memory_bound());
        assert!(g_compute > 2.0 * g_memory, "compute gain {g_compute}, memory gain {g_memory}");
    }

    #[test]
    fn sla_search_finds_the_boundary() {
        let cfg = RecModelConfig::compute_bound();
        let m = machine();
        let sla = 2.0 * batch_latency(&cfg, 64, &m);
        let b = try_max_batch_under_sla(&cfg, &m, sla, 4096).expect("sla reachable");
        assert!(batch_latency(&cfg, b, &m) <= sla);
        if b < 4096 {
            assert!(batch_latency(&cfg, b + 1, &m) > sla, "batch {b} is not maximal");
        }
    }

    #[test]
    fn zero_cap_admits_nothing() {
        let cfg = RecModelConfig::compute_bound();
        let m = machine();
        let generous_sla = 1e3 * batch_latency(&cfg, 1, &m);
        assert_eq!(
            try_max_batch_under_sla(&cfg, &m, generous_sla, 0),
            Err(RecsysError::ZeroBatchCap)
        );
    }

    #[test]
    fn impossible_sla_is_distinguished_from_zero_cap() {
        let cfg = RecModelConfig::memory_bound();
        let m = machine();
        assert_eq!(
            try_max_batch_under_sla(&cfg, &m, 1e-12, 1024),
            Err(RecsysError::InfeasibleSla { sla_seconds: 1e-12 })
        );
    }

    #[test]
    fn sla_throughput_consistent_with_parts() {
        let cfg = RecModelConfig::compute_bound();
        let m = machine();
        let sla = 10.0 * batch_latency(&cfg, 1, &m);
        let qps = try_sla_throughput(&cfg, &m, sla, 4096).expect("reachable");
        assert!(qps > 0.0);
        let b = try_max_batch_under_sla(&cfg, &m, sla, 4096).expect("reachable");
        assert!((qps - throughput(&cfg, b, &m)).abs() < 1e-9);
    }
}
