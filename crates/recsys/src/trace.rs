//! Synthetic recommendation-inference traces.
//!
//! Production traces (the paper's authors use Facebook's) are not
//! shippable; what the memory-system experiments need from them is the
//! *access-locality structure*: item popularity in recommendation
//! catalogues is Zipf-distributed, which concentrates embedding lookups on
//! a hot head while a long tail forces DRAM traffic. The generator
//! reproduces exactly that, with the exponent as the locality knob.

use crate::model::RecModelConfig;
use enw_numerics::rng::{Rng64, ZipfSampler};

/// One inference query: dense features plus per-table multi-hot indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseQuery {
    /// Continuous features.
    pub dense: Vec<f32>,
    /// Categorical indices, one list per embedding table.
    pub sparse: Vec<Vec<usize>>,
}

/// Generates queries matching a model configuration.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    dense_features: usize,
    lookups: Vec<usize>,
    samplers: Vec<ZipfSampler>,
}

impl TraceGenerator {
    /// Builds a generator for `cfg` with Zipf exponent `alpha`
    /// (0 = uniform access, ~1 = strongly skewed production-like).
    pub fn new(cfg: &RecModelConfig, alpha: f64) -> Self {
        TraceGenerator {
            dense_features: cfg.dense_features,
            lookups: cfg.tables.iter().map(|&(_, l)| l).collect(),
            samplers: cfg.tables.iter().map(|&(rows, _)| ZipfSampler::new(rows, alpha)).collect(),
        }
    }

    /// Draws one query.
    pub fn query(&self, rng: &mut Rng64) -> SparseQuery {
        let dense = (0..self.dense_features).map(|_| rng.uniform_f32()).collect();
        let sparse = self
            .samplers
            .iter()
            .zip(&self.lookups)
            .map(|(z, &l)| (0..l).map(|_| z.sample(rng)).collect())
            .collect();
        SparseQuery { dense, sparse }
    }

    /// Draws a batch of queries.
    pub fn batch(&self, n: usize, rng: &mut Rng64) -> Vec<SparseQuery> {
        (0..n).map(|_| self.query(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RecModelConfig;

    fn cfg() -> RecModelConfig {
        RecModelConfig {
            dense_features: 4,
            bottom_mlp: vec![8],
            tables: vec![(1000, 5), (50, 2)],
            embedding_dim: 8,
            top_mlp: vec![8],
            interaction: crate::model::Interaction::Concat,
        }
    }

    #[test]
    fn query_shapes_match_config() {
        let g = TraceGenerator::new(&cfg(), 1.0);
        let mut rng = Rng64::new(1);
        let q = g.query(&mut rng);
        assert_eq!(q.dense.len(), 4);
        assert_eq!(q.sparse.len(), 2);
        assert_eq!(q.sparse[0].len(), 5);
        assert_eq!(q.sparse[1].len(), 2);
        assert!(q.sparse[0].iter().all(|&i| i < 1000));
        assert!(q.sparse[1].iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_skew_concentrates_accesses() {
        let g = TraceGenerator::new(&cfg(), 1.2);
        let mut rng = Rng64::new(2);
        let mut head_hits = 0usize;
        let mut total = 0usize;
        for q in g.batch(500, &mut rng) {
            for &i in &q.sparse[0] {
                if i < 50 {
                    head_hits += 1; // top 5% of a 1000-row table
                }
                total += 1;
            }
        }
        let frac = head_hits as f64 / total as f64;
        assert!(frac > 0.4, "hot head only got {frac} of accesses");
    }

    #[test]
    fn uniform_alpha_spreads_accesses() {
        let g = TraceGenerator::new(&cfg(), 0.0);
        let mut rng = Rng64::new(3);
        let mut head_hits = 0usize;
        let mut total = 0usize;
        for q in g.batch(500, &mut rng) {
            for &i in &q.sparse[0] {
                if i < 50 {
                    head_hits += 1;
                }
                total += 1;
            }
        }
        let frac = head_hits as f64 / total as f64;
        assert!((frac - 0.05).abs() < 0.03, "uniform head fraction {frac}");
    }

    #[test]
    fn batches_have_requested_size() {
        let g = TraceGenerator::new(&cfg(), 0.8);
        let mut rng = Rng64::new(4);
        assert_eq!(g.batch(17, &mut rng).len(), 17);
    }
}
