//! Reduced-precision embedding tables (paper Sec. V-B, ref. \[65\]:
//! "recent work has applied reduced precision to compress embedding
//! tables by up to 16×").
//!
//! Each row is quantized independently with its own scale (per-row
//! max-abs calibration), which is what keeps accuracy usable at 4 bits:
//! embedding rows differ wildly in magnitude between hot and tail items.

use crate::model::EmbeddingTable;
use enw_numerics::quant::Quantizer;
use enw_numerics::rng::Rng64;

/// A per-row quantized embedding table.
///
/// # Example
///
/// ```
/// use enw_recsys::model::EmbeddingTable;
/// use enw_recsys::quantize::QuantizedTable;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let fp32 = EmbeddingTable::random(100, 16, &mut rng);
/// let q8 = QuantizedTable::from_table(&fp32, 8);
/// assert!(q8.compression_ratio() > 3.0); // 4× minus per-row scale overhead
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTable {
    rows: usize,
    dim: usize,
    bits: u32,
    /// Packed signed codes, one `i8`-style value per element (stored
    /// widened for simplicity; `bytes()` reports the true packed size).
    codes: Vec<i32>,
    /// Per-row dequantization scales.
    quantizers: Vec<Quantizer>,
}

impl QuantizedTable {
    /// Quantizes an FP32 table at `bits` of precision (2–8 useful).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn from_table(table: &EmbeddingTable, bits: u32) -> Self {
        let rows = table.rows();
        let dim = table.dim();
        let mut codes = Vec::with_capacity(rows * dim);
        let mut quantizers = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = table.row(r);
            let q = Quantizer::fit(bits, row);
            codes.extend(row.iter().map(|&v| q.quantize(v)));
            quantizers.push(q);
        }
        QuantizedTable { rows, dim, bits, codes, quantizers }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Packed storage size in bytes: `bits` per element plus one FP32
    /// scale per row.
    pub fn bytes(&self) -> u64 {
        let element_bits = (self.rows * self.dim) as u64 * self.bits as u64;
        element_bits.div_ceil(8) + (self.rows * 4) as u64
    }

    /// Compression ratio versus the FP32 original.
    pub fn compression_ratio(&self) -> f64 {
        let fp32 = (self.rows * self.dim * 4) as f64;
        fp32 / self.bytes() as f64
    }

    /// Dequantizes one row.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn dequantize_row(&self, r: usize) -> Vec<f32> {
        assert!(r < self.rows, "row out of range");
        let q = &self.quantizers[r];
        self.codes[r * self.dim..(r + 1) * self.dim].iter().map(|&c| q.dequantize(c)).collect()
    }

    /// Multi-hot lookup with sum pooling on dequantized rows.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of range.
    pub fn lookup_pool(&self, indices: &[usize]) -> Vec<f32> {
        assert!(!indices.is_empty(), "empty multi-hot lookup");
        let mut pooled = vec![0.0f32; self.dim];
        for &i in indices {
            for (p, v) in pooled.iter_mut().zip(self.dequantize_row(i)) {
                *p += v;
            }
        }
        pooled
    }

    /// Root-mean-square error of the quantized table against the FP32
    /// original, normalized by the original's RMS value.
    pub fn relative_rmse(&self, original: &EmbeddingTable) -> f64 {
        let mut err = 0.0f64;
        let mut ref_sq = 0.0f64;
        for r in 0..self.rows {
            let orig = original.row(r);
            for (o, d) in orig.iter().zip(self.dequantize_row(r)) {
                err += ((o - d) as f64).powi(2);
                ref_sq += (*o as f64).powi(2);
            }
        }
        (err / ref_sq.max(1e-30)).sqrt()
    }
}

/// Builds an FP32 table and a quantized copy for experiments.
pub fn quantized_pair(
    rows: usize,
    dim: usize,
    bits: u32,
    rng: &mut Rng64,
) -> (EmbeddingTable, QuantizedTable) {
    let t = EmbeddingTable::random(rows, dim, rng);
    let q = QuantizedTable::from_table(&t, bits);
    (t, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int2_approaches_sixteenx_compression() {
        // The paper's "up to 16×" corresponds to the raw fp32→int2 element
        // ratio; with the per-row scale honestly accounted the achievable
        // ratio at dim 64 is ~12.8×, approaching 16× as dim grows.
        let mut rng = Rng64::new(1);
        let (_, q) = quantized_pair(10_000, 64, 2, &mut rng);
        assert!(q.compression_ratio() > 12.0, "ratio {}", q.compression_ratio());
        let (_, wide) = quantized_pair(1_000, 256, 2, &mut rng);
        assert!(wide.compression_ratio() > 14.0, "wide ratio {}", wide.compression_ratio());
    }

    #[test]
    fn int8_reaches_fourx() {
        let mut rng = Rng64::new(2);
        let (_, q) = quantized_pair(10_000, 64, 8, &mut rng);
        assert!((q.compression_ratio() - 4.0).abs() < 0.3, "ratio {}", q.compression_ratio());
    }

    #[test]
    fn error_shrinks_with_bits() {
        let mut rng = Rng64::new(3);
        let t = EmbeddingTable::random(500, 32, &mut rng);
        let e4 = QuantizedTable::from_table(&t, 4).relative_rmse(&t);
        let e8 = QuantizedTable::from_table(&t, 8).relative_rmse(&t);
        assert!(e8 < e4 / 4.0, "e4 {e4}, e8 {e8}");
    }

    #[test]
    fn int8_error_is_small() {
        let mut rng = Rng64::new(4);
        let t = EmbeddingTable::random(500, 32, &mut rng);
        let e = QuantizedTable::from_table(&t, 8).relative_rmse(&t);
        assert!(e < 0.01, "int8 rmse {e}");
    }

    #[test]
    fn pooled_lookup_close_to_fp32() {
        let mut rng = Rng64::new(5);
        let (t, q) = quantized_pair(200, 16, 8, &mut rng);
        let idx = [3usize, 77, 150];
        let a = t.lookup_pool(&idx);
        let b = q.lookup_pool(&idx);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }

    #[test]
    fn row_roundtrip_dimensions() {
        let mut rng = Rng64::new(6);
        let (_, q) = quantized_pair(10, 7, 4, &mut rng);
        assert_eq!(q.dequantize_row(9).len(), 7);
        assert_eq!(q.rows(), 10);
        assert_eq!(q.dim(), 7);
    }
}
