//! Sequence-aware recommendation with attention (paper Sec. V-B:
//! "emerging recommendation models rely on explicitly modeling sequences
//! of user interactions and interests with RNNs and attention", citing
//! the Deep Interest Network line of work \[67\]\[68\]).
//!
//! The model scores a candidate item against the user's interaction
//! *history*: each history item's embedding is weighted by its attention
//! to the candidate (softmax over scaled dot products), the weighted sum
//! is the user's current "interest" vector, and `[interest ‖ candidate ‖
//! dense]` feeds the predictor MLP. Compared to the sum-pooled baseline
//! of [`crate::model`], attention adds `O(H·D)` compute per candidate —
//! the extra cost the characterization quantifies.

use crate::model::EmbeddingTable;
use enw_nn::activation::Activation;
use enw_nn::mlp::Mlp;
use enw_nn::DigitalLinear;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::{dot, softmax};

/// Configuration of the interest model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterestModelConfig {
    /// Item catalogue size.
    pub items: usize,
    /// Item-embedding dimension.
    pub embedding_dim: usize,
    /// Dense (context) feature count.
    pub dense_features: usize,
    /// Predictor MLP hidden widths.
    pub predictor: Vec<usize>,
}

impl Default for InterestModelConfig {
    fn default() -> Self {
        InterestModelConfig {
            items: 10_000,
            embedding_dim: 32,
            dense_features: 8,
            predictor: vec![64, 32],
        }
    }
}

/// A DIN-style attention recommendation model.
///
/// # Example
///
/// ```
/// use enw_recsys::sequence::{InterestModel, InterestModelConfig};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let cfg = InterestModelConfig { items: 100, ..Default::default() };
/// let mut m = InterestModel::new(&cfg, &mut rng);
/// let ctr = m.predict(&[1, 5, 9], 42, &[0.1; 8]);
/// assert!((0.0..=1.0).contains(&ctr));
/// ```
#[derive(Debug, Clone)]
pub struct InterestModel {
    cfg: InterestModelConfig,
    items: EmbeddingTable,
    predictor: Mlp<DigitalLinear>,
}

impl InterestModel {
    /// Builds a model with random (post-training-like) parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(cfg: &InterestModelConfig, rng: &mut Rng64) -> Self {
        let items = EmbeddingTable::random(cfg.items, cfg.embedding_dim, rng);
        let mut dims = vec![2 * cfg.embedding_dim + cfg.dense_features];
        dims.extend_from_slice(&cfg.predictor);
        dims.push(1);
        InterestModel {
            cfg: cfg.clone(),
            items,
            predictor: Mlp::digital(&dims, Activation::Relu, rng),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InterestModelConfig {
        &self.cfg
    }

    /// Attention weights of the history items w.r.t. a candidate
    /// (softmax over scaled dot products).
    ///
    /// # Panics
    ///
    /// Panics if the history is empty or any index is out of range.
    pub fn attention(&self, history: &[usize], candidate: usize) -> Vec<f32> {
        assert!(!history.is_empty(), "empty interaction history");
        let cand = self.items.row(candidate);
        let scale = 1.0 / (self.cfg.embedding_dim as f32).sqrt();
        let scores: Vec<f32> =
            history.iter().map(|&h| dot(self.items.row(h), cand) * scale).collect();
        softmax(&scores, 1.0)
    }

    /// The attention-pooled interest vector for a candidate.
    pub fn interest(&self, history: &[usize], candidate: usize) -> Vec<f32> {
        let w = self.attention(history, candidate);
        let mut pooled = vec![0.0f32; self.cfg.embedding_dim];
        for (&h, &wi) in history.iter().zip(&w) {
            for (p, v) in pooled.iter_mut().zip(self.items.row(h)) {
                *p += wi * v;
            }
        }
        pooled
    }

    /// Predicted CTR of `candidate` for a user with `history` and dense
    /// context features.
    ///
    /// # Panics
    ///
    /// Panics on empty history, out-of-range indices, or dense-width
    /// mismatch.
    pub fn predict(&mut self, history: &[usize], candidate: usize, dense: &[f32]) -> f32 {
        assert_eq!(dense.len(), self.cfg.dense_features, "dense feature count mismatch");
        let interest = self.interest(history, candidate);
        let mut input = interest;
        input.extend_from_slice(self.items.row(candidate));
        input.extend_from_slice(dense);
        let logit = self.predictor.predict(&input)[0];
        1.0 / (1.0 + (-logit).exp())
    }

    /// FLOPs and bytes of one prediction with a history of length `h` —
    /// the attention overhead the paper's flexibility discussion worries
    /// about.
    pub fn prediction_profile(&self, h: usize) -> crate::characterize::OpProfile {
        let d = self.cfg.embedding_dim as u64;
        let hist = h as u64;
        // Attention: H dot products (2·D) + softmax (~3·H) + weighted sum
        // (2·H·D); embeddings read: (H + 1) rows.
        let flops = hist * 2 * d + 3 * hist + 2 * hist * d;
        let bytes = (hist + 1) * d * 4;
        // Predictor MLP.
        let mut dims = vec![2 * self.cfg.embedding_dim + self.cfg.dense_features];
        dims.extend_from_slice(&self.cfg.predictor);
        dims.push(1);
        let mut mlp_flops = 0u64;
        let mut mlp_bytes = 0u64;
        for w in dims.windows(2) {
            mlp_flops += 2 * (w[0] * w[1]) as u64;
            mlp_bytes += ((w[0] * w[1] + w[1]) * 4) as u64;
        }
        crate::characterize::OpProfile { flops: flops + mlp_flops, bytes: bytes + mlp_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rng: &mut Rng64) -> InterestModel {
        InterestModel::new(&InterestModelConfig { items: 200, ..Default::default() }, rng)
    }

    #[test]
    fn attention_is_a_distribution() {
        let mut rng = Rng64::new(1);
        let m = model(&mut rng);
        let w = m.attention(&[1, 2, 3, 4], 10);
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn candidate_in_history_attracts_attention() {
        // A history item identical to the candidate should get the
        // largest attention weight.
        let mut rng = Rng64::new(2);
        let m = model(&mut rng);
        let w = m.attention(&[7, 50, 99], 7);
        assert!(w[0] > w[1] && w[0] > w[2], "{w:?}");
    }

    #[test]
    fn interest_changes_with_candidate() {
        // The same history pools differently for different candidates —
        // the defining property of DIN-style models vs static pooling.
        let mut rng = Rng64::new(3);
        let m = model(&mut rng);
        let hist = [3usize, 77, 150];
        assert_ne!(m.interest(&hist, 3), m.interest(&hist, 150));
    }

    #[test]
    fn prediction_is_probability_and_history_sensitive() {
        let mut rng = Rng64::new(4);
        let mut m = model(&mut rng);
        let dense = [0.2f32; 8];
        let a = m.predict(&[1, 2, 3], 42, &dense);
        let b = m.predict(&[100, 120, 140], 42, &dense);
        assert!((0.0..=1.0).contains(&a));
        assert_ne!(a, b, "history must influence the prediction");
    }

    #[test]
    fn profile_grows_linearly_with_history() {
        let mut rng = Rng64::new(5);
        let m = model(&mut rng);
        let p10 = m.prediction_profile(10);
        let p100 = m.prediction_profile(100);
        // Attention flops/bytes scale ~10x; the MLP part is constant.
        assert!(p100.flops > p10.flops);
        assert!(p100.bytes > p10.bytes);
        let att10 = p10.bytes - m.prediction_profile(0).bytes;
        let att100 = p100.bytes - m.prediction_profile(0).bytes;
        assert_eq!(att100, 10 * att10);
    }

    #[test]
    #[should_panic(expected = "empty interaction history")]
    fn empty_history_panics() {
        let mut rng = Rng64::new(6);
        model(&mut rng).attention(&[], 0);
    }
}
