//! Operator-level workload characterization and roofline analysis
//! (paper Sec. V-B: "embedding table operations exhibit orders of
//! magnitude lower compute intensity as compared to CNN and MLP
//! operations").

use crate::model::{Interaction, RecModelConfig};

/// FLOPs and memory traffic of one model component for a single
/// inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved to/from memory (parameters + activations).
    pub bytes: u64,
}

impl OpProfile {
    /// Arithmetic intensity in FLOPs per byte.
    pub fn intensity(&self) -> f64 {
        self.flops as f64 / self.bytes.max(1) as f64
    }
}

/// Per-component breakdown of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProfile {
    /// Bottom (dense-feature) MLP stack.
    pub bottom_mlp: OpProfile,
    /// All embedding gather-and-pool operations.
    pub embeddings: OpProfile,
    /// Feature interaction.
    pub interaction: OpProfile,
    /// Top (predictor) MLP stack.
    pub top_mlp: OpProfile,
}

impl ModelProfile {
    /// Whole-model totals.
    pub fn total(&self) -> OpProfile {
        OpProfile {
            flops: self.bottom_mlp.flops
                + self.embeddings.flops
                + self.interaction.flops
                + self.top_mlp.flops,
            bytes: self.bottom_mlp.bytes
                + self.embeddings.bytes
                + self.interaction.bytes
                + self.top_mlp.bytes,
        }
    }
}

fn mlp_profile(dims: &[usize], batch: u64) -> OpProfile {
    let mut flops = 0u64;
    let mut bytes = 0u64;
    for w in dims.windows(2) {
        let (i, o) = (w[0] as u64, w[1] as u64);
        flops += 2 * i * o * batch; // MAC = 2 FLOPs
                                    // Weights and biases are read once per batch (this reuse is what
                                    // makes batched MLPs compute-intense); activations move per sample.
        bytes += (i * o + o) * 4 + (i + o) * 4 * batch;
    }
    OpProfile { flops, bytes }
}

/// Computes the per-component profile of a single-query inference.
pub fn profile(cfg: &RecModelConfig) -> ModelProfile {
    profile_batched(cfg, 1)
}

/// Computes the per-component profile of one batched inference of `batch`
/// queries — the datacenter serving regime the paper's characterization
/// references. MLP weights are amortized over the batch; embedding rows
/// are not (each query gathers its own, mostly distinct, rows).
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn profile_batched(cfg: &RecModelConfig, batch: u64) -> ModelProfile {
    assert!(batch > 0, "batch must be positive");
    let mut bottom_dims = vec![cfg.dense_features];
    bottom_dims.extend_from_slice(&cfg.bottom_mlp);
    let bottom = mlp_profile(&bottom_dims, batch);

    // Embeddings: each lookup reads one row; pooling adds dim FLOPs per
    // extra row. No cross-query reuse is assumed here (the cache module
    // models that separately).
    let mut emb_flops = 0u64;
    let mut emb_bytes = 0u64;
    for &(_, lookups) in &cfg.tables {
        emb_bytes += (lookups * cfg.embedding_dim * 4) as u64 * batch;
        emb_flops += ((lookups.saturating_sub(1)) * cfg.embedding_dim) as u64 * batch;
    }
    let embeddings = OpProfile { flops: emb_flops, bytes: emb_bytes };

    let vectors = cfg.tables.len() as u64 + 1;
    let interaction = match cfg.interaction {
        Interaction::Concat => {
            OpProfile { flops: 0, bytes: vectors * cfg.embedding_dim as u64 * 4 * batch }
        }
        Interaction::DotPairwise => {
            let pairs = vectors * (vectors - 1) / 2;
            OpProfile {
                flops: pairs * 2 * cfg.embedding_dim as u64 * batch,
                bytes: vectors * cfg.embedding_dim as u64 * 4 * batch,
            }
        }
    };

    let mut top_dims = vec![crate::model::RecModel::interaction_width(cfg)];
    top_dims.extend_from_slice(&cfg.top_mlp);
    top_dims.push(1);
    let top = mlp_profile(&top_dims, batch);

    ModelProfile { bottom_mlp: bottom, embeddings, interaction, top_mlp: top }
}

/// Which resource bounds a component on a given machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Limited by arithmetic throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

/// A roofline machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineMachine {
    /// Peak arithmetic throughput (FLOP/s).
    pub peak_flops: f64,
    /// Peak memory bandwidth (bytes/s).
    pub mem_bandwidth: f64,
}

impl RooflineMachine {
    /// A server-class CPU with DDR memory (the platform recommendation
    /// inference actually runs on in datacenters, per the cited work).
    pub fn server_cpu() -> Self {
        RooflineMachine { peak_flops: 2.0e12, mem_bandwidth: 100.0e9 }
    }

    /// The machine-balance intensity (FLOPs/byte) where the rooflines
    /// cross.
    pub fn balance(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }

    /// Classifies an operator.
    pub fn bound(&self, p: &OpProfile) -> Bound {
        if p.intensity() >= self.balance() {
            Bound::Compute
        } else {
            Bound::Memory
        }
    }

    /// Attainable throughput (FLOP/s) for an operator under the roofline.
    pub fn attainable_flops(&self, p: &OpProfile) -> f64 {
        self.peak_flops.min(p.intensity() * self.mem_bandwidth)
    }

    /// Estimated execution time (seconds) of one operator invocation:
    /// `max(compute time, memory time)`.
    pub fn time_seconds(&self, p: &OpProfile) -> f64 {
        (p.flops as f64 / self.peak_flops).max(p.bytes as f64 / self.mem_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RecModelConfig;

    #[test]
    fn embeddings_have_far_lower_intensity_than_mlps() {
        // The paper's headline characterization claim, at a datacenter
        // serving batch size.
        let p = profile_batched(&RecModelConfig::memory_bound(), 128);
        assert!(
            p.bottom_mlp.intensity() > 10.0 * p.embeddings.intensity(),
            "MLP {} vs embeddings {}",
            p.bottom_mlp.intensity(),
            p.embeddings.intensity()
        );
    }

    #[test]
    fn memory_bound_config_is_memory_bound() {
        let m = RooflineMachine::server_cpu();
        let p = profile_batched(&RecModelConfig::memory_bound(), 128);
        assert_eq!(m.bound(&p.embeddings), Bound::Memory);
        // Embedding traffic dominates total time.
        let emb_t = m.time_seconds(&p.embeddings);
        let mlp_t = m.time_seconds(&p.bottom_mlp) + m.time_seconds(&p.top_mlp);
        assert!(emb_t > mlp_t, "embeddings {emb_t} vs MLPs {mlp_t}");
    }

    #[test]
    fn compute_bound_config_is_mlp_dominated() {
        let m = RooflineMachine::server_cpu();
        let p = profile_batched(&RecModelConfig::compute_bound(), 128);
        let emb_t = m.time_seconds(&p.embeddings);
        let mlp_t = m.time_seconds(&p.bottom_mlp) + m.time_seconds(&p.top_mlp);
        assert!(mlp_t > emb_t, "MLPs {mlp_t} vs embeddings {emb_t}");
    }

    #[test]
    fn mlp_profile_counts_macs() {
        let p = mlp_profile(&[10, 20], 1);
        assert_eq!(p.flops, 400);
    }

    #[test]
    fn batching_raises_mlp_intensity_only() {
        let cfg = RecModelConfig::memory_bound();
        let single = profile_batched(&cfg, 1);
        let batched = profile_batched(&cfg, 128);
        assert!(batched.bottom_mlp.intensity() > 10.0 * single.bottom_mlp.intensity());
        let ratio = batched.embeddings.intensity() / single.embeddings.intensity();
        assert!((ratio - 1.0).abs() < 1e-9, "embedding intensity must not change");
    }

    #[test]
    fn pooling_flops_scale_with_lookups() {
        let mut cfg = RecModelConfig::compute_bound();
        cfg.tables = vec![(1000, 1)];
        let single = profile(&cfg).embeddings;
        cfg.tables = vec![(1000, 10)];
        let pooled = profile(&cfg).embeddings;
        assert_eq!(single.flops, 0);
        assert!(pooled.flops > 0);
        assert_eq!(pooled.bytes, 10 * single.bytes);
    }

    #[test]
    fn roofline_attainable_capped_at_peak() {
        let m = RooflineMachine::server_cpu();
        let hot = OpProfile { flops: 1_000_000, bytes: 1 };
        assert_eq!(m.attainable_flops(&hot), m.peak_flops);
    }

    #[test]
    fn balance_point_consistency() {
        let m = RooflineMachine::server_cpu();
        let at_balance = OpProfile { flops: m.balance() as u64 * 1000, bytes: 1000 };
        assert_eq!(m.bound(&at_balance), Bound::Compute);
    }
}
