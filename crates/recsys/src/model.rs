//! The DLRM-style neural recommendation model of paper Fig. 6 / Sec. V-A.
//!
//! Dense (continuous) features pass through a bottom MLP stack; sparse
//! categorical features index embedding tables through multi-hot lookups
//! whose rows are pooled; the pooled latent vectors and the dense stack's
//! output interact (concatenation or pairwise dot products) and feed a
//! top/predictor MLP whose sigmoid output is the predicted
//! click-through-rate.

use crate::error::RecsysError;
use crate::trace::SparseQuery;
use enw_nn::activation::Activation;
use enw_nn::mlp::Mlp;
use enw_nn::DigitalLinear;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// Embedding tables handled per parallel chunk when pooling a query's
/// sparse features. One table per chunk: pooling work is very uneven
/// across tables (lookup counts differ), so fine chunks balance best.
const PAR_TABLE_CHUNK: usize = 1;

/// Work units charged per gathered element (`lookups × embedding_dim`)
/// when gating the multi-table pool through
/// `enw_parallel::plan_chunks`: index decode, row load, accumulate and
/// store are all memory-bound, so one element costs a few units, not
/// one.
const GATHER_WORK_PER_ELEM: usize = 4;

/// Queries handled per parallel chunk in [`RecModel::predict_batch`].
const PAR_BATCH_CHUNK: usize = 8;

/// How many lookups ahead [`EmbeddingTable::lookup_pool`] prefetches.
/// Swept on the reference host: 8 hides most of the random-row DRAM
/// latency without evicting rows before use.
const PF_DISTANCE: usize = 8;

/// One embedding table: `rows × dim` learned latent vectors addressed by
/// categorical indices.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    weights: Matrix,
}

impl EmbeddingTable {
    /// A randomly initialized table (as after training; values in
    /// `[-0.5, 0.5]`, the scale typical of trained embeddings).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn random(rows: usize, dim: usize, rng: &mut Rng64) -> Self {
        EmbeddingTable { weights: Matrix::random_uniform(rows, dim, -0.5, 0.5, rng) }
    }

    /// Number of rows (catalogue size).
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Latent dimension.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Bytes of storage at FP32.
    pub fn bytes(&self) -> u64 {
        (self.rows() * self.dim() * 4) as u64
    }

    /// One embedding row.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, index: usize) -> &[f32] {
        self.weights.row(index)
    }

    /// Multi-hot lookup with sum pooling: gathers `indices` rows and sums
    /// them — the operation whose irregular DRAM accesses dominate
    /// memory-bound recommendation models.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    /// The kernel is unrolled eight indices deep with software prefetch:
    /// rows `PF_DISTANCE` lookups ahead are pulled toward L1 while the
    /// current eight rows are summed, hiding the random-access DRAM
    /// latency that makes the naive loop miss-bound. Each output element
    /// keeps a single accumulator that adds the gathered rows sequentially
    /// in index order, so the result is bit-identical to the plain
    /// one-row-at-a-time loop at any unroll factor.
    pub fn lookup_pool(&self, indices: &[usize]) -> Vec<f32> {
        let mut pooled = vec![0.0f32; self.dim()];
        self.gather_pool_into(indices, &mut pooled);
        pooled
    }

    /// [`lookup_pool`](EmbeddingTable::lookup_pool) into a caller-owned
    /// buffer (`pooled` is fully overwritten) — the allocation-free form
    /// the batched predictors drive with scratch workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, any index is out of range, or
    /// `pooled.len() != dim()`.
    // enw:hot
    pub fn gather_pool_into(&self, indices: &[usize], pooled: &mut [f32]) {
        assert!(!indices.is_empty(), "empty multi-hot lookup");
        let dim = self.dim();
        assert_eq!(pooled.len(), dim, "pooled output width mismatch");
        enw_trace::record_span_io(
            "recsys/gather_pool",
            (indices.len() * dim) as u64,
            (4 * indices.len() * dim) as u64,
            (4 * dim) as u64,
        );
        pooled.fill(0.0);
        for &i in indices.iter().take(PF_DISTANCE) {
            self.prefetch_row(i);
        }
        let mut octs = indices.chunks_exact(8);
        let mut seen = 0usize;
        for oct in &mut octs {
            // Software pipeline: issue this iteration's look-ahead
            // prefetches before touching the current rows, so their DRAM
            // fetches overlap the summation below.
            for k in 0..8 {
                if let Some(&ahead) = indices.get(seen + k + PF_DISTANCE) {
                    self.prefetch_row(ahead);
                }
            }
            seen += 8;
            // Pre-slice every row to `dim` so the inner loop indexes
            // eight slices whose lengths provably match `pooled` — the
            // per-element bounds checks hoist out and the d-loop
            // vectorizes.
            let rows: [&[f32]; 8] = [
                &self.weights.row(oct[0])[..dim],
                &self.weights.row(oct[1])[..dim],
                &self.weights.row(oct[2])[..dim],
                &self.weights.row(oct[3])[..dim],
                &self.weights.row(oct[4])[..dim],
                &self.weights.row(oct[5])[..dim],
                &self.weights.row(oct[6])[..dim],
                &self.weights.row(oct[7])[..dim],
            ];
            for (d, p) in pooled.iter_mut().enumerate() {
                let mut acc = *p;
                for r in rows {
                    acc += r[d];
                }
                *p = acc;
            }
        }
        for &i in octs.remainder() {
            for (p, v) in pooled.iter_mut().zip(self.weights.row(i)) {
                *p += v;
            }
        }
    }

    /// Hints the cache hierarchy to pull row `i` toward L1 (no-op on
    /// non-x86 hosts). Purely a performance hint: it reads nothing and
    /// cannot fault, so gathered values are unaffected.
    #[inline(always)]
    fn prefetch_row(&self, i: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            let row = self.weights.row(i);
            // SAFETY: every 64-byte step stays inside the row slice, and
            // _mm_prefetch has no architectural effect beyond the hint.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                let base = row.as_ptr().cast::<i8>();
                let mut off = 0usize;
                while off < std::mem::size_of_val(row) {
                    _mm_prefetch(base.add(off), _MM_HINT_T0);
                    off += 64;
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = i;
    }

    /// Reference implementation of [`EmbeddingTable::lookup_pool`] as a
    /// dense one-hot matrix product (for equivalence testing).
    pub fn lookup_pool_dense(&self, indices: &[usize]) -> Vec<f32> {
        let mut onehot = vec![0.0f32; self.rows()];
        for &i in indices {
            onehot[i] += 1.0;
        }
        self.weights.matvec_t(&onehot)
    }

    /// A borrowed view of the contiguous row window
    /// `[start, start + len)` — the unit a range-sharded store hands
    /// each shard owner, addressed by shard-local indices.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or runs past the table.
    pub fn range_view(&self, start: usize, len: usize) -> TableView<'_> {
        assert!(len > 0, "empty table view");
        assert!(start + len <= self.rows(), "view [{start}, {}) runs past the table", start + len);
        TableView { table: self, start, len }
    }
}

/// A contiguous row window of an [`EmbeddingTable`] — what one range
/// shard's owner sees. Indices are shard-local; the view translates to
/// parent rows, so a sharded gather decomposes into per-view gathers
/// whose pooled partials sum (in shard order) to the full pool.
#[derive(Debug, Clone, Copy)]
pub struct TableView<'a> {
    table: &'a EmbeddingTable,
    start: usize,
    len: usize,
}

impl TableView<'_> {
    /// Rows in this window.
    pub fn rows(&self) -> usize {
        self.len
    }

    /// First parent row covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Latent dimension (same as the parent table's).
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Bytes of storage this window pins at FP32.
    pub fn bytes(&self) -> u64 {
        (self.len * self.dim() * 4) as u64
    }

    /// One row by shard-local index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, local: usize) -> &[f32] {
        assert!(local < self.len, "local row {local} outside view of {} rows", self.len);
        self.table.row(self.start + local)
    }

    /// Sum-pools the shard-local `indices` rows into `pooled` (fully
    /// overwritten). Accumulation is sequential in index order, so the
    /// result is bit-identical to the parent table's gather over the
    /// translated indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, any index is outside the view, or
    /// `pooled.len() != dim()`.
    // enw:hot
    pub fn gather_pool_into(&self, indices: &[usize], pooled: &mut [f32]) {
        assert!(!indices.is_empty(), "empty multi-hot lookup");
        let dim = self.dim();
        assert_eq!(pooled.len(), dim, "pooled output width mismatch");
        enw_trace::record_span_io(
            "recsys/shard_gather",
            (indices.len() * dim) as u64,
            (4 * indices.len() * dim) as u64,
            (4 * dim) as u64,
        );
        pooled.fill(0.0);
        for &local in indices {
            assert!(local < self.len, "local row {local} outside view of {} rows", self.len);
            for (p, v) in pooled.iter_mut().zip(self.table.row(self.start + local)) {
                *p += v;
            }
        }
    }
}

/// How pooled embeddings and the dense stack output combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// Plain concatenation (Wide&Deep style).
    Concat,
    /// Pairwise dot products between all latent vectors (DLRM style),
    /// concatenated with the dense output.
    DotPairwise,
}

/// Model architecture configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RecModelConfig {
    /// Number of continuous input features.
    pub dense_features: usize,
    /// Bottom MLP hidden widths (the last entry must equal
    /// `embedding_dim` so interactions are well-typed).
    pub bottom_mlp: Vec<usize>,
    /// `(rows, lookups_per_query)` for each embedding table; all tables
    /// share `embedding_dim`.
    pub tables: Vec<(usize, usize)>,
    /// Shared latent dimension.
    pub embedding_dim: usize,
    /// Top (predictor) MLP hidden widths.
    pub top_mlp: Vec<usize>,
    /// Feature-interaction operator.
    pub interaction: Interaction,
}

impl RecModelConfig {
    /// A small compute-dominated configuration (big MLPs, few small
    /// tables) — the paper's "large dense-feature DNN stacks" regime.
    pub fn compute_bound() -> Self {
        RecModelConfig {
            dense_features: 256,
            bottom_mlp: vec![512, 256, 64],
            tables: vec![(10_000, 1); 4],
            embedding_dim: 64,
            top_mlp: vec![512, 256],
            interaction: Interaction::Concat,
        }
    }

    /// A memory-dominated configuration (many large tables, heavy
    /// pooling, thin MLPs) — the embedding-bound regime.
    pub fn memory_bound() -> Self {
        RecModelConfig {
            dense_features: 32,
            bottom_mlp: vec![64, 32],
            tables: vec![(1_000_000, 32); 16],
            embedding_dim: 32,
            top_mlp: vec![64],
            interaction: Interaction::Concat,
        }
    }

    /// Starts building a configuration from `base`; cross-field
    /// constraints (the bottom MLP ending at `embedding_dim`, non-zero
    /// dimensions) are checked once at [`RecModelConfigBuilder::build`]
    /// instead of panicking inside [`RecModel::new`].
    pub fn builder(base: RecModelConfig) -> RecModelConfigBuilder {
        RecModelConfigBuilder { cfg: base }
    }
}

/// Builder for [`RecModelConfig`]: start from a preset
/// ([`RecModelConfig::compute_bound`] or
/// [`RecModelConfig::memory_bound`]), override fields, and validate the
/// whole configuration at [`build`](RecModelConfigBuilder::build).
#[derive(Debug, Clone)]
pub struct RecModelConfigBuilder {
    cfg: RecModelConfig,
}

impl RecModelConfigBuilder {
    /// Number of continuous input features.
    pub fn dense_features(mut self, n: usize) -> Self {
        self.cfg.dense_features = n;
        self
    }

    /// Bottom MLP hidden widths (must end at the embedding dimension).
    pub fn bottom_mlp(mut self, widths: Vec<usize>) -> Self {
        self.cfg.bottom_mlp = widths;
        self
    }

    /// `(rows, lookups_per_query)` per embedding table.
    pub fn tables(mut self, tables: Vec<(usize, usize)>) -> Self {
        self.cfg.tables = tables;
        self
    }

    /// Shared latent dimension.
    pub fn embedding_dim(mut self, dim: usize) -> Self {
        self.cfg.embedding_dim = dim;
        self
    }

    /// Top (predictor) MLP hidden widths.
    pub fn top_mlp(mut self, widths: Vec<usize>) -> Self {
        self.cfg.top_mlp = widths;
        self
    }

    /// Feature-interaction operator.
    pub fn interaction(mut self, interaction: Interaction) -> Self {
        self.cfg.interaction = interaction;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<RecModelConfig, RecsysError> {
        let c = self.cfg;
        if c.embedding_dim == 0 {
            return Err(RecsysError::InvalidConfig { reason: "embedding_dim must be non-zero" });
        }
        if c.dense_features == 0 {
            return Err(RecsysError::InvalidConfig { reason: "dense_features must be non-zero" });
        }
        if c.bottom_mlp.last() != Some(&c.embedding_dim) {
            return Err(RecsysError::InvalidConfig {
                reason: "bottom MLP must be non-empty and end at embedding_dim",
            });
        }
        if c.tables.is_empty() {
            return Err(RecsysError::InvalidConfig {
                reason: "at least one embedding table is required",
            });
        }
        if c.tables.iter().any(|&(rows, lookups)| rows == 0 || lookups == 0) {
            return Err(RecsysError::InvalidConfig {
                reason: "every table needs non-zero rows and lookups",
            });
        }
        Ok(c)
    }
}

/// A constructed recommendation model.
///
/// # Example
///
/// ```
/// use enw_recsys::model::{RecModel, RecModelConfig};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut cfg = RecModelConfig::compute_bound();
/// cfg.tables = vec![(100, 1); 2]; // shrink for the example
/// let mut model = RecModel::new(&cfg, &mut rng);
/// let ctr = model.predict(&vec![0.1; 256], &[vec![3], vec![7]]);
/// assert!((0.0..=1.0).contains(&ctr));
/// ```
#[derive(Debug, Clone)]
pub struct RecModel {
    cfg: RecModelConfig,
    bottom: Mlp<DigitalLinear>,
    tables: Vec<EmbeddingTable>,
    top: Mlp<DigitalLinear>,
}

impl RecModel {
    /// Builds a model with random (post-training-like) parameters.
    ///
    /// # Panics
    ///
    /// Panics if the bottom MLP does not end at `embedding_dim`, or any
    /// dimension is zero.
    pub fn new(cfg: &RecModelConfig, rng: &mut Rng64) -> Self {
        assert_eq!(
            cfg.bottom_mlp.last().copied(),
            Some(cfg.embedding_dim),
            "bottom MLP must be non-empty and end at embedding_dim for interaction"
        );
        let mut bottom_dims = vec![cfg.dense_features];
        bottom_dims.extend_from_slice(&cfg.bottom_mlp);
        let bottom = Mlp::digital(&bottom_dims, Activation::Relu, rng);
        let tables: Vec<EmbeddingTable> = cfg
            .tables
            .iter()
            .map(|&(rows, _)| EmbeddingTable::random(rows, cfg.embedding_dim, rng))
            .collect();
        let mut top_dims = vec![Self::interaction_width(cfg)];
        top_dims.extend_from_slice(&cfg.top_mlp);
        top_dims.push(1);
        let top = Mlp::digital(&top_dims, Activation::Relu, rng);
        RecModel { cfg: cfg.clone(), bottom, tables, top }
    }

    /// Width of the interaction output feeding the top MLP.
    pub fn interaction_width(cfg: &RecModelConfig) -> usize {
        let vectors = cfg.tables.len() + 1; // pooled tables + dense stack
        match cfg.interaction {
            Interaction::Concat => vectors * cfg.embedding_dim,
            Interaction::DotPairwise => cfg.embedding_dim + vectors * (vectors - 1) / 2,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &RecModelConfig {
        &self.cfg
    }

    /// The embedding tables.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Total model size in bytes (tables dominate).
    pub fn bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.bytes()).sum()
    }

    /// Predicted click-through rate for one query.
    ///
    /// # Panics
    ///
    /// Panics if the feature counts don't match the configuration.
    pub fn predict(&mut self, dense: &[f32], sparse: &[Vec<usize>]) -> f32 {
        let gathered: usize = sparse.iter().map(Vec::len).sum::<usize>() * self.cfg.embedding_dim;
        // Gate through the shared work-estimate model (per-item work =
        // average gathered elements per table); chunking stays at
        // `PAR_TABLE_CHUNK` tables because pooling work is uneven across
        // tables and fine chunks balance best.
        let per_table = GATHER_WORK_PER_ELEM * gathered / self.tables.len().max(1);
        let parallel_pool = enw_parallel::plan_chunks(self.tables.len(), per_table).is_some();
        Self::predict_core(
            &self.cfg,
            &self.tables,
            &mut self.bottom,
            &mut self.top,
            dense,
            sparse,
            parallel_pool,
        )
    }

    /// Shared inference core behind [`predict`](RecModel::predict) and
    /// [`predict_batch`](RecModel::predict_batch). The dense latent, the
    /// pooled embeddings (one flat `tables × dim` workspace) and the
    /// interaction vector all live in thread-local scratch buffers, so a
    /// warm steady-state call performs no heap allocation.
    ///
    /// With `parallel_pool` set, the per-table gathers fan out to worker
    /// threads (the memory-bound regime: many tables, heavy pooling), one
    /// table per disjoint window of the pooled workspace. Each table is
    /// pooled by the same serial kernel either way, so the output is
    /// bit-identical at any thread count.
    // enw:hot
    fn predict_core(
        cfg: &RecModelConfig,
        tables: &[EmbeddingTable],
        bottom: &mut Mlp<DigitalLinear>,
        top: &mut Mlp<DigitalLinear>,
        dense: &[f32],
        sparse: &[Vec<usize>],
        parallel_pool: bool,
    ) -> f32 {
        assert_eq!(dense.len(), cfg.dense_features, "dense feature count mismatch");
        assert_eq!(sparse.len(), tables.len(), "one index list per table");
        let dim = cfg.embedding_dim;
        let mut dense_latent = enw_parallel::scratch::take_f32(dim);
        bottom.predict_into(dense, &mut dense_latent);
        let mut pooled = enw_parallel::scratch::take_f32(tables.len() * dim);
        if parallel_pool {
            enw_parallel::for_each_chunk_mut(
                &mut pooled,
                PAR_TABLE_CHUNK * dim,
                |start, window| {
                    let t = start / dim;
                    tables[t].gather_pool_into(&sparse[t], window);
                },
            );
        } else {
            for ((table, idx), window) in tables.iter().zip(sparse).zip(pooled.chunks_mut(dim)) {
                table.gather_pool_into(idx, window);
            }
        }
        let mut interacted = enw_parallel::scratch::take_f32(Self::interaction_width(cfg));
        Self::interact_into(cfg, &dense_latent, &pooled, &mut interacted);
        let mut logit = enw_parallel::scratch::take_f32(1);
        top.predict_into(&interacted, &mut logit);
        let work = Self::mlp_work(cfg);
        // Weight traffic dominates MLP reads (one f32 per MAC); writes
        // are the per-layer activation vectors.
        enw_trace::record_span_io("recsys/mlp", work, 4 * work, 4 * Self::mlp_out_elems(cfg));
        1.0 / (1.0 + (-logit[0]).exp())
    }

    /// Elements written across both MLP stacks (per-layer activations
    /// plus the final logit) — the deterministic write traffic paired
    /// with [`mlp_work`](RecModel::mlp_work).
    fn mlp_out_elems(cfg: &RecModelConfig) -> u64 {
        let hidden: usize = cfg.bottom_mlp.iter().chain(&cfg.top_mlp).sum();
        (hidden + 1) as u64
    }

    /// Multiply–accumulates in one pass through both MLP stacks — the
    /// deterministic work units attributed to the dense-compute stage.
    fn mlp_work(cfg: &RecModelConfig) -> u64 {
        let mut work = 0u64;
        let mut prev = cfg.dense_features;
        for &h in &cfg.bottom_mlp {
            work += (prev * h) as u64;
            prev = h;
        }
        let mut prev = Self::interaction_width(cfg);
        for &h in &cfg.top_mlp {
            work += (prev * h) as u64;
            prev = h;
        }
        work + prev as u64 // final logit layer
    }

    /// Deterministic per-query work estimate (the MLP multiply–
    /// accumulates of [`mlp_work`](RecModel::mlp_work)) — the unit
    /// [`predict_batch_into`](RecModel::predict_batch_into) feeds
    /// `enw_parallel::plan_chunks`. Exposed so callers staging batches
    /// for this model can consult the same gate before paying batch
    /// set-up costs.
    pub fn query_work(&self) -> u64 {
        Self::mlp_work(&self.cfg)
    }

    /// Convenience: predict from a generated [`SparseQuery`].
    pub fn predict_query(&mut self, q: &SparseQuery) -> f32 {
        self.predict(&q.dense, &q.sparse)
    }

    /// Batched prediction: queries are split into fixed chunks and served
    /// concurrently, each worker running on a clone of the (pure-inference)
    /// MLP stacks while the embedding tables are shared read-only. Chunk
    /// boundaries depend only on the batch size, so the returned CTRs are
    /// bit-identical to calling [`RecModel::predict_query`] in a loop.
    ///
    /// # Panics
    ///
    /// Panics if any query's feature counts mismatch the configuration.
    pub fn predict_batch(&mut self, queries: &[SparseQuery]) -> Vec<f32> {
        let mut out = vec![0.0f32; queries.len()];
        self.predict_batch_into(queries, &mut out);
        out
    }

    /// [`predict_batch`](RecModel::predict_batch) into a caller-owned
    /// buffer (`out` is fully overwritten). Each worker clones the MLP
    /// stacks once per chunk and reuses its thread-local scratch buffers
    /// across every query in the chunk, so steady-state batched serving
    /// allocates only the per-chunk stack clones.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != queries.len()` or any query's feature
    /// counts mismatch the configuration.
    pub fn predict_batch_into(&mut self, queries: &[SparseQuery], out: &mut [f32]) {
        assert_eq!(out.len(), queries.len(), "one output slot per query");
        // Per-query work is dominated by the MLP stacks; the estimate is
        // config-derived so the gate (and thus the execution schedule) is
        // deterministic for a given model and batch size.
        if enw_parallel::plan_chunks(queries.len(), Self::mlp_work(&self.cfg) as usize).is_none() {
            for (slot, q) in out.iter_mut().zip(queries) {
                *slot = self.predict_query(q);
            }
            return;
        }
        let cfg = &self.cfg;
        let tables = &self.tables;
        let bottom = &self.bottom;
        let top = &self.top;
        enw_parallel::for_each_chunk_mut(out, PAR_BATCH_CHUNK, |start, window| {
            let mut bottom = bottom.clone();
            let mut top = top.clone();
            for (k, slot) in window.iter_mut().enumerate() {
                let q = &queries[start + k];
                // Per-query gathers stay serial here: the batch dimension
                // already saturates the workers.
                *slot = Self::predict_core(
                    cfg,
                    tables,
                    &mut bottom,
                    &mut top,
                    &q.dense,
                    &q.sparse,
                    false,
                );
            }
        });
    }

    /// Predicts from externally supplied pooled embedding vectors (one per
    /// table) instead of this model's own tables — used to evaluate
    /// quantized or otherwise compressed embedding storage against the
    /// same MLP stacks.
    ///
    /// # Panics
    ///
    /// Panics if the vector count or widths mismatch the configuration.
    pub fn predict_with_pooled(&mut self, dense: &[f32], pooled: &[Vec<f32>]) -> f32 {
        assert_eq!(dense.len(), self.cfg.dense_features, "dense feature count mismatch");
        assert_eq!(pooled.len(), self.tables.len(), "one pooled vector per table");
        let dim = self.cfg.embedding_dim;
        let mut flat = enw_parallel::scratch::take_f32(pooled.len() * dim);
        for (window, p) in flat.chunks_mut(dim).zip(pooled) {
            assert_eq!(p.len(), dim, "pooled width mismatch");
            window.copy_from_slice(p);
        }
        let mut dense_latent = enw_parallel::scratch::take_f32(dim);
        self.bottom.predict_into(dense, &mut dense_latent);
        let mut interacted = enw_parallel::scratch::take_f32(Self::interaction_width(&self.cfg));
        Self::interact_into(&self.cfg, &dense_latent, &flat, &mut interacted);
        let mut logit = enw_parallel::scratch::take_f32(1);
        self.top.predict_into(&interacted, &mut logit);
        enw_trace::record_span("recsys/mlp", Self::mlp_work(&self.cfg));
        1.0 / (1.0 + (-logit[0]).exp())
    }

    /// The [`Interaction`] operator into a caller-owned buffer (`out` is
    /// fully overwritten). `pooled` is the flat `tables × dim` pooled
    /// workspace; pair order matches the original push order, so results
    /// are bit-identical to the allocating formulation.
    // enw:hot
    fn interact_into(cfg: &RecModelConfig, dense_latent: &[f32], pooled: &[f32], out: &mut [f32]) {
        let dim = cfg.embedding_dim;
        match cfg.interaction {
            Interaction::Concat => {
                out[..dim].copy_from_slice(dense_latent);
                out[dim..].copy_from_slice(pooled);
            }
            Interaction::DotPairwise => {
                out[..dim].copy_from_slice(dense_latent);
                let vectors = pooled.len() / dim + 1;
                let vec_at =
                    |v: usize| if v == 0 { dense_latent } else { &pooled[(v - 1) * dim..v * dim] };
                let mut k = dim;
                for i in 0..vectors {
                    for j in (i + 1)..vectors {
                        out[k] = enw_numerics::vector::dot(vec_at(i), vec_at(j));
                        k += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RecModelConfig {
        RecModelConfig {
            dense_features: 8,
            bottom_mlp: vec![16, 8],
            tables: vec![(50, 2), (100, 3)],
            embedding_dim: 8,
            top_mlp: vec![16],
            interaction: Interaction::Concat,
        }
    }

    #[test]
    fn prediction_is_probability() {
        let mut rng = Rng64::new(1);
        let mut m = RecModel::new(&tiny_cfg(), &mut rng);
        let ctr = m.predict(&[0.5; 8], &[vec![1, 2], vec![10, 20, 30]]);
        assert!((0.0..=1.0).contains(&ctr));
    }

    #[test]
    fn pooled_lookup_matches_dense_reference() {
        let mut rng = Rng64::new(2);
        let t = EmbeddingTable::random(20, 4, &mut rng);
        let idx = [3usize, 7, 7, 19];
        let sparse = t.lookup_pool(&idx);
        let dense = t.lookup_pool_dense(&idx);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn interaction_widths() {
        let mut cfg = tiny_cfg();
        assert_eq!(RecModel::interaction_width(&cfg), 3 * 8);
        cfg.interaction = Interaction::DotPairwise;
        assert_eq!(RecModel::interaction_width(&cfg), 8 + 3);
    }

    #[test]
    fn dot_pairwise_model_runs() {
        let mut rng = Rng64::new(3);
        let cfg = RecModelConfig { interaction: Interaction::DotPairwise, ..tiny_cfg() };
        let mut m = RecModel::new(&cfg, &mut rng);
        let ctr = m.predict(&[0.1; 8], &[vec![0, 1], vec![5]]);
        assert!((0.0..=1.0).contains(&ctr));
    }

    #[test]
    fn builder_validates_cross_field_constraints() {
        let ok = RecModelConfig::builder(tiny_cfg())
            .embedding_dim(4)
            .bottom_mlp(vec![8, 4])
            .build()
            .expect("consistent override");
        assert_eq!(ok.embedding_dim, 4);
        let err = RecModelConfig::builder(tiny_cfg()).embedding_dim(16).build();
        assert!(matches!(err, Err(RecsysError::InvalidConfig { .. })), "{err:?}");
        let err = RecModelConfig::builder(tiny_cfg()).tables(vec![]).build();
        assert!(matches!(err, Err(RecsysError::InvalidConfig { .. })), "{err:?}");
        let err = RecModelConfig::builder(tiny_cfg()).tables(vec![(0, 2)]).build();
        assert!(matches!(err, Err(RecsysError::InvalidConfig { .. })), "{err:?}");
    }

    #[test]
    fn builder_passthrough_matches_preset() {
        let built = RecModelConfig::builder(RecModelConfig::compute_bound())
            .build()
            .expect("presets are valid");
        assert_eq!(built, RecModelConfig::compute_bound());
    }

    #[test]
    fn memory_bound_config_is_gigabytes_scale() {
        // Paper Sec. V-B: "hundreds of MBs to tens of GBs".
        let cfg = RecModelConfig::memory_bound();
        let bytes: u64 =
            cfg.tables.iter().map(|&(rows, _)| (rows * cfg.embedding_dim * 4) as u64).sum();
        assert!(bytes > 500_000_000, "memory-bound config only {bytes} bytes");
    }

    #[test]
    fn different_items_give_different_predictions() {
        let mut rng = Rng64::new(4);
        let mut m = RecModel::new(&tiny_cfg(), &mut rng);
        let a = m.predict(&[0.5; 8], &[vec![1, 2], vec![10]]);
        let b = m.predict(&[0.5; 8], &[vec![40, 41], vec![90]]);
        assert_ne!(a, b);
    }

    #[test]
    fn unrolled_lookup_pool_is_bitwise_stable() {
        // Index counts 1..=20 cover the unrolled path, the remainder path,
        // and repeats; compare against an independent one-row-at-a-time sum.
        let mut rng = Rng64::new(7);
        let t = EmbeddingTable::random(64, 24, &mut rng);
        for n in 1usize..=20 {
            let idx: Vec<usize> = (0..n).map(|_| rng.below(64)).collect();
            let fast = t.lookup_pool(&idx);
            let mut reference = vec![0.0f32; t.dim()];
            for &i in &idx {
                for (p, v) in reference.iter_mut().zip(t.row(i)) {
                    *p += v;
                }
            }
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn predict_batch_bitwise_matches_serial_across_thread_counts() {
        use crate::trace::TraceGenerator;
        let mut rng = Rng64::new(8);
        let cfg = RecModelConfig {
            tables: vec![(200, 12), (300, 20), (150, 4), (400, 28)],
            ..tiny_cfg()
        };
        let mut m = RecModel::new(&cfg, &mut rng);
        let gen = TraceGenerator::new(&cfg, 1.05);
        let queries = gen.batch(37, &mut rng);
        let serial: Vec<u32> = queries.iter().map(|q| m.predict_query(q).to_bits()).collect();
        for threads in [1usize, 3, 8] {
            let batched = enw_parallel::with_threads(threads, || m.predict_batch(&queries));
            let bits: Vec<u32> = batched.iter().map(|v| v.to_bits()).collect();
            assert_eq!(serial, bits, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "bottom MLP must be non-empty and end")]
    fn mismatched_bottom_mlp_panics() {
        let mut rng = Rng64::new(5);
        let cfg = RecModelConfig { bottom_mlp: vec![16, 12], ..tiny_cfg() };
        RecModel::new(&cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty multi-hot")]
    fn empty_lookup_panics() {
        let mut rng = Rng64::new(6);
        EmbeddingTable::random(10, 4, &mut rng).lookup_pool(&[]);
    }
}
