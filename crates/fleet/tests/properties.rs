//! Property-based tests for the consistent-hash ring (paper Sec. V-B at
//! deployment scale): key stability under membership churn, ~K/N
//! movement, deterministic tie-breaking, and replication invariants.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_fleet::ring::HashRing;
use proptest::prelude::*;

const VNODES: u32 = 32;
const PROBES: u64 = 2048;

proptest! {
    /// Consistent hashing's defining property: adding a member moves a
    /// key only *to the newcomer*, never between survivors — and only
    /// about 1/(n+1) of the key space moves at all.
    #[test]
    fn adding_a_node_moves_keys_only_to_the_newcomer(n in 1u32..12, salt in any::<u64>()) {
        let mut ring = HashRing::with_nodes(VNODES, n);
        let before: Vec<_> = (0..PROBES).map(|k| ring.primary(k ^ salt)).collect();
        ring.add_node(n);
        let mut moved = 0u64;
        for (k, b) in before.iter().enumerate() {
            let now = ring.primary(k as u64 ^ salt);
            if now != *b {
                prop_assert_eq!(now, Some(n), "key moved to a survivor, not the newcomer");
                moved += 1;
            }
        }
        // Expected share is 1/(n+1); with 32 vnodes the estimate is
        // noisy, so allow a generous factor before calling it broken.
        let share = moved as f64 / PROBES as f64;
        let expected = 1.0 / f64::from(n + 1);
        prop_assert!(share < (4.0 * expected).min(1.0),
                     "{share:.3} of keys moved, expected about {expected:.3}");
    }

    /// The mirror property: removing a member strands only that member's
    /// keys; every other key keeps its primary.
    #[test]
    fn removing_a_node_moves_only_its_keys(n in 2u32..12, pick in any::<u32>(), salt in any::<u64>()) {
        let mut ring = HashRing::with_nodes(VNODES, n);
        let victim = pick % n;
        let before: Vec<_> = (0..PROBES).map(|k| ring.primary(k ^ salt)).collect();
        ring.remove_node(victim);
        for (k, b) in before.iter().enumerate() {
            let now = ring.primary(k as u64 ^ salt);
            if *b == Some(victim) {
                prop_assert!(now.is_some() && now != Some(victim));
            } else {
                prop_assert_eq!(now, *b, "key {} moved although its owner survived", k);
            }
        }
    }

    /// Tie-breaking is a pure function of the member set: any add/remove
    /// history ending in the same membership routes identically.
    #[test]
    fn routing_is_insertion_order_independent(n in 1u32..12, rot in any::<u32>(), salt in any::<u64>()) {
        let ascending = HashRing::with_nodes(VNODES, n);
        // Same member set assembled in a rotated order, with a detour
        // through an extra member that is removed again.
        let mut shuffled = HashRing::new(VNODES);
        shuffled.add_node(n + 7);
        for i in 0..n {
            shuffled.add_node((i + rot % n.max(1)) % n);
        }
        shuffled.remove_node(n + 7);
        prop_assert_eq!(&ascending, &shuffled, "histories with equal membership must converge");
        for k in 0..256u64 {
            prop_assert_eq!(ascending.primary(k ^ salt), shuffled.primary(k ^ salt));
        }
    }

    /// Replication invariants: `owners_into` yields exactly
    /// `min(want, n)` owners, all distinct, led by the primary.
    #[test]
    fn replica_sets_are_distinct_and_led_by_the_primary(n in 1u32..10, want in 1usize..6, key in any::<u64>()) {
        let ring = HashRing::with_nodes(VNODES, n);
        let mut out = vec![u32::MAX; want];
        let got = ring.owners_into(key, &mut out);
        prop_assert_eq!(got, want.min(n as usize));
        let mut seen = out[..got].to_vec();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), got, "replica set has duplicates");
        prop_assert!(out[..got].iter().all(|&id| id < n), "owner outside membership");
        prop_assert_eq!(ring.primary(key), Some(out[0]));
    }

    /// Bounded-load routing degrades gracefully: an unloaded ring routes
    /// to the primary, a saturated ring refuses, and a spill never picks
    /// a member at capacity.
    #[test]
    fn bounded_load_spills_but_never_overloads(n in 1u32..10, key in any::<u64>(), cap in 1usize..16) {
        let ring = HashRing::with_nodes(VNODES, n);
        prop_assert_eq!(ring.pick_bounded(key, cap, |_| 0), ring.primary(key));
        prop_assert_eq!(ring.pick_bounded(key, cap, |_| cap), None);
        let primary = ring.primary(key).expect("ring has members");
        let spilled = ring.pick_bounded(key, cap, |id| if id == primary { cap } else { 0 });
        if n == 1 {
            prop_assert_eq!(spilled, None, "sole member at capacity must reject");
        } else {
            prop_assert!(spilled.is_some() && spilled != Some(primary));
        }
    }
}
