//! End-to-end determinism of the fleet simulator (E19's acceptance
//! criterion): the same `(spec, trace)` must produce byte-identical
//! reports at `ENW_THREADS` 1, 2 and 8, and across plain reruns — with
//! the real E19 presets, sharded store and autoscaler included.

use enw_fleet::presets::{fleet_spec, scales, trace, Scenario};
use enw_fleet::sim::try_run;
use enw_parallel as parallel;

const HORIZON_NS: u64 = 20_000_000;
const SEED: u64 = 19;

/// Every scenario at the smallest preset fleet, rendered to one
/// comparable byte string.
fn fingerprint() -> String {
    let scale = scales()[0];
    let mut s = String::new();
    for scenario in Scenario::all() {
        let t = trace(scenario, scale, HORIZON_NS, SEED);
        let report = try_run(fleet_spec(scale), &t).expect("preset spec and trace are valid");
        s.push_str(scenario.name());
        s.push('\n');
        s.push_str(&report.render());
    }
    s
}

#[test]
fn same_spec_same_bytes_across_thread_counts() {
    let reference = parallel::with_threads(1, fingerprint);
    for threads in [2, 8] {
        let got = parallel::with_threads(threads, fingerprint);
        assert_eq!(got, reference, "ENW_THREADS={threads} changed the fleet report");
    }
    // And a plain re-run without any thread pinning.
    assert_eq!(fingerprint(), reference);
}

#[test]
fn different_seeds_name_different_runs() {
    let scale = scales()[1];
    let a = try_run(fleet_spec(scale), &trace(Scenario::DiurnalZipf, scale, HORIZON_NS, 1))
        .expect("valid")
        .render();
    let b = try_run(fleet_spec(scale), &trace(Scenario::DiurnalZipf, scale, HORIZON_NS, 2))
        .expect("valid")
        .render();
    assert_ne!(a, b, "distinct trace seeds should name distinct reports");
}
