//! Reactive replica autoscaling on the virtual clock.
//!
//! At every control epoch the simulator hands the autoscaler what a real
//! controller would read from its metrics plane — queue depth against
//! capacity, the epoch's p99, shed counts — and gets back a scale
//! decision. The state machine is deliberately conservative and fully
//! deterministic:
//!
//! ```text
//!           hot signal & below max          calm streak & above min
//! Steady ────────────────────────▶ Up   ◀── (resets the streak) ── Down
//!    ▲            cooldown epochs hold every decision             ▲
//!    └────────────────────────────────────────────────────────────┘
//! ```
//!
//! "Hot" is any of: epoch p99 over the SLO, waiting work over
//! `up_queue_frac` of lane queue capacity, or any sheds this epoch.
//! "Calm" requires *all* of: p99 under half the SLO, waiting work under
//! `down_queue_frac`, and a clean epoch — sustained for
//! `calm_epochs_to_downscale` consecutive epochs, so one quiet epoch in
//! a diurnal trough cannot flap the fleet.

/// Scaling thresholds and pacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Floor on replicas (never scale below).
    pub min_replicas: usize,
    /// Ceiling on replicas (never scale above).
    pub max_replicas: usize,
    /// Control epoch length in virtual ns.
    pub epoch_ns: u64,
    /// Epoch p99 above this is a hot signal.
    pub p99_slo_ns: u64,
    /// Waiting work above this fraction of lane queue capacity is hot.
    pub up_queue_frac: f64,
    /// Waiting work must be below this fraction to count as calm.
    pub down_queue_frac: f64,
    /// Consecutive calm epochs required before scaling down.
    pub calm_epochs_to_downscale: u32,
    /// Epochs every decision is held after a scale event.
    pub cooldown_epochs: u32,
}

impl AutoscalePolicy {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if bounds are inverted, the epoch or SLO is zero, or the
    /// queue fractions are not `0 < down <= up <= 1`.
    pub fn validate(&self) {
        assert!(self.min_replicas >= 1, "a lane cannot run on zero replicas");
        assert!(self.min_replicas <= self.max_replicas, "min_replicas exceeds max_replicas");
        assert!(self.epoch_ns > 0, "control epoch must be positive");
        assert!(self.p99_slo_ns > 0, "p99 SLO must be positive");
        assert!(
            self.down_queue_frac > 0.0 && self.down_queue_frac <= self.up_queue_frac,
            "queue fractions must satisfy 0 < down <= up"
        );
        assert!(self.up_queue_frac <= 1.0, "up_queue_frac above 1 can never fire");
        assert!(self.calm_epochs_to_downscale >= 1, "downscale needs at least one calm epoch");
    }
}

/// What the autoscaler wants done this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current replica set.
    Hold,
    /// Add one replica.
    Up,
    /// Retire one replica.
    Down,
}

/// One epoch's observed signals for a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSignals {
    /// Live replicas when the epoch closed.
    pub replicas: usize,
    /// Requests waiting in replica queues when the epoch closed.
    pub queued: usize,
    /// Total queue slots across live replicas.
    pub queue_cap: usize,
    /// Nearest-rank p99 of latencies completed this epoch (0 when none).
    pub epoch_p99_ns: u64,
    /// Requests completed this epoch.
    pub served: u64,
    /// Requests shed or rejected this epoch.
    pub dropped: u64,
}

/// The per-lane scaling state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    calm_streak: u32,
    cooldown_left: u32,
    scale_ups: u64,
    scale_downs: u64,
}

impl Autoscaler {
    /// A fresh controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is inconsistent
    /// (see [`AutoscalePolicy::validate`]).
    pub fn new(policy: AutoscalePolicy) -> Self {
        policy.validate();
        Autoscaler { policy, calm_streak: 0, cooldown_left: 0, scale_ups: 0, scale_downs: 0 }
    }

    /// The thresholds in force.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Scale events issued so far, `(ups, downs)`.
    pub fn events(&self) -> (u64, u64) {
        (self.scale_ups, self.scale_downs)
    }

    /// Feeds one closed epoch through the state machine.
    pub fn observe(&mut self, s: &EpochSignals) -> ScaleDecision {
        let p = self.policy;
        let queued_frac = if s.queue_cap == 0 { 1.0 } else { s.queued as f64 / s.queue_cap as f64 };
        let hot = s.epoch_p99_ns > p.p99_slo_ns || queued_frac > p.up_queue_frac || s.dropped > 0;
        let calm = !hot
            && s.epoch_p99_ns * 2 < p.p99_slo_ns
            && queued_frac < p.down_queue_frac
            && s.dropped == 0;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.calm_streak = if calm { self.calm_streak + 1 } else { 0 };
            return ScaleDecision::Hold;
        }
        if hot {
            self.calm_streak = 0;
            if s.replicas < p.max_replicas {
                self.cooldown_left = p.cooldown_epochs;
                self.scale_ups += 1;
                return ScaleDecision::Up;
            }
            return ScaleDecision::Hold;
        }
        if calm {
            self.calm_streak += 1;
            if self.calm_streak >= p.calm_epochs_to_downscale && s.replicas > p.min_replicas {
                self.calm_streak = 0;
                self.cooldown_left = p.cooldown_epochs;
                self.scale_downs += 1;
                return ScaleDecision::Down;
            }
        } else {
            self.calm_streak = 0;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_replicas: 1,
            max_replicas: 4,
            epoch_ns: 10_000_000,
            p99_slo_ns: 1_000_000,
            up_queue_frac: 0.5,
            down_queue_frac: 0.1,
            calm_epochs_to_downscale: 3,
            cooldown_epochs: 1,
        }
    }

    fn calm(replicas: usize) -> EpochSignals {
        EpochSignals {
            replicas,
            queued: 0,
            queue_cap: 64,
            epoch_p99_ns: 100_000,
            served: 50,
            dropped: 0,
        }
    }

    fn hot(replicas: usize) -> EpochSignals {
        EpochSignals {
            replicas,
            queued: 60,
            queue_cap: 64,
            epoch_p99_ns: 5_000_000,
            served: 50,
            dropped: 3,
        }
    }

    #[test]
    fn hot_epochs_scale_up_to_the_ceiling() {
        let mut a = Autoscaler::new(policy());
        assert_eq!(a.observe(&hot(2)), ScaleDecision::Up);
        assert_eq!(a.observe(&hot(3)), ScaleDecision::Hold, "cooldown holds");
        assert_eq!(a.observe(&hot(3)), ScaleDecision::Up);
        assert_eq!(a.observe(&hot(4)), ScaleDecision::Hold, "cooldown again");
        assert_eq!(a.observe(&hot(4)), ScaleDecision::Hold, "at max, hold");
        assert_eq!(a.events(), (2, 0));
    }

    #[test]
    fn downscale_needs_a_sustained_calm_streak() {
        let mut a = Autoscaler::new(policy());
        assert_eq!(a.observe(&calm(3)), ScaleDecision::Hold);
        assert_eq!(a.observe(&calm(3)), ScaleDecision::Hold);
        assert_eq!(a.observe(&calm(3)), ScaleDecision::Down, "third calm epoch");
        assert_eq!(a.observe(&calm(2)), ScaleDecision::Hold, "cooldown");
        assert_eq!(a.events(), (0, 1));
    }

    #[test]
    fn one_busy_epoch_resets_the_calm_streak() {
        let mut a = Autoscaler::new(policy());
        a.observe(&calm(3));
        a.observe(&calm(3));
        // Busy but not hot: between the calm and hot thresholds.
        let midway = EpochSignals { queued: 20, ..calm(3) };
        assert_eq!(a.observe(&midway), ScaleDecision::Hold);
        assert_eq!(a.observe(&calm(3)), ScaleDecision::Hold, "streak restarted");
    }

    #[test]
    fn floor_is_respected() {
        let mut a = Autoscaler::new(policy());
        for _ in 0..10 {
            assert_ne!(a.observe(&calm(1)), ScaleDecision::Down, "cannot drop below min");
        }
    }

    #[test]
    fn decisions_are_reproducible() {
        let signals: Vec<EpochSignals> =
            (0..20).map(|i| if i % 3 == 0 { hot(2) } else { calm(2) }).collect();
        let mut a = Autoscaler::new(policy());
        let mut b = Autoscaler::new(policy());
        for s in &signals {
            assert_eq!(a.observe(s), b.observe(s));
        }
    }

    #[test]
    #[should_panic(expected = "min_replicas exceeds max_replicas")]
    fn inverted_bounds_are_rejected() {
        Autoscaler::new(AutoscalePolicy { min_replicas: 5, ..policy() });
    }
}
