//! Consistent-hash routing ring with virtual nodes and a bounded-load
//! pick (paper Sec. V-B at deployment scale: requests must land on the
//! replica that holds the right shard without a central dispatcher, and
//! membership changes must move only ~K/N of the key space).
//!
//! Every placement decision is a pure function of `(key, membership)`:
//! hashing is a fixed 64-bit finalizer, ties break on `(point, node)`,
//! and the point list is kept sorted — so two rings built through any
//! add/remove history that ends in the same member set route every key
//! identically, which is what makes autoscaling reproducible.

/// The classic 64-bit splitmix finalizer: full-avalanche, cheap, and —
/// unlike a hash *map* — a fixed function, so ring placement never
/// depends on process-level seeding (enw-analyze rule ENW-D003).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Where `key` lands on the circle.
#[inline]
pub fn key_point(key: u64) -> u64 {
    mix64(key)
}

/// The circle position of replica `node`'s `vnode`-th virtual point.
/// Domain-separated from [`key_point`] so a node id never collides with
/// the key that hashes to the same integer.
#[inline]
fn vnode_point(node: u32, vnode: u32) -> u64 {
    mix64(0x5bd1_e995 ^ ((node as u64) << 32) ^ (vnode as u64).wrapping_mul(0x9e37_79b9))
}

/// A consistent-hash ring over replica ids.
///
/// # Example
///
/// ```
/// use enw_fleet::ring::HashRing;
///
/// let mut ring = HashRing::with_nodes(16, 4);
/// let before = ring.primary(42);
/// ring.add_node(4);
/// // The key either kept its owner or moved to the new node — never to
/// // an unrelated survivor.
/// let after = ring.primary(42);
/// assert!(after == before || after == Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    vnodes: u32,
    /// Sorted `(point, node)` pairs; the tuple order is the tie-break.
    points: Vec<(u64, u32)>,
    /// Sorted live member ids.
    nodes: Vec<u32>,
}

impl HashRing {
    /// An empty ring placing `vnodes` virtual points per member.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    pub fn new(vnodes: u32) -> Self {
        assert!(vnodes > 0, "a ring needs at least one virtual point per node");
        HashRing { vnodes, points: Vec::new(), nodes: Vec::new() }
    }

    /// A ring pre-populated with members `0..n`.
    pub fn with_nodes(vnodes: u32, n: u32) -> Self {
        let mut ring = HashRing::new(vnodes);
        for id in 0..n {
            ring.add_node(id);
        }
        ring
    }

    /// Virtual points per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Live member count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Live member ids, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: u32) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// True when no member is present.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds member `id`, inserting its virtual points.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already a member.
    pub fn add_node(&mut self, id: u32) {
        let slot = self.nodes.partition_point(|&n| n < id);
        assert!(self.nodes.get(slot) != Some(&id), "node {id} is already on the ring");
        self.nodes.insert(slot, id);
        for v in 0..self.vnodes {
            let p = (vnode_point(id, v), id);
            let at = match self.points.binary_search(&p) {
                Ok(at) | Err(at) => at,
            };
            self.points.insert(at, p);
        }
    }

    /// Removes member `id` and all its virtual points.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member.
    pub fn remove_node(&mut self, id: u32) {
        let slot = self.nodes.partition_point(|&n| n < id);
        assert!(self.nodes.get(slot) == Some(&id), "node {id} is not on the ring");
        self.nodes.remove(slot);
        self.points.retain(|&(_, n)| n != id);
    }

    /// Writes the first `out.len()` *distinct* members clockwise from
    /// `key`'s point into `out` (the replica set: `out[0]` is the
    /// primary) and returns how many were found — less than `out.len()`
    /// only when the ring has fewer members. Allocation-free; distinct
    /// because a replica set with one node twice replicates nothing.
    // enw:hot
    pub fn owners_into(&self, key: u64, out: &mut [u32]) -> usize {
        if self.points.is_empty() || out.is_empty() {
            return 0;
        }
        let start = self.points.partition_point(|&(p, _)| p < key_point(key));
        let mut found = 0usize;
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if !out[..found].contains(&node) {
                out[found] = node;
                found += 1;
                if found == out.len() {
                    break;
                }
            }
        }
        found
    }

    /// The first member clockwise from `key`'s point, if any.
    pub fn primary(&self, key: u64) -> Option<u32> {
        let mut one = [0u32; 1];
        if self.owners_into(key, &mut one) == 1 {
            let [owner] = one;
            Some(owner)
        } else {
            None
        }
    }

    /// Bounded-load pick: the first member clockwise from `key` whose
    /// reported `load` is below `cap`. Overloaded members are skipped
    /// (their keys spill to the next member clockwise, the bounded-load
    /// consistent-hashing rule), so one hot key cannot sink its primary.
    /// Returns `None` when every member is at capacity — the admission
    /// layer's cue to reject.
    // enw:hot
    pub fn pick_bounded(&self, key: u64, cap: usize, load: impl Fn(u32) -> usize) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < key_point(key));
        // Every member contributes `vnodes` points, so one lap around
        // the circle provably consults every member.
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if load(node) < cap {
                return Some(node);
            }
        }
        None
    }

    /// How many of the probe keys `0..probes` changed primary between
    /// `self` and `after` — the observable rebalance cost of a
    /// membership change, in moved key-space fraction.
    pub fn moved_keys(&self, after: &HashRing, probes: u64) -> u64 {
        (0..probes).filter(|&k| self.primary(k) != after.primary(k)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(7), None);
        let mut out = [0u32; 3];
        assert_eq!(ring.owners_into(7, &mut out), 0);
        assert_eq!(ring.pick_bounded(7, 10, |_| 0), None);
    }

    #[test]
    fn owners_are_distinct_and_capped_by_membership() {
        let ring = HashRing::with_nodes(16, 3);
        let mut out = [u32::MAX; 5];
        let n = ring.owners_into(99, &mut out);
        assert_eq!(n, 3, "only 3 members exist");
        let mut seen = out[..n].to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "owners must be distinct");
    }

    #[test]
    fn add_remove_round_trips_routing() {
        let mut ring = HashRing::with_nodes(16, 4);
        let before: Vec<_> = (0..512).map(|k| ring.primary(k)).collect();
        ring.add_node(9);
        ring.remove_node(9);
        let after: Vec<_> = (0..512).map(|k| ring.primary(k)).collect();
        assert_eq!(before, after, "membership round trip changed routing");
    }

    #[test]
    fn removal_moves_only_the_lost_nodes_keys() {
        let mut ring = HashRing::with_nodes(32, 5);
        let before: Vec<_> = (0..2048).map(|k| ring.primary(k)).collect();
        ring.remove_node(2);
        for (k, b) in before.iter().enumerate() {
            let now = ring.primary(k as u64);
            if *b != Some(2) {
                assert_eq!(now, *b, "key {k} moved although its owner survived");
            } else {
                assert_ne!(now, Some(2));
            }
        }
    }

    #[test]
    fn bounded_load_spills_past_full_nodes() {
        let ring = HashRing::with_nodes(16, 4);
        let key = 1234u64;
        let primary = ring.primary(key).expect("ring has members");
        // Saturate the primary: the pick must land elsewhere.
        let spilled = ring
            .pick_bounded(key, 8, |n| if n == primary { 8 } else { 0 })
            .expect("other members have room");
        assert_ne!(spilled, primary);
        // Saturate everyone: admission must see None.
        assert_eq!(ring.pick_bounded(key, 8, |_| 8), None);
    }

    #[test]
    fn moved_keys_counts_the_rebalance() {
        let mut ring = HashRing::with_nodes(32, 8);
        let before = ring.clone();
        ring.add_node(8);
        let moved = before.moved_keys(&ring, 4096);
        // ~1/9 of the key space should move to the newcomer; allow slack.
        assert!(moved > 0);
        assert!((moved as f64) < 0.30 * 4096.0, "moved {moved} of 4096 keys");
    }

    #[test]
    #[should_panic(expected = "already on the ring")]
    fn double_add_is_rejected() {
        let mut ring = HashRing::with_nodes(4, 2);
        ring.add_node(1);
    }

    #[test]
    #[should_panic(expected = "not on the ring")]
    fn removing_a_stranger_is_rejected() {
        let mut ring = HashRing::with_nodes(4, 2);
        ring.remove_node(7);
    }
}
