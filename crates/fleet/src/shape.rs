//! Traffic shapes beyond Poisson, and user-key popularity mixes.
//!
//! Production recommendation traffic is not memoryless: it breathes with
//! the day, bursts, spikes on external events, and concentrates on hot
//! keys. [`ShapeKind`] implements `serve::LoadShape` for four canonical
//! shapes as *rate-modulated* exponential processes — the instantaneous
//! rate `rate_at(t)` prices the next gap, a piecewise-exponential
//! approximation of the non-homogeneous Poisson process that keeps one
//! uniform draw per arrival (the fixed draw order every trace consumer
//! relies on). [`UserMix`] supplies the companion key-popularity models,
//! including the adversarial hot-set skew that stresses the bounded-load
//! router and the hot/cold shard placement.

use enw_numerics::rng::{Rng64, ZipfSampler};
use enw_serve::LoadShape;

/// One of the fleet's arrival processes. All rates are requests/second
/// on the virtual clock; every variant's rate is strictly positive so
/// the generator always terminates.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeKind {
    /// Memoryless at a fixed rate — the E16 baseline.
    Poisson {
        /// Aggregate arrival rate.
        qps: f64,
    },
    /// Diurnal sinusoid: `base * (1 + swing * sin(2πt/period))`.
    Diurnal {
        /// Mean rate over one period.
        base_qps: f64,
        /// Relative amplitude in `[0, 1)`; the trough stays positive.
        swing: f64,
        /// Period of one simulated "day" in seconds.
        period_s: f64,
    },
    /// Bursty on/off: `hi_qps` for `on_s`, then `lo_qps` for `off_s`.
    Bursty {
        /// Rate inside a burst.
        hi_qps: f64,
        /// Rate between bursts.
        lo_qps: f64,
        /// Burst length in seconds.
        on_s: f64,
        /// Quiet gap in seconds.
        off_s: f64,
    },
    /// Flash crowd: `base_qps`, multiplied by `spike` inside
    /// `[start_s, start_s + length_s)`.
    FlashCrowd {
        /// Background rate.
        base_qps: f64,
        /// Rate multiplier during the crowd (>= 1).
        spike: f64,
        /// When the crowd arrives, seconds.
        start_s: f64,
        /// How long it stays, seconds.
        length_s: f64,
    },
}

impl ShapeKind {
    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ShapeKind::Poisson { .. } => "poisson",
            ShapeKind::Diurnal { .. } => "diurnal",
            ShapeKind::Bursty { .. } => "bursty",
            ShapeKind::FlashCrowd { .. } => "flash_crowd",
        }
    }

    /// Instantaneous arrival rate at virtual second `t_s`.
    ///
    /// # Panics
    ///
    /// Panics if the variant's parameters make the rate non-positive or
    /// non-finite at `t_s` (e.g. `swing >= 1`).
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let rate = match *self {
            ShapeKind::Poisson { qps } => qps,
            ShapeKind::Diurnal { base_qps, swing, period_s } => {
                base_qps * (1.0 + swing * (std::f64::consts::TAU * t_s / period_s).sin())
            }
            ShapeKind::Bursty { hi_qps, lo_qps, on_s, off_s } => {
                let phase = t_s.rem_euclid(on_s + off_s);
                if phase < on_s {
                    hi_qps
                } else {
                    lo_qps
                }
            }
            ShapeKind::FlashCrowd { base_qps, spike, start_s, length_s } => {
                if (start_s..start_s + length_s).contains(&t_s) {
                    base_qps * spike
                } else {
                    base_qps
                }
            }
        };
        assert!(rate > 0.0 && rate.is_finite(), "shape {} has rate {rate} at t={t_s}", self.name());
        rate
    }

    /// Mean rate over the horizon — used to size sweeps against lane
    /// capacity the same way E16 uses `saturation_qps`.
    pub fn mean_qps(&self) -> f64 {
        match *self {
            ShapeKind::Poisson { qps } => qps,
            ShapeKind::Diurnal { base_qps, .. } => base_qps,
            ShapeKind::Bursty { hi_qps, lo_qps, on_s, off_s } => {
                (hi_qps * on_s + lo_qps * off_s) / (on_s + off_s)
            }
            // Crowd contribution is horizon-dependent; report the floor.
            ShapeKind::FlashCrowd { base_qps, .. } => base_qps,
        }
    }
}

impl LoadShape for ShapeKind {
    fn next_dt_s(&mut self, t_s: f64, rng: &mut Rng64) -> f64 {
        // Exponential gap priced at the current instantaneous rate; one
        // uniform draw per arrival, like the Poisson baseline.
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        -u.ln() / self.rate_at(t_s)
    }
}

/// Which user issues each request — the key the router hashes and the
/// seed of the request's embedding lookups, so popularity skew here is
/// what concentrates load on hot shards.
#[derive(Debug, Clone, PartialEq)]
pub enum UserMix {
    /// Every user equally likely.
    Uniform {
        /// Catalogue size.
        users: u64,
    },
    /// Zipf-distributed popularity (the paper's Sec. V-B access model).
    Zipf {
        /// Catalogue size.
        users: u64,
        /// Skew exponent (1.0 ≈ web traffic).
        alpha: f64,
    },
    /// Adversarial hot set: `hot_share` of requests hit the first `hot`
    /// users, the rest spread over the remainder.
    HotSet {
        /// Catalogue size.
        users: u64,
        /// Size of the hot prefix.
        hot: u64,
        /// Fraction of traffic on the hot prefix, in `(0, 1)`.
        hot_share: f64,
    },
}

impl UserMix {
    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            UserMix::Uniform { .. } => "uniform",
            UserMix::Zipf { .. } => "zipf",
            UserMix::HotSet { .. } => "hot_set",
        }
    }
}

/// A ready-to-draw sampler for a [`UserMix`] (Zipf needs a precomputed
/// normalization table, so building is separated from sampling).
#[derive(Debug, Clone)]
pub struct UserSampler {
    mix: UserMix,
    zipf: Option<ZipfSampler>,
}

impl UserSampler {
    /// Prepares a sampler for `mix`.
    ///
    /// # Panics
    ///
    /// Panics if the catalogue is empty, a hot set is empty or not a
    /// strict subset, or `hot_share` is outside `(0, 1)`.
    pub fn new(mix: UserMix) -> Self {
        let zipf = match mix {
            UserMix::Uniform { users } => {
                assert!(users > 0, "empty user catalogue");
                None
            }
            UserMix::Zipf { users, alpha } => {
                assert!(users > 0, "empty user catalogue");
                Some(ZipfSampler::new(users as usize, alpha))
            }
            UserMix::HotSet { users, hot, hot_share } => {
                assert!(hot > 0 && hot < users, "hot set must be a non-empty strict subset");
                assert!(
                    hot_share > 0.0 && hot_share < 1.0,
                    "hot_share must sit strictly inside (0, 1)"
                );
                None
            }
        };
        UserSampler { mix, zipf }
    }

    /// The mix this sampler draws from.
    pub fn mix(&self) -> &UserMix {
        &self.mix
    }

    /// Draws one user id.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        match self.mix {
            UserMix::Uniform { users } => rng.below(users as usize) as u64,
            UserMix::Zipf { .. } => match &self.zipf {
                Some(z) => z.sample(rng) as u64,
                None => 0,
            },
            UserMix::HotSet { users, hot, hot_share } => {
                if rng.uniform() < hot_share {
                    rng.below(hot as usize) as u64
                } else {
                    hot + rng.below((users - hot) as usize) as u64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_rate_breathes_around_base() {
        let s = ShapeKind::Diurnal { base_qps: 1000.0, swing: 0.5, period_s: 1.0 };
        assert!((s.rate_at(0.25) - 1500.0).abs() < 1e-6, "peak at quarter period");
        assert!((s.rate_at(0.75) - 500.0).abs() < 1e-6, "trough at three quarters");
        assert_eq!(s.mean_qps(), 1000.0);
    }

    #[test]
    fn bursty_rate_switches_phases() {
        let s = ShapeKind::Bursty { hi_qps: 900.0, lo_qps: 100.0, on_s: 0.1, off_s: 0.3 };
        assert_eq!(s.rate_at(0.05), 900.0);
        assert_eq!(s.rate_at(0.2), 100.0);
        assert_eq!(s.rate_at(0.45), 900.0, "phase wraps");
        assert_eq!(s.mean_qps(), 300.0);
    }

    #[test]
    fn flash_crowd_spikes_inside_the_window() {
        let s = ShapeKind::FlashCrowd { base_qps: 200.0, spike: 5.0, start_s: 1.0, length_s: 0.5 };
        assert_eq!(s.rate_at(0.5), 200.0);
        assert_eq!(s.rate_at(1.2), 1000.0);
        assert_eq!(s.rate_at(1.6), 200.0);
    }

    #[test]
    #[should_panic(expected = "has rate")]
    fn overswung_diurnal_is_rejected_at_the_trough() {
        let s = ShapeKind::Diurnal { base_qps: 100.0, swing: 1.5, period_s: 1.0 };
        s.rate_at(0.75);
    }

    #[test]
    fn hot_set_concentrates_traffic() {
        let sampler = UserSampler::new(UserMix::HotSet { users: 10_000, hot: 10, hot_share: 0.8 });
        let mut rng = Rng64::new(11);
        let mut hot_hits = 0usize;
        for _ in 0..5_000 {
            if sampler.sample(&mut rng) < 10 {
                hot_hits += 1;
            }
        }
        let share = hot_hits as f64 / 5_000.0;
        assert!((0.75..0.85).contains(&share), "hot share {share} far from 0.8");
    }

    #[test]
    fn samplers_are_reproducible() {
        for mix in [
            UserMix::Uniform { users: 1000 },
            UserMix::Zipf { users: 1000, alpha: 1.0 },
            UserMix::HotSet { users: 1000, hot: 50, hot_share: 0.6 },
        ] {
            let s = UserSampler::new(mix);
            let a: Vec<u64> = {
                let mut rng = Rng64::new(3);
                (0..64).map(|_| s.sample(&mut rng)).collect()
            };
            let b: Vec<u64> = {
                let mut rng = Rng64::new(3);
                (0..64).map(|_| s.sample(&mut rng)).collect()
            };
            assert_eq!(a, b, "{} sampler drifted", s.mix().name());
            assert!(a.iter().all(|&u| u < 1000));
        }
    }
}
