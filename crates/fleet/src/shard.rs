//! Sharded, replicated embedding storage (paper Sec. V-B: DLRM tables
//! exceed one node's memory, so serving splits them into shards spread
//! over the replica set).
//!
//! Each table is cut into `shards` pieces — contiguous row ranges
//! ([`ShardScheme::Range`]) or hashed rows ([`ShardScheme::Hash`]) — and
//! every shard is assigned owners on a consistent-hash ring over the
//! lane's current replicas. A routed lookup fans its indices out by
//! shard, gathers each shard's rows (range shards through the borrowed
//! `recsys::TableView` window, hash shards through the parent table) and
//! merges the pooled partials *in shard order*, so the result is a pure
//! function of `(user, store)` at any thread count.
//!
//! Placement is temperature-driven, E14 style: each shard fronts its own
//! LRU [`EmbeddingCache`] and an epoch access counter; at rebalance the
//! hottest `hot_fraction` of shards get the full replication factor,
//! cold shards get a single owner, and the store reports how many bytes
//! a real cluster would have copied.

use crate::ring::{key_point, HashRing};
use enw_numerics::rng::Rng64;
use enw_parallel::{for_each_chunk_mut, scratch};
use enw_recsys::cache::{CacheStats, EmbeddingCache};
use enw_recsys::EmbeddingTable;

/// Virtual points per replica on the shard-placement ring. Placement is
/// control-plane work, so this leans toward balance over speed.
const PLACEMENT_VNODES: u32 = 32;

/// How rows map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardScheme {
    /// Contiguous row ranges — owners hold a dense window (served
    /// through `EmbeddingTable::range_view`).
    Range,
    /// Rows scattered by hash — balances skewed catalogues at the cost
    /// of dense windows.
    Hash,
}

impl ShardScheme {
    /// Short stable name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShardScheme::Range => "range",
            ShardScheme::Hash => "hash",
        }
    }
}

/// Geometry and placement policy of a sharded store.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Number of embedding tables.
    pub tables: usize,
    /// Rows per table (catalogue size).
    pub rows_per_table: usize,
    /// Latent dimension.
    pub dim: usize,
    /// Multi-hot lookups per table per query.
    pub lookups_per_table: usize,
    /// Shards per table.
    pub shards: usize,
    /// Owners per *hot* shard (cold shards keep one).
    pub replication: usize,
    /// Row-to-shard mapping.
    pub scheme: ShardScheme,
    /// Fraction of shards (by access rank) that get full replication.
    pub hot_fraction: f64,
    /// Per-shard LRU cache capacity, in rows.
    pub cache_rows: usize,
}

impl ShardSpec {
    /// Total shards across all tables.
    pub fn total_shards(&self) -> usize {
        self.tables * self.shards
    }

    fn validate(&self) {
        assert!(self.tables > 0, "a store needs at least one table");
        assert!(self.rows_per_table > 0 && self.dim > 0, "tables must be non-empty");
        assert!(self.lookups_per_table > 0, "queries must look something up");
        assert!(
            self.shards > 0 && self.shards <= self.rows_per_table,
            "shards must be in 1..=rows"
        );
        assert!(self.replication > 0, "replication factor must be at least 1");
        assert!((0.0..=1.0).contains(&self.hot_fraction), "hot_fraction must sit in [0, 1]");
        assert!(self.cache_rows > 0, "per-shard caches need capacity");
    }
}

/// What one routed batch cost the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchCost {
    /// Distinct `(shard owner)` nodes touched, summed over queries — the
    /// fan-out a real cluster pays in RPCs.
    pub owner_touches: u64,
    /// Row accesses served by shard caches.
    pub hits: u64,
    /// Row accesses that went to DRAM.
    pub misses: u64,
    /// Order-sensitive fold of every pooled output bit — the value the
    /// determinism tests fingerprint.
    pub checksum: u64,
}

/// What one placement pass moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceCost {
    /// Shards whose owner set changed.
    pub reassigned_shards: u64,
    /// Bytes a real cluster would copy to honor the new placement.
    pub moved_bytes: u64,
}

/// A replicated, sharded, cache-fronted embedding store.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    spec: ShardSpec,
    tables: Vec<EmbeddingTable>,
    /// Rows in each `(table, shard)` slot, `table * shards + shard`.
    shard_rows: Vec<usize>,
    /// Epoch access counters per slot (halved at each rebalance).
    accesses: Vec<u64>,
    /// Per-slot LRU caches (E14's memory-system model).
    caches: Vec<EmbeddingCache>,
    /// Current owner nodes per slot, primary first. Empty until the
    /// first [`ShardedStore::rebalance`].
    owners: Vec<Vec<u32>>,
    /// Hot flags from the last rebalance.
    hot: Vec<bool>,
}

impl ShardedStore {
    /// Builds the store's tables from `seed` and prepares empty
    /// placement state; call [`rebalance`](ShardedStore::rebalance) with
    /// the initial replica set before serving.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (see [`ShardSpec`]).
    pub fn new(spec: ShardSpec, seed: u64) -> Self {
        spec.validate();
        let mut rng = Rng64::new(seed);
        let tables: Vec<EmbeddingTable> = (0..spec.tables)
            .map(|_| EmbeddingTable::random(spec.rows_per_table, spec.dim, &mut rng))
            .collect();
        let slots = spec.total_shards();
        let mut shard_rows = vec![0usize; slots];
        for t in 0..spec.tables {
            for row in 0..spec.rows_per_table {
                shard_rows[t * spec.shards + shard_of_row(&spec, row)] += 1;
            }
        }
        let caches = (0..slots).map(|_| EmbeddingCache::new(spec.cache_rows)).collect();
        ShardedStore {
            spec,
            tables,
            shard_rows,
            accesses: vec![0; slots],
            caches,
            owners: vec![Vec::new(); slots],
            hot: vec![false; slots],
        }
    }

    /// The geometry this store was built with.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Total FP32 bytes across all tables (unreplicated).
    pub fn bytes(&self) -> u64 {
        self.tables.iter().map(EmbeddingTable::bytes).sum()
    }

    /// Bytes currently pinned across all owners (replicas included).
    pub fn replicated_bytes(&self) -> u64 {
        (0..self.spec.total_shards())
            .map(|slot| self.owners[slot].len() as u64 * self.slot_bytes(slot))
            .sum()
    }

    /// Shards flagged hot by the last rebalance.
    pub fn hot_shards(&self) -> usize {
        self.hot.iter().filter(|&&h| h).count()
    }

    /// Aggregate cache counters across every shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    fn slot_bytes(&self, slot: usize) -> u64 {
        (self.shard_rows[slot] * self.spec.dim * 4) as u64
    }

    /// The `k`-th lookup row of `user` in `table` — a fixed hash, so a
    /// returning user re-touches the same rows (that is what makes
    /// hot-key skew heat shards and caches).
    #[inline]
    fn index_for(&self, user: u64, table: usize, k: usize) -> usize {
        let h = key_point(user ^ ((table as u64) << 40) ^ ((k as u64) << 52) ^ 0x00c0_ffee);
        (h % self.spec.rows_per_table as u64) as usize
    }

    /// Serial accounting + parallel gather for one routed batch.
    ///
    /// Cache accesses, shard temperatures and owner-touch counts are
    /// walked serially in `(query, table, lookup)` order (LRU state is
    /// order-sensitive); the numeric pool then fans out per query on the
    /// worker pool. Chunk boundaries are per query and each query's
    /// merge is internally ordered, so the checksum is bit-identical at
    /// any `ENW_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty or the store has not been rebalanced
    /// onto a replica set yet.
    pub fn pool_batch(&mut self, users: &[u64]) -> BatchCost {
        assert!(!users.is_empty(), "empty batch");
        let spec = &self.spec;
        let mut cost = BatchCost::default();
        let mut touched = scratch::take_usize(spec.total_shards());
        for &user in users {
            let mut ntouched = 0usize;
            for t in 0..spec.tables {
                for k in 0..spec.lookups_per_table {
                    let row = self.index_for(user, t, k);
                    let s = shard_of_row(spec, row);
                    let slot = t * spec.shards + s;
                    self.accesses[slot] += 1;
                    if self.caches[slot].access(t, row) {
                        cost.hits += 1;
                    } else {
                        cost.misses += 1;
                    }
                    let owners = &self.owners[slot];
                    assert!(!owners.is_empty(), "store serves before its first rebalance");
                    // Reads pin one replica per (user, shard): spread by
                    // user hash, stable across identical membership.
                    let owner = owners[(key_point(user) % owners.len() as u64) as usize];
                    let touched = touched.as_mut_slice();
                    if !touched[..ntouched].contains(&(owner as usize)) {
                        touched[ntouched] = owner as usize;
                        ntouched += 1;
                    }
                }
            }
            cost.owner_touches += ntouched as u64;
        }

        let stripe = spec.tables * spec.dim;
        let mut pooled = scratch::take_f32(users.len() * stripe);
        for_each_chunk_mut(pooled.as_mut_slice(), stripe, |start, window| {
            self.pool_user_into(users[start / stripe], window);
        });
        for &v in pooled.as_slice() {
            cost.checksum = cost.checksum.rotate_left(1) ^ u64::from(v.to_bits());
        }
        enw_trace::record_span_io(
            "fleet/pool_batch",
            (users.len() * stripe) as u64,
            (cost.hits + cost.misses) * (spec.dim * 4) as u64,
            (pooled.as_slice().len() * 4) as u64,
        );
        enw_trace::counter_add("fleet.owner_touches", cost.owner_touches);
        enw_trace::counter_add("fleet.cache_misses", cost.misses);
        cost
    }

    /// Pools all of `user`'s lookups into `out` (one `dim` stripe per
    /// table, fully overwritten): indices are partitioned by shard, each
    /// shard's rows are gathered through its storage unit, and partials
    /// merge in ascending shard order.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != tables * dim`.
    // enw:hot
    pub fn pool_user_into(&self, user: u64, out: &mut [f32]) {
        let spec = &self.spec;
        assert_eq!(out.len(), spec.tables * spec.dim, "pooled stripe width mismatch");
        let mut idx = scratch::take_usize(spec.lookups_per_table);
        let mut sub = scratch::take_usize(spec.lookups_per_table);
        let mut partial = scratch::take_f32(spec.dim);
        for (t, stripe) in out.chunks_mut(spec.dim).enumerate() {
            let idx = idx.as_mut_slice();
            for (k, slot) in idx.iter_mut().enumerate() {
                *slot = self.index_for(user, t, k);
            }
            stripe.fill(0.0);
            for s in 0..spec.shards {
                let sub = sub.as_mut_slice();
                let mut cnt = 0usize;
                for &row in idx.iter() {
                    if shard_of_row(spec, row) == s {
                        // Range shards address their window locally —
                        // the unit an owner node actually holds.
                        sub[cnt] = match spec.scheme {
                            ShardScheme::Range => row - range_start(spec, s),
                            ShardScheme::Hash => row,
                        };
                        cnt += 1;
                    }
                }
                if cnt == 0 {
                    continue;
                }
                let partial = partial.as_mut_slice();
                match spec.scheme {
                    ShardScheme::Range => {
                        let start = range_start(spec, s);
                        let len = range_start(spec, s + 1) - start;
                        self.tables[t]
                            .range_view(start, len)
                            .gather_pool_into(&sub[..cnt], partial);
                    }
                    ShardScheme::Hash => {
                        self.tables[t].gather_pool_into(&sub[..cnt], partial);
                    }
                }
                for (o, p) in stripe.iter_mut().zip(partial.iter()) {
                    *o += p;
                }
            }
        }
    }

    /// Recomputes hot/cold placement over `nodes` and returns what the
    /// move cost. Shards are ranked by epoch accesses (ties on slot id);
    /// the top `hot_fraction` get `replication` owners from the
    /// placement ring, the rest one. Epoch counters are halved so
    /// temperature tracks recent traffic.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn rebalance(&mut self, nodes: &[u32]) -> RebalanceCost {
        assert!(!nodes.is_empty(), "placement needs at least one replica");
        let mut ring = HashRing::new(PLACEMENT_VNODES);
        for &n in nodes {
            ring.add_node(n);
        }
        let slots = self.spec.total_shards();
        let mut rank: Vec<usize> = (0..slots).collect();
        rank.sort_by_key(|&slot| (u64::MAX - self.accesses[slot], slot));
        let hot_count = ((self.spec.hot_fraction * slots as f64).ceil() as usize).min(slots);
        let mut cost = RebalanceCost::default();
        let mut buf = vec![0u32; self.spec.replication.min(nodes.len()).max(1)];
        for (pos, &slot) in rank.iter().enumerate() {
            let is_hot = pos < hot_count;
            let want = if is_hot { buf.len() } else { 1 };
            let got = ring.owners_into(shard_key(slot), &mut buf[..want]);
            let new_owners = &buf[..got];
            if self.owners[slot] != new_owners {
                cost.reassigned_shards += 1;
                // Bytes copied = bytes landing on owners that did not
                // already hold this shard.
                let fresh =
                    new_owners.iter().filter(|n| !self.owners[slot].contains(n)).count() as u64;
                cost.moved_bytes += fresh * self.slot_bytes(slot);
                self.owners[slot].clear();
                self.owners[slot].extend_from_slice(new_owners);
            }
            self.hot[slot] = is_hot;
        }
        for a in &mut self.accesses {
            *a /= 2;
        }
        enw_trace::counter_add("fleet.rebalanced_bytes", cost.moved_bytes);
        cost
    }
}

/// Which shard of its table `row` belongs to.
#[inline]
fn shard_of_row(spec: &ShardSpec, row: usize) -> usize {
    match spec.scheme {
        ShardScheme::Range => row * spec.shards / spec.rows_per_table,
        ShardScheme::Hash => (key_point(row as u64 ^ 0x5ca1_ab1e) % spec.shards as u64) as usize,
    }
}

/// First row of range shard `s` (valid for `s == shards` as the end
/// sentinel).
#[inline]
fn range_start(spec: &ShardSpec, s: usize) -> usize {
    s * spec.rows_per_table / spec.shards
}

/// Placement-ring key of a `(table, shard)` slot, domain-separated from
/// request routing.
#[inline]
fn shard_key(slot: usize) -> u64 {
    (slot as u64) ^ 0xdead_10c5_0000_0000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(scheme: ShardScheme) -> ShardSpec {
        ShardSpec {
            tables: 2,
            rows_per_table: 64,
            dim: 8,
            lookups_per_table: 6,
            shards: 4,
            replication: 2,
            scheme,
            hot_fraction: 0.25,
            cache_rows: 16,
        }
    }

    #[test]
    fn range_shards_partition_the_rows() {
        let s = spec(ShardScheme::Range);
        let mut counts = vec![0usize; s.shards];
        for row in 0..s.rows_per_table {
            counts[shard_of_row(&s, row)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), s.rows_per_table);
        assert!(counts.iter().all(|&c| c == 16), "64 rows over 4 shards: {counts:?}");
    }

    #[test]
    fn sharded_pool_matches_the_unsharded_gather() {
        // Fan-out + shard-order merge must reproduce the plain pooled
        // gather bit for bit: both sum the same rows, and f32 addition
        // here is order-insensitive only because we verify it is.
        for scheme in [ShardScheme::Range, ShardScheme::Hash] {
            let mut store = ShardedStore::new(spec(scheme), 7);
            store.rebalance(&[0, 1, 2]);
            let user = 0xfeed_u64;
            let mut sharded = vec![0.0f32; 2 * 8];
            store.pool_user_into(user, &mut sharded);
            for t in 0..2 {
                let indices: Vec<usize> = (0..6).map(|k| store.index_for(user, t, k)).collect();
                let mut direct = store.tables[t].lookup_pool(&indices);
                // Shard-order merge permutes the additions; compare with
                // a tolerance scaled to the pooled magnitude.
                for (a, b) in sharded[t * 8..(t + 1) * 8].iter().zip(direct.drain(..)) {
                    assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn pool_batch_is_reproducible_and_counts_fanout() {
        let mut a = ShardedStore::new(spec(ShardScheme::Range), 9);
        a.rebalance(&[0, 1, 2, 3]);
        let users = [1u64, 2, 3, 1, 2, 1];
        let ca = a.pool_batch(&users);
        let mut b = ShardedStore::new(spec(ShardScheme::Range), 9);
        b.rebalance(&[0, 1, 2, 3]);
        let cb = b.pool_batch(&users);
        assert_eq!(ca, cb, "same store + batch must name the same cost");
        assert!(ca.owner_touches >= users.len() as u64, "every query touches >= 1 owner");
        assert_eq!(ca.hits + ca.misses, (users.len() * 2 * 6) as u64);
    }

    #[test]
    fn repeated_users_warm_the_caches() {
        let mut store = ShardedStore::new(spec(ShardScheme::Hash), 5);
        store.rebalance(&[0, 1]);
        let cold = store.pool_batch(&[42; 8]);
        assert!(cold.hits > 0, "one user repeated in a batch must hit its own rows");
        let warm = store.pool_batch(&[42; 8]);
        assert!(warm.hits > cold.hits, "second batch should be fully warm");
        assert_eq!(warm.misses, 0, "everything cached after the first batch");
    }

    #[test]
    fn rebalance_replicates_hot_shards_and_prices_moves() {
        let mut store = ShardedStore::new(spec(ShardScheme::Range), 3);
        let first = store.rebalance(&[0, 1, 2]);
        assert!(first.moved_bytes > 0, "initial placement copies every shard once");
        assert_eq!(first.reassigned_shards, store.spec().total_shards() as u64);
        // Heat one user's shards, then rebalance: hot slots replicate.
        for _ in 0..16 {
            store.pool_batch(&[7; 4]);
        }
        store.rebalance(&[0, 1, 2]);
        assert_eq!(store.hot_shards(), 2, "ceil(0.25 * 8) hot slots");
        let replicated = store.replicated_bytes();
        assert!(replicated > store.bytes() / 2, "hot shards must hold extra copies");
        // Same membership + same temperatures: a rebalance is free.
        for _ in 0..16 {
            store.pool_batch(&[7; 4]);
        }
        let again = store.rebalance(&[0, 1, 2]);
        assert_eq!(again.moved_bytes, 0, "stable placement must not thrash");
    }

    #[test]
    fn losing_a_node_moves_only_its_shards() {
        let mut store = ShardedStore::new(spec(ShardScheme::Hash), 11);
        store.rebalance(&[0, 1, 2, 3]);
        let before = store.owners.clone();
        let cost = store.rebalance(&[0, 1, 3]);
        for (slot, owners) in store.owners.iter().enumerate() {
            assert!(!owners.contains(&2), "slot {slot} still owned by the dead node");
            // Consistent placement: slots the dead node never owned keep
            // their owner sets.
            assert!(
                before[slot].contains(&2) || before[slot] == *owners,
                "slot {slot} moved although node 2 never owned it"
            );
        }
        assert!(cost.moved_bytes > 0, "the dead node's shards must move somewhere");
    }

    #[test]
    #[should_panic(expected = "before its first rebalance")]
    fn serving_unplaced_shards_is_rejected() {
        let mut store = ShardedStore::new(spec(ShardScheme::Range), 1);
        store.pool_batch(&[1]);
    }
}
