//! Fleet-level error type, following the workspace's public-API
//! conventions (DESIGN.md): data-shaped failures return `Result`,
//! programming errors panic at the constructor.

use std::fmt;

/// Why a fleet could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The spec declared no lanes.
    NoLanes,
    /// The spec is internally inconsistent (mismatched store/lane
    /// wiring, replica bounds, …).
    InvalidSpec {
        /// What exactly is inconsistent.
        reason: String,
    },
    /// The trace is not sorted by arrival time.
    UnsortedTrace {
        /// Index of the first out-of-order request.
        position: usize,
    },
    /// A request targets a lane the fleet does not have.
    UnknownLane {
        /// Offending request id.
        request: u64,
        /// The lane it asked for.
        lane: usize,
        /// How many lanes exist.
        lanes: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoLanes => write!(f, "a fleet needs at least one lane"),
            FleetError::InvalidSpec { reason } => write!(f, "invalid fleet spec: {reason}"),
            FleetError::UnsortedTrace { position } => {
                write!(f, "trace is not sorted by arrival time (first violation at {position})")
            }
            FleetError::UnknownLane { request, lane, lanes } => {
                write!(f, "request {request} targets lane {lane} but the fleet has {lanes}")
            }
        }
    }
}

impl std::error::Error for FleetError {}
