//! Fleet-level load generation: shaped arrivals carrying routable user
//! keys.
//!
//! The fleet reuses `serve`'s open-loop generator contract (one shape
//! draw, one class pick, one user draw per arrival, all from a single
//! seeded stream) but its requests carry a *user key* instead of a
//! payload: the router hashes it, the sharded store derives the user's
//! embedding lookups from it, and popularity skew in the
//! [`UserSampler`](crate::shape::UserSampler) is what turns traffic
//! shape into shard heat.

use crate::shape::UserSampler;
use enw_numerics::rng::Rng64;
use enw_serve::clock::ns_from_secs;
use enw_serve::LoadShape;

/// One routed request. No payload: everything a replica serves is a
/// deterministic function of `(user, lane)`, which is what keeps the
/// steady-state path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRequest {
    /// Trace-unique id, ascending with arrival order.
    pub id: u64,
    /// Target lane index.
    pub lane: usize,
    /// Routing key and lookup seed.
    pub user: u64,
    /// Arrival instant, virtual ns.
    pub arrival_ns: u64,
    /// Latency budget: completions after this are deadline misses.
    pub deadline_ns: u64,
}

/// One slice of the fleet traffic mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetClass {
    /// Target lane index.
    pub lane: usize,
    /// Relative share of aggregate arrivals.
    pub weight: f64,
    /// Per-request budget: deadline = arrival + this.
    pub deadline_ns: u64,
}

/// Horizon and seed of one fleet trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetLoadSpec {
    /// Trace horizon in virtual ns.
    pub duration_ns: u64,
    /// Seed naming this trace.
    pub seed: u64,
}

/// Generates a fleet arrival trace: inter-arrival gaps from `shape`,
/// lanes picked by class weight, user keys from `users`. Draw order is
/// fixed (gap, class, user), so shapes and mixes compose without
/// perturbing each other's randomness.
///
/// # Panics
///
/// Panics if `classes` is empty, any weight is non-positive, or the
/// shape produces a non-positive or non-finite gap.
pub fn generate_fleet_trace(
    spec: &FleetLoadSpec,
    classes: &[FleetClass],
    shape: &mut dyn LoadShape,
    users: &UserSampler,
) -> Vec<FleetRequest> {
    assert!(!classes.is_empty(), "traffic mix needs at least one class");
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    for c in classes {
        assert!(c.weight > 0.0, "class weights must be positive");
    }
    let mut rng = Rng64::new(spec.seed);
    let mut trace = Vec::new();
    let mut t_s = 0.0f64;
    let mut id = 0u64;
    loop {
        let dt = shape.next_dt_s(t_s, &mut rng);
        assert!(dt > 0.0 && dt.is_finite(), "load shape produced a bad gap: {dt}");
        t_s += dt;
        let arrival_ns = ns_from_secs(t_s);
        if arrival_ns >= spec.duration_ns {
            break;
        }
        let mut pick = rng.uniform() * total_weight;
        let mut class = classes[classes.len() - 1];
        for c in classes {
            if pick < c.weight {
                class = *c;
                break;
            }
            pick -= c.weight;
        }
        let user = users.sample(&mut rng);
        trace.push(FleetRequest {
            id,
            lane: class.lane,
            user,
            arrival_ns,
            deadline_ns: arrival_ns.saturating_add(class.deadline_ns),
        });
        id += 1;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{ShapeKind, UserMix};

    fn classes() -> Vec<FleetClass> {
        vec![
            FleetClass { lane: 0, weight: 3.0, deadline_ns: 2_000_000 },
            FleetClass { lane: 1, weight: 1.0, deadline_ns: 5_000_000 },
        ]
    }

    fn spec(seed: u64) -> FleetLoadSpec {
        FleetLoadSpec { duration_ns: 50_000_000, seed }
    }

    #[test]
    fn traces_are_reproducible_and_sorted() {
        let users = UserSampler::new(UserMix::Zipf { users: 10_000, alpha: 1.0 });
        let mut shape = ShapeKind::Diurnal { base_qps: 20_000.0, swing: 0.5, period_s: 0.01 };
        let a = generate_fleet_trace(&spec(1), &classes(), &mut shape.clone(), &users);
        let b = generate_fleet_trace(&spec(1), &classes(), &mut shape, &users);
        assert_eq!(a, b, "same seed must name the same trace");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn bursts_concentrate_arrivals_in_the_on_phase() {
        let users = UserSampler::new(UserMix::Uniform { users: 1000 });
        let mut shape =
            ShapeKind::Bursty { hi_qps: 50_000.0, lo_qps: 1_000.0, on_s: 0.01, off_s: 0.01 };
        let trace = generate_fleet_trace(&spec(2), &classes(), &mut shape, &users);
        let in_burst =
            trace.iter().filter(|r| (r.arrival_ns as f64 / 1e9).rem_euclid(0.02) < 0.01).count()
                as f64;
        let share = in_burst / trace.len() as f64;
        assert!(share > 0.9, "burst share {share} too low for a 50:1 rate ratio");
    }

    #[test]
    fn lanes_follow_the_class_weights() {
        let users = UserSampler::new(UserMix::Uniform { users: 1000 });
        let mut shape = ShapeKind::Poisson { qps: 20_000.0 };
        let trace = generate_fleet_trace(&spec(3), &classes(), &mut shape, &users);
        let to_zero = trace.iter().filter(|r| r.lane == 0).count() as f64;
        let share = to_zero / trace.len() as f64;
        assert!((0.65..0.85).contains(&share), "lane share {share} far from 0.75");
        for r in &trace {
            let budget = if r.lane == 0 { 2_000_000 } else { 5_000_000 };
            assert_eq!(r.deadline_ns, r.arrival_ns + budget);
        }
    }
}
