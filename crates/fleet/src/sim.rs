//! The fleet simulator: replicated lanes, routed admission, autoscaling
//! and sharded embedding service on one virtual clock.
//!
//! Each lane runs N replica nodes behind its own consistent-hash ring.
//! An arrival hashes its user key onto the ring; the bounded-load pick
//! walks clockwise past full replicas and rejects only when the whole
//! lane is at capacity (admission control). Replicas micro-batch their
//! queues exactly like `serve` stations (size-or-timeout closing,
//! deadline shedding at batch start); a sharded lane additionally pays
//! for its batch's embedding fan-out — distinct shard owners touched and
//! cache misses, priced per event — through the
//! [`ShardedStore`](crate::shard::ShardedStore).
//!
//! At every control epoch the per-lane [`Autoscaler`] reads queue depth,
//! the epoch p99 and drop counts, and may add or retire one replica;
//! membership changes pay a measured rebalance cost (moved probe keys on
//! the ring, moved shard bytes in the store). Event order at one instant
//! is fixed — completions, control, arrivals, batch starts — so a whole
//! fleet run is a pure function of `(spec, trace)`, bit-identical across
//! reruns and `ENW_THREADS` settings.

use std::collections::VecDeque;

use crate::autoscale::{AutoscalePolicy, Autoscaler, EpochSignals, ScaleDecision};
use crate::error::FleetError;
use crate::ring::{key_point, HashRing};
use crate::shard::{ShardSpec, ShardedStore};
use crate::traffic::FleetRequest;
use enw_serve::{BatchPolicy, ServiceModel, StationMetrics, VirtualClock};
use enw_trace::Histogram;

/// Probe keys hashed to price a membership change (`keys_moved` is the
/// count whose primary changed, out of this many).
const REBALANCE_PROBES: u64 = 2048;

/// One lane's static configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpec {
    /// Lane name for reports.
    pub name: String,
    /// Per-batch service pricing on every replica.
    pub service: ServiceModel,
    /// Per-replica batching and queue capacity.
    pub policy: BatchPolicy,
    /// Scaling thresholds; also fixes the lane's control epoch.
    pub autoscale: AutoscalePolicy,
    /// Replicas at t = 0 (must sit inside the autoscale bounds).
    pub initial_replicas: usize,
    /// Virtual points per replica on the routing ring.
    pub vnodes: u32,
    /// Extra service ns per distinct shard owner a batch touches
    /// (sharded lanes; the RPC fan-out cost).
    pub fanout_ns: u64,
    /// Extra service ns per embedding-cache miss (sharded lanes; the
    /// DRAM detour).
    pub miss_ns: u64,
    /// Whether this lane serves through the fleet's sharded store.
    pub sharded: bool,
}

/// The whole cluster's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Lanes, addressed by index from [`FleetRequest::lane`].
    pub lanes: Vec<LaneSpec>,
    /// Embedding-store geometry; present iff exactly one lane is
    /// `sharded`.
    pub store: Option<ShardSpec>,
    /// Seed for the store's tables.
    pub seed: u64,
}

/// One replica node of a lane.
#[derive(Debug)]
struct Replica {
    id: u32,
    queue: VecDeque<FleetRequest>,
    batch: Vec<FleetRequest>,
    done_at: Option<u64>,
    metrics: StationMetrics,
}

impl Replica {
    fn new(lane: &str, id: u32, policy: &BatchPolicy) -> Self {
        Replica {
            id,
            queue: VecDeque::with_capacity(policy.queue_cap),
            batch: Vec::with_capacity(policy.max_batch),
            done_at: None,
            metrics: StationMetrics::new(&format!("{lane}/n{id}")),
        }
    }
}

/// One lane's live state.
#[derive(Debug)]
struct Lane {
    spec: LaneSpec,
    ring: HashRing,
    /// Live replicas, ascending id (ids are never reused).
    replicas: Vec<Replica>,
    next_id: u32,
    scaler: Autoscaler,
    next_epoch_ns: u64,
    epoch_hist: Histogram,
    epoch_served: u64,
    epoch_dropped: u64,
    scale_ups: u64,
    scale_downs: u64,
    keys_moved: u64,
    moved_bytes: u64,
    /// Retired replicas' metrics plus lane-level rejections.
    folded: StationMetrics,
    checksum: u64,
    /// Integral of live replicas over virtual time, node·ns.
    node_ns: u128,
    last_t_ns: u64,
    replicas_peak: usize,
    /// Batch user-key scratch (reused; capacity `max_batch`).
    users: Vec<u64>,
}

impl Lane {
    fn new(spec: LaneSpec) -> Self {
        assert!(spec.initial_replicas > 0, "a lane needs at least one initial replica");
        let scaler = Autoscaler::new(spec.autoscale);
        let ring = HashRing::with_nodes(spec.vnodes, spec.initial_replicas as u32);
        let replicas = (0..spec.initial_replicas as u32)
            .map(|id| Replica::new(&spec.name, id, &spec.policy))
            .collect();
        Lane {
            next_epoch_ns: spec.autoscale.epoch_ns,
            next_id: spec.initial_replicas as u32,
            replicas_peak: spec.initial_replicas,
            folded: StationMetrics::new(&spec.name),
            users: Vec::with_capacity(spec.policy.max_batch),
            spec,
            ring,
            replicas,
            scaler,
            epoch_hist: Histogram::new(),
            epoch_served: 0,
            epoch_dropped: 0,
            scale_ups: 0,
            scale_downs: 0,
            keys_moved: 0,
            moved_bytes: 0,
            checksum: 0,
            node_ns: 0,
            last_t_ns: 0,
        }
    }

    /// Closes the node·time integral up to `t` (call before membership
    /// changes and once at the end of the run).
    fn integrate_to(&mut self, t: u64) {
        self.node_ns += (t - self.last_t_ns) as u128 * self.replicas.len() as u128;
        self.last_t_ns = t;
    }

    fn queued(&self) -> usize {
        self.replicas.iter().map(|r| r.queue.len()).sum()
    }

    fn busy(&self) -> bool {
        self.replicas.iter().any(|r| r.done_at.is_some() || !r.queue.is_empty())
    }
}

/// Everything one run produced for one lane.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// Lane name.
    pub name: String,
    /// Aggregated counters and latencies over every replica that ever
    /// served (retired ones included) plus lane-level rejections.
    pub metrics: StationMetrics,
    /// Replicas live when the run ended.
    pub replicas_final: usize,
    /// Most replicas ever live.
    pub replicas_peak: usize,
    /// Applied scale-up events.
    pub scale_ups: u64,
    /// Applied scale-down events.
    pub scale_downs: u64,
    /// Probe keys (of [`REBALANCE_PROBES`] per event) whose primary
    /// moved across all membership changes — the routing rebalance cost.
    pub keys_moved: u64,
    /// Shard bytes copied for this lane's membership changes (sharded
    /// lanes only).
    pub moved_bytes: u64,
    /// Integral of live replicas over the run, in node·seconds — the
    /// denominator of goodput-per-node.
    pub node_seconds: f64,
    /// Order-sensitive fold of every served output (pooled embedding
    /// bits on sharded lanes, completion identities elsewhere).
    pub checksum: u64,
}

impl LaneReport {
    /// On-time completions per node-second — the paper-facing
    /// deployment-efficiency metric (E19).
    pub fn goodput_per_node_qps(&self) -> f64 {
        if self.node_seconds <= 0.0 {
            0.0
        } else {
            self.metrics.completed as f64 / self.node_seconds
        }
    }
}

/// End-of-run state of the sharded store.
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Total `(table, shard)` slots.
    pub shards: usize,
    /// Slots flagged hot by the last placement pass.
    pub hot_shards: usize,
    /// Aggregate cache hits across shards.
    pub cache_hits: u64,
    /// Aggregate cache misses across shards.
    pub cache_misses: u64,
    /// Bytes pinned across owners, replicas included.
    pub replicated_bytes: u64,
    /// Unreplicated table bytes.
    pub table_bytes: u64,
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// When the last work drained, virtual ns.
    pub duration_ns: u64,
    /// Per-lane results, in lane order.
    pub lanes: Vec<LaneReport>,
    /// Store state, when the fleet had a sharded lane.
    pub shard: Option<ShardReport>,
}

impl FleetReport {
    /// Canonical byte rendering — what the determinism tests and E19's
    /// rerun check fingerprint. Every field that could drift is in here.
    pub fn render(&self) -> String {
        let mut s = format!("fleet duration_ns={}\n", self.duration_ns);
        for l in &self.lanes {
            let p = l.metrics.summary();
            s.push_str(&format!(
                "lane {} replicas={} peak={} ups={} downs={} keys_moved={} moved_bytes={}\n  \
                 arrived={} completed={} misses={} shed={} rejected={} batches={}\n  \
                 p50={} p95={} p99={} max={} node_s={:.6} goodput_per_node={:.3} \
                 checksum={:016x}\n",
                l.name,
                l.replicas_final,
                l.replicas_peak,
                l.scale_ups,
                l.scale_downs,
                l.keys_moved,
                l.moved_bytes,
                l.metrics.arrived,
                l.metrics.completed,
                l.metrics.deadline_misses,
                l.metrics.shed,
                l.metrics.rejected,
                l.metrics.batches,
                p.p50_ns,
                p.p95_ns,
                p.p99_ns,
                p.max_ns,
                l.node_seconds,
                l.goodput_per_node_qps(),
                l.checksum,
            ));
        }
        if let Some(sh) = &self.shard {
            s.push_str(&format!(
                "shard slots={} hot={} hits={} misses={} replicated_bytes={} table_bytes={}\n",
                sh.shards,
                sh.hot_shards,
                sh.cache_hits,
                sh.cache_misses,
                sh.replicated_bytes,
                sh.table_bytes,
            ));
        }
        s
    }
}

/// A built, validated cluster ready to serve traces.
#[derive(Debug)]
pub struct Fleet {
    lanes: Vec<Lane>,
    store: Option<ShardedStore>,
    sharded_lane: Option<usize>,
}

impl Fleet {
    /// Builds the cluster: rings, initial replicas, and (for a sharded
    /// lane) the embedding store placed onto the initial replica set.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::NoLanes`] for an empty spec and
    /// [`FleetError::InvalidSpec`] when replica bounds or store/lane
    /// wiring are inconsistent.
    pub fn try_new(spec: FleetSpec) -> Result<Fleet, FleetError> {
        if spec.lanes.is_empty() {
            return Err(FleetError::NoLanes);
        }
        let sharded: Vec<usize> =
            spec.lanes.iter().enumerate().filter_map(|(i, l)| l.sharded.then_some(i)).collect();
        match (spec.store.is_some(), sharded.len()) {
            (true, 1) | (false, 0) => {}
            (true, n) => {
                return Err(FleetError::InvalidSpec {
                    reason: format!("a store needs exactly one sharded lane, found {n}"),
                })
            }
            (false, _) => {
                return Err(FleetError::InvalidSpec {
                    reason: "sharded lanes need a store spec".to_string(),
                })
            }
        }
        for l in &spec.lanes {
            let a = &l.autoscale;
            if l.initial_replicas < a.min_replicas || l.initial_replicas > a.max_replicas {
                return Err(FleetError::InvalidSpec {
                    reason: format!(
                        "lane {}: {} initial replicas outside [{}, {}]",
                        l.name, l.initial_replicas, a.min_replicas, a.max_replicas
                    ),
                });
            }
        }
        let seed = spec.seed;
        let mut store = spec.store.map(|s| ShardedStore::new(s, seed));
        let lanes: Vec<Lane> = spec.lanes.into_iter().map(Lane::new).collect();
        let sharded_lane = sharded.first().copied();
        if let (Some(st), Some(li)) = (store.as_mut(), sharded_lane) {
            // Initial placement: not charged as rebalance cost.
            st.rebalance(lanes[li].ring.nodes());
        }
        Ok(Fleet { lanes, store, sharded_lane })
    }

    /// Serves `trace` to completion and reports.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnsortedTrace`] or
    /// [`FleetError::UnknownLane`] when the trace does not fit this
    /// fleet; the fleet itself is consumed either way.
    pub fn try_run(mut self, trace: &[FleetRequest]) -> Result<FleetReport, FleetError> {
        for (i, w) in trace.windows(2).enumerate() {
            if let [a, b] = w {
                if a.arrival_ns > b.arrival_ns {
                    return Err(FleetError::UnsortedTrace { position: i + 1 });
                }
            }
        }
        if let Some(r) = trace.iter().find(|r| r.lane >= self.lanes.len()) {
            return Err(FleetError::UnknownLane {
                request: r.id,
                lane: r.lane,
                lanes: self.lanes.len(),
            });
        }

        let mut clock = VirtualClock::new();
        let mut next_arrival = 0usize;
        loop {
            let work_left = next_arrival < trace.len() || self.lanes.iter().any(Lane::busy);
            let mut next: Option<u64> = trace.get(next_arrival).map(|r| r.arrival_ns);
            for lane in &self.lanes {
                for rep in &lane.replicas {
                    if let Some(done) = rep.done_at {
                        next = min_opt(next, done);
                    } else if let Some(front) = rep.queue.front() {
                        next = min_opt(next, front.arrival_ns + lane.spec.policy.max_wait_ns);
                    }
                }
                if work_left {
                    next = min_opt(next, lane.next_epoch_ns);
                }
            }
            let Some(t) = next else { break };
            clock.advance_to(t);
            self.complete(t);
            self.control(t);
            next_arrival = self.admit(trace, next_arrival, t);
            self.start_batches(t);
        }

        let t_end = clock.now_ns();
        for lane in &mut self.lanes {
            lane.integrate_to(t_end);
        }
        let shard = self.store.as_ref().map(|st| ShardReport {
            shards: st.spec().total_shards(),
            hot_shards: st.hot_shards(),
            cache_hits: st.cache_stats().hits,
            cache_misses: st.cache_stats().misses,
            replicated_bytes: st.replicated_bytes(),
            table_bytes: st.bytes(),
        });
        let lanes = self
            .lanes
            .into_iter()
            .map(|lane| {
                let mut metrics = lane.folded;
                for rep in &lane.replicas {
                    absorb(&mut metrics, &rep.metrics);
                }
                LaneReport {
                    name: lane.spec.name,
                    metrics,
                    replicas_final: lane.replicas.len(),
                    replicas_peak: lane.replicas_peak,
                    scale_ups: lane.scale_ups,
                    scale_downs: lane.scale_downs,
                    keys_moved: lane.keys_moved,
                    moved_bytes: lane.moved_bytes,
                    node_seconds: lane.node_ns as f64 / 1e9,
                    checksum: lane.checksum,
                }
            })
            .collect();
        Ok(FleetReport { duration_ns: t_end, lanes, shard })
    }

    /// Finishes every batch due at `t`: on-time requests complete, late
    /// ones count as deadline misses; either way the latency lands in
    /// the replica's and the epoch's histograms.
    fn complete(&mut self, t: u64) {
        for lane in &mut self.lanes {
            for rep in lane.replicas.iter_mut() {
                if rep.done_at != Some(t) {
                    continue;
                }
                rep.done_at = None;
                for r in rep.batch.drain(..) {
                    let latency = t - r.arrival_ns;
                    if t > r.deadline_ns {
                        rep.metrics.deadline_misses += 1;
                    } else {
                        rep.metrics.completed += 1;
                    }
                    rep.metrics.record_latency(latency);
                    lane.epoch_hist.record(latency);
                    lane.epoch_served += 1;
                    if !lane.spec.sharded {
                        // Sharded lanes fold their pooled-output bits at
                        // batch start; plain lanes fold completion
                        // identities here.
                        lane.checksum = lane.checksum.rotate_left(1) ^ key_point(r.user ^ t);
                    }
                }
            }
        }
    }

    /// Runs every lane whose control epoch closes at `t`.
    fn control(&mut self, t: u64) {
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            if t != lane.next_epoch_ns {
                continue;
            }
            let signals = EpochSignals {
                replicas: lane.replicas.len(),
                queued: lane.queued(),
                queue_cap: lane.replicas.len() * lane.spec.policy.queue_cap,
                epoch_p99_ns: lane.epoch_hist.percentile(99.0),
                served: lane.epoch_served,
                dropped: lane.epoch_dropped,
            };
            let sharded = self.sharded_lane == Some(li);
            match lane.scaler.observe(&signals) {
                ScaleDecision::Up => {
                    lane.integrate_to(t);
                    let before = lane.ring.clone();
                    let id = lane.next_id;
                    lane.next_id += 1;
                    lane.ring.add_node(id);
                    lane.replicas.push(Replica::new(&lane.spec.name, id, &lane.spec.policy));
                    lane.replicas_peak = lane.replicas_peak.max(lane.replicas.len());
                    lane.scale_ups += 1;
                    lane.keys_moved += before.moved_keys(&lane.ring, REBALANCE_PROBES);
                    if sharded {
                        if let Some(st) = self.store.as_mut() {
                            lane.moved_bytes += st.rebalance(lane.ring.nodes()).moved_bytes;
                        }
                    }
                    enw_trace::counter_add("fleet.scale_ups", 1);
                }
                ScaleDecision::Down => {
                    // Retire the highest-id replica that is idle with an
                    // empty queue; if none is drainable, drop the
                    // decision (never kill in-flight work).
                    let candidate = lane
                        .replicas
                        .iter()
                        .rposition(|r| r.done_at.is_none() && r.queue.is_empty());
                    if let Some(pos) = candidate {
                        lane.integrate_to(t);
                        let before = lane.ring.clone();
                        let rep = lane.replicas.remove(pos);
                        lane.ring.remove_node(rep.id);
                        absorb(&mut lane.folded, &rep.metrics);
                        lane.scale_downs += 1;
                        lane.keys_moved += before.moved_keys(&lane.ring, REBALANCE_PROBES);
                        if sharded {
                            if let Some(st) = self.store.as_mut() {
                                lane.moved_bytes += st.rebalance(lane.ring.nodes()).moved_bytes;
                            }
                        }
                        enw_trace::counter_add("fleet.scale_downs", 1);
                    }
                }
                ScaleDecision::Hold => {}
            }
            lane.epoch_hist = Histogram::new();
            lane.epoch_served = 0;
            lane.epoch_dropped = 0;
            lane.next_epoch_ns += lane.spec.autoscale.epoch_ns;
        }
    }

    /// Routes every arrival at `t`: bounded-load pick over the lane's
    /// ring, reject when every replica's queue is at capacity.
    fn admit(&mut self, trace: &[FleetRequest], mut i: usize, t: u64) -> usize {
        while let Some(&r) = trace.get(i) {
            if r.arrival_ns != t {
                break;
            }
            i += 1;
            let lane = &mut self.lanes[r.lane];
            let cap = lane.spec.policy.queue_cap;
            let pick = {
                let reps = &lane.replicas;
                lane.ring.pick_bounded(r.user, cap, |id| {
                    match reps.binary_search_by_key(&id, |rep| rep.id) {
                        Ok(p) => reps[p].queue.len(),
                        // Ring and replica set are kept in lockstep;
                        // treat a stranger as full just in case.
                        Err(_) => cap,
                    }
                })
            };
            match pick {
                Some(id) => {
                    if let Ok(p) = lane.replicas.binary_search_by_key(&id, |rep| rep.id) {
                        let rep = &mut lane.replicas[p];
                        rep.metrics.arrived += 1;
                        rep.queue.push_back(r);
                    }
                }
                None => {
                    lane.folded.arrived += 1;
                    lane.folded.rejected += 1;
                    lane.epoch_dropped += 1;
                }
            }
        }
        i
    }

    /// Closes batches on every idle replica whose queue is full enough
    /// or whose oldest request has waited out `max_wait_ns`; requests
    /// already past their deadline are shed instead of served.
    fn start_batches(&mut self, t: u64) {
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            let sharded = self.sharded_lane == Some(li);
            let policy = lane.spec.policy;
            let service = lane.spec.service;
            for rp in 0..lane.replicas.len() {
                loop {
                    let rep = &mut lane.replicas[rp];
                    if rep.done_at.is_some() || rep.queue.is_empty() {
                        break;
                    }
                    let oldest = match rep.queue.front() {
                        Some(front) => front.arrival_ns,
                        None => break,
                    };
                    let close =
                        rep.queue.len() >= policy.max_batch || oldest + policy.max_wait_ns <= t;
                    if !close {
                        break;
                    }
                    rep.batch.clear();
                    let mut shed_now = 0u64;
                    while rep.batch.len() < policy.max_batch {
                        let Some(r) = rep.queue.pop_front() else { break };
                        if r.deadline_ns <= t {
                            rep.metrics.shed += 1;
                            shed_now += 1;
                        } else {
                            rep.batch.push(r);
                        }
                    }
                    lane.epoch_dropped += shed_now;
                    let b = lane.replicas[rp].batch.len();
                    if b == 0 {
                        // Everything pulled was already dead; the queue
                        // may still hold serviceable requests.
                        continue;
                    }
                    let mut ns = service.ns(b);
                    if sharded {
                        lane.users.clear();
                        lane.users.extend(lane.replicas[rp].batch.iter().map(|r| r.user));
                        if let Some(st) = self.store.as_mut() {
                            let cost = st.pool_batch(&lane.users);
                            ns = ns
                                .saturating_add(lane.spec.fanout_ns * cost.owner_touches)
                                .saturating_add(lane.spec.miss_ns * cost.misses);
                            lane.checksum = lane.checksum.rotate_left(1) ^ cost.checksum;
                        }
                    }
                    let rep = &mut lane.replicas[rp];
                    rep.metrics.batches += 1;
                    rep.done_at = Some(t.saturating_add(ns.max(1)));
                }
            }
        }
    }
}

/// Convenience: build and run in one call.
///
/// # Errors
///
/// Propagates [`Fleet::try_new`] and [`Fleet::try_run`] errors.
pub fn try_run(spec: FleetSpec, trace: &[FleetRequest]) -> Result<FleetReport, FleetError> {
    Fleet::try_new(spec)?.try_run(trace)
}

fn min_opt(a: Option<u64>, b: u64) -> Option<u64> {
    Some(match a {
        Some(a) => a.min(b),
        None => b,
    })
}

/// Folds `m`'s counters and latencies into `into`.
fn absorb(into: &mut StationMetrics, m: &StationMetrics) {
    into.arrived += m.arrived;
    into.rejected += m.rejected;
    into.shed += m.shed;
    into.completed += m.completed;
    into.deadline_misses += m.deadline_misses;
    into.batches += m.batches;
    into.degraded_batches += m.degraded_batches;
    into.fallback_switches += m.fallback_switches;
    into.recoveries += m.recoveries;
    into.latencies.merge(&m.latencies);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{ShapeKind, UserMix, UserSampler};
    use crate::shard::ShardScheme;
    use crate::traffic::{generate_fleet_trace, FleetClass, FleetLoadSpec};

    fn scale(min: usize, max: usize) -> AutoscalePolicy {
        AutoscalePolicy {
            min_replicas: min,
            max_replicas: max,
            epoch_ns: 2_000_000,
            p99_slo_ns: 1_500_000,
            up_queue_frac: 0.5,
            down_queue_frac: 0.1,
            calm_epochs_to_downscale: 3,
            cooldown_epochs: 1,
        }
    }

    fn plain_lane(max_replicas: usize) -> LaneSpec {
        LaneSpec {
            name: "mlp".to_string(),
            service: ServiceModel { setup_ns: 30_000, per_item_ns: 10_000 },
            policy: BatchPolicy::new(8, 200_000, 32),
            autoscale: scale(1, max_replicas),
            initial_replicas: 2,
            vnodes: 32,
            fanout_ns: 0,
            miss_ns: 0,
            sharded: false,
        }
    }

    fn sharded_lane(max_replicas: usize) -> LaneSpec {
        LaneSpec {
            name: "recsys".to_string(),
            service: ServiceModel { setup_ns: 40_000, per_item_ns: 12_000 },
            policy: BatchPolicy::new(8, 200_000, 32),
            autoscale: scale(1, max_replicas),
            initial_replicas: 2,
            vnodes: 32,
            fanout_ns: 4_000,
            miss_ns: 1_000,
            sharded: true,
        }
    }

    fn store() -> ShardSpec {
        ShardSpec {
            tables: 2,
            rows_per_table: 512,
            dim: 8,
            lookups_per_table: 4,
            shards: 4,
            replication: 2,
            scheme: ShardScheme::Range,
            hot_fraction: 0.25,
            cache_rows: 64,
        }
    }

    fn spec(max_replicas: usize) -> FleetSpec {
        FleetSpec {
            lanes: vec![plain_lane(max_replicas), sharded_lane(max_replicas)],
            store: Some(store()),
            seed: 19,
        }
    }

    fn trace(qps: f64, horizon_ns: u64, seed: u64) -> Vec<FleetRequest> {
        let users = UserSampler::new(UserMix::Zipf { users: 4096, alpha: 1.0 });
        let classes = vec![
            FleetClass { lane: 0, weight: 1.0, deadline_ns: 3_000_000 },
            FleetClass { lane: 1, weight: 1.0, deadline_ns: 4_000_000 },
        ];
        let mut shape = ShapeKind::Poisson { qps };
        generate_fleet_trace(
            &FleetLoadSpec { duration_ns: horizon_ns, seed },
            &classes,
            &mut shape,
            &users,
        )
    }

    #[test]
    fn light_load_serves_everything_on_time() {
        let report = try_run(spec(4), &trace(20_000.0, 30_000_000, 1)).expect("valid spec");
        for lane in &report.lanes {
            assert!(lane.metrics.arrived > 100, "{} saw no traffic", lane.name);
            assert_eq!(lane.metrics.rejected, 0, "{} rejected under light load", lane.name);
            assert!(
                lane.metrics.completed as f64 >= 0.99 * lane.metrics.arrived as f64,
                "{}: {}/{} on time",
                lane.name,
                lane.metrics.completed,
                lane.metrics.arrived
            );
        }
    }

    #[test]
    fn every_request_is_accounted_for_exactly_once() {
        let t = trace(150_000.0, 30_000_000, 2);
        let report = try_run(spec(3), &t).expect("valid spec");
        let mut total_arrived = 0;
        for lane in &report.lanes {
            let m = &lane.metrics;
            assert_eq!(
                m.arrived,
                m.rejected + m.shed + m.completed + m.deadline_misses,
                "{} loses requests",
                lane.name
            );
            total_arrived += m.arrived;
        }
        assert_eq!(total_arrived as usize, t.len(), "arrivals must cover the whole trace");
    }

    #[test]
    fn overload_triggers_scale_up_and_admission_control() {
        let report = try_run(spec(6), &trace(400_000.0, 30_000_000, 3)).expect("valid spec");
        let ups: u64 = report.lanes.iter().map(|l| l.scale_ups).sum();
        assert!(ups > 0, "sustained overload must grow the fleet");
        let dropped: u64 = report.lanes.iter().map(|l| l.metrics.rejected + l.metrics.shed).sum();
        assert!(dropped > 0, "overload must trip admission control somewhere");
        for lane in &report.lanes {
            assert!(lane.replicas_peak > 2, "{} never grew", lane.name);
            if lane.scale_ups > 0 {
                assert!(lane.keys_moved > 0, "{} rebalanced for free?", lane.name);
            }
        }
    }

    #[test]
    fn quiet_tail_scales_back_down() {
        // Heavy burst then a long quiet tail: ups then downs.
        let mut t = trace(350_000.0, 10_000_000, 4);
        // One straggler far out so epochs keep ticking through the calm.
        let last_id = t.last().map_or(0, |r| r.id + 1);
        t.push(FleetRequest {
            id: last_id,
            lane: 0,
            user: 1,
            arrival_ns: 60_000_000,
            deadline_ns: 63_000_000,
        });
        let report = try_run(spec(6), &t).expect("valid spec");
        let downs: u64 = report.lanes.iter().map(|l| l.scale_downs).sum();
        assert!(downs > 0, "a quiet tail must shrink the fleet again");
    }

    #[test]
    fn sharded_lane_pays_for_fanout() {
        let report = try_run(spec(4), &trace(30_000.0, 20_000_000, 5)).expect("valid spec");
        let shard = report.shard.expect("spec has a store");
        assert!(shard.cache_hits + shard.cache_misses > 0, "store never consulted");
        assert!(shard.replicated_bytes >= shard.table_bytes, "owners must cover every shard");
        let recsys = &report.lanes[1];
        let mlp = &report.lanes[0];
        assert!(recsys.checksum != 0, "sharded lane must fold pooled bits");
        assert!(
            recsys.metrics.summary().p50_ns > mlp.metrics.summary().p50_ns,
            "fan-out and misses must cost the sharded lane latency"
        );
    }

    #[test]
    fn reports_are_bit_identical_across_reruns() {
        let t = trace(120_000.0, 25_000_000, 6);
        let a = try_run(spec(5), &t).expect("valid spec").render();
        let b = try_run(spec(5), &t).expect("valid spec").render();
        assert_eq!(a, b, "same (spec, trace) must name the same report bytes");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(matches!(
            try_run(FleetSpec { lanes: vec![], store: None, seed: 0 }, &[]),
            Err(FleetError::NoLanes)
        ));
        let no_store = FleetSpec { lanes: vec![sharded_lane(4)], store: None, seed: 0 };
        assert!(matches!(try_run(no_store, &[]), Err(FleetError::InvalidSpec { .. })));
        let mut bad_initial = spec(4);
        bad_initial.lanes[0].initial_replicas = 9;
        assert!(matches!(try_run(bad_initial, &[]), Err(FleetError::InvalidSpec { .. })));
    }

    #[test]
    fn bad_traces_are_rejected() {
        let mut t = trace(50_000.0, 5_000_000, 7);
        t.swap(0, 1);
        assert!(matches!(try_run(spec(4), &t), Err(FleetError::UnsortedTrace { position: 1 })));
        let stray = vec![FleetRequest { id: 0, lane: 7, user: 1, arrival_ns: 10, deadline_ns: 20 }];
        assert!(matches!(try_run(spec(4), &stray), Err(FleetError::UnknownLane { lane: 7, .. })));
    }
}
