//! `enw-fleet`: sharded multi-node serving on the deterministic clock.
//!
//! The serving crate (`enw-serve`) models one station; this crate models
//! a *cluster* of them, because the paper's capacity questions — how
//! many nodes a recommendation tier needs, what shard placement does to
//! tail latency, when autoscaling pays for itself — only exist at fleet
//! scale. Everything runs on the same virtual clock discipline as the
//! rest of the workspace: no wall time, no OS randomness, bit-identical
//! reports across reruns and `ENW_THREADS` settings.
//!
//! The pieces, bottom-up:
//!
//! - [`ring`] — a consistent-hash ring with virtual nodes, bounded-load
//!   routing and a probe-based rebalance price. Key movement on replica
//!   churn is ~K/N, and ties break deterministically.
//! - [`shape`] — a load-shape library past Poisson (diurnal, bursty,
//!   flash crowd) plus user-popularity mixes (uniform, Zipf, hot set),
//!   implementing `enw_serve::LoadShape`.
//! - [`shard`] — recsys embedding tables split into range or hash
//!   shards with replication, per-shard caches, and hot/cold placement
//!   driven by observed access counts.
//! - [`autoscale`] — a reactive per-lane controller: queue-depth and
//!   p99 signals in, scale decisions out, with cooldowns and calm
//!   streaks so a diurnal trough cannot flap the fleet.
//! - [`traffic`] — shaped arrival traces carrying routable user keys.
//! - [`sim`] — the event loop tying it together: admission via the
//!   ring, per-replica batching, control epochs, and a byte-exact
//!   [`FleetReport`](sim::FleetReport).
//!
//! Event order at any instant is fixed — completions, then control,
//! then arrivals, then batch starts — which is what makes the reports
//! reproducible. The only parallel section is the numeric gather inside
//! [`ShardedStore::pool_batch`](shard::ShardedStore::pool_batch), which
//! uses fixed chunk boundaries so thread count cannot change results.

pub mod autoscale;
pub mod error;
pub mod presets;
pub mod ring;
pub mod shape;
pub mod shard;
pub mod sim;
pub mod traffic;

pub use autoscale::{AutoscalePolicy, Autoscaler, EpochSignals, ScaleDecision};
pub use error::FleetError;
pub use ring::HashRing;
pub use shape::{ShapeKind, UserMix, UserSampler};
pub use shard::{BatchCost, RebalanceCost, ShardScheme, ShardSpec, ShardedStore};
pub use sim::{try_run, Fleet, FleetReport, FleetSpec, LaneReport, LaneSpec, ShardReport};
pub use traffic::{generate_fleet_trace, FleetClass, FleetLoadSpec, FleetRequest};
