//! The E19 fleet-sweep configuration: lane geometry, store geometry,
//! traffic scenarios and fleet sizes.
//!
//! E19 and the integration tests must agree byte-for-byte on what "the
//! fleet" is, so the whole sweep grid lives here instead of inside the
//! bench binary. Offered load scales with fleet size (`PER_NODE_QPS` ×
//! nodes), so every cell of the size axis runs at the same nominal
//! utilization and the sweep isolates what *shape* and *placement* do
//! to tails, not raw over/under-provisioning.

use crate::autoscale::AutoscalePolicy;
use crate::shape::{ShapeKind, UserMix, UserSampler};
use crate::shard::{ShardScheme, ShardSpec};
use crate::sim::{FleetSpec, LaneSpec};
use crate::traffic::{generate_fleet_trace, FleetClass, FleetLoadSpec, FleetRequest};
use enw_serve::{BatchPolicy, ServiceModel};

/// Nominal aggregate offered load per node, requests/second. Sized so
/// the mean load sits comfortably inside capacity while diurnal peaks,
/// bursts and flash crowds push past it — that is what exercises the
/// autoscaler and admission control.
pub const PER_NODE_QPS: f64 = 40_000.0;

/// User catalogue size shared by every scenario mix.
pub const USERS: u64 = 65_536;

/// One cell of the fleet-size axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetScale {
    /// Initial replicas per lane.
    pub nodes: usize,
    /// Embedding shards per table.
    pub shards: usize,
}

/// The size axis E19 sweeps: small, medium, large.
pub fn scales() -> [FleetScale; 3] {
    [
        FleetScale { nodes: 2, shards: 4 },
        FleetScale { nodes: 4, shards: 8 },
        FleetScale { nodes: 8, shards: 16 },
    ]
}

/// One traffic scenario: an arrival shape paired with the user
/// popularity mix that stresses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Diurnal sinusoid over Zipf-popular users — the paper's Sec. V-B
    /// access model breathing through a simulated day.
    DiurnalZipf,
    /// On/off bursts over uniform users — stresses batching and the
    /// autoscaler's cooldown pacing.
    BurstyUniform,
    /// A flash crowd concentrated on a small hot set — the adversarial
    /// case for the bounded-load router and hot-shard placement.
    FlashHotSet,
}

impl Scenario {
    /// Every scenario, in sweep order.
    pub fn all() -> [Scenario; 3] {
        [Scenario::DiurnalZipf, Scenario::BurstyUniform, Scenario::FlashHotSet]
    }

    /// Stable name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::DiurnalZipf => "diurnal_zipf",
            Scenario::BurstyUniform => "bursty_uniform",
            Scenario::FlashHotSet => "flash_hot_set",
        }
    }

    /// The arrival shape at mean rate `qps`. Bursty keeps the same mean
    /// as the others ((2.5·on + 0.25·off)/(on+off) = 1), so the size
    /// axis stays comparable across scenarios.
    pub fn shape(self, qps: f64) -> ShapeKind {
        match self {
            Scenario::DiurnalZipf => {
                ShapeKind::Diurnal { base_qps: qps, swing: 0.6, period_s: 0.05 }
            }
            Scenario::BurstyUniform => {
                ShapeKind::Bursty { hi_qps: 2.5 * qps, lo_qps: 0.25 * qps, on_s: 0.01, off_s: 0.02 }
            }
            Scenario::FlashHotSet => ShapeKind::FlashCrowd {
                base_qps: 0.8 * qps,
                spike: 4.0,
                start_s: 0.02,
                length_s: 0.01,
            },
        }
    }

    /// The user popularity mix.
    pub fn mix(self) -> UserMix {
        match self {
            Scenario::DiurnalZipf => UserMix::Zipf { users: USERS, alpha: 1.0 },
            Scenario::BurstyUniform => UserMix::Uniform { users: USERS },
            Scenario::FlashHotSet => UserMix::HotSet { users: USERS, hot: 64, hot_share: 0.5 },
        }
    }
}

/// The traffic mix: half digital MLP inference, half sharded recsys,
/// with recsys given the looser deadline its fan-out needs.
pub fn classes() -> [FleetClass; 2] {
    [
        FleetClass { lane: 0, weight: 1.0, deadline_ns: 4_000_000 },
        FleetClass { lane: 1, weight: 1.0, deadline_ns: 6_000_000 },
    ]
}

fn autoscale(nodes: usize, p99_slo_ns: u64) -> AutoscalePolicy {
    AutoscalePolicy {
        min_replicas: 1,
        max_replicas: nodes * 2,
        epoch_ns: 2_000_000,
        p99_slo_ns,
        up_queue_frac: 0.5,
        down_queue_frac: 0.1,
        calm_epochs_to_downscale: 3,
        cooldown_epochs: 1,
    }
}

/// The two-lane fleet at one cell of the size axis: `nodes` initial
/// replicas per lane, the embedding store split `shards` ways.
pub fn fleet_spec(scale: FleetScale) -> FleetSpec {
    FleetSpec {
        lanes: vec![
            LaneSpec {
                name: "mlp".to_string(),
                service: ServiceModel { setup_ns: 40_000, per_item_ns: 15_000 },
                policy: BatchPolicy::new(8, 200_000, 32),
                autoscale: autoscale(scale.nodes, 2_000_000),
                initial_replicas: scale.nodes,
                vnodes: 64,
                fanout_ns: 0,
                miss_ns: 0,
                sharded: false,
            },
            LaneSpec {
                name: "recsys".to_string(),
                service: ServiceModel { setup_ns: 60_000, per_item_ns: 20_000 },
                policy: BatchPolicy::new(16, 250_000, 64),
                autoscale: autoscale(scale.nodes, 3_000_000),
                initial_replicas: scale.nodes,
                vnodes: 64,
                fanout_ns: 2_000,
                miss_ns: 500,
                sharded: true,
            },
        ],
        store: Some(ShardSpec {
            tables: 4,
            rows_per_table: 4096,
            dim: 16,
            lookups_per_table: 4,
            shards: scale.shards,
            replication: 2,
            scheme: ShardScheme::Range,
            hot_fraction: 0.25,
            cache_rows: 256,
        }),
        seed: 19,
    }
}

/// One cell's arrival trace: `scenario`'s shape at `PER_NODE_QPS ×
/// nodes`, over its popularity mix.
pub fn trace(
    scenario: Scenario,
    scale: FleetScale,
    horizon_ns: u64,
    seed: u64,
) -> Vec<FleetRequest> {
    let qps = PER_NODE_QPS * scale.nodes as f64;
    let mut shape = scenario.shape(qps);
    let users = UserSampler::new(scenario.mix());
    generate_fleet_trace(
        &FleetLoadSpec { duration_ns: horizon_ns, seed },
        &classes(),
        &mut shape,
        &users,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::try_run;

    #[test]
    fn every_cell_of_the_grid_builds_and_serves() {
        // A fast pass over the whole grid at a short horizon: specs
        // validate, traces fit, nothing is lost.
        for scale in scales() {
            for scenario in Scenario::all() {
                let t = trace(scenario, scale, 10_000_000, 19);
                assert!(!t.is_empty(), "{} at {:?} generated no traffic", scenario.name(), scale);
                let report = try_run(fleet_spec(scale), &t)
                    .unwrap_or_else(|e| panic!("{} at {scale:?}: {e}", scenario.name()));
                let arrived: u64 = report.lanes.iter().map(|l| l.metrics.arrived).sum();
                assert_eq!(arrived as usize, t.len());
            }
        }
    }

    #[test]
    fn bursty_mean_matches_the_other_scenarios() {
        let qps = 10_000.0;
        for s in Scenario::all() {
            let mean = s.shape(qps).mean_qps();
            assert!(
                (mean - qps).abs() < 0.21 * qps,
                "{}: mean {mean} strays from nominal {qps}",
                s.name()
            );
        }
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<_> = Scenario::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["diurnal_zipf", "bursty_uniform", "flash_hot_set"]);
    }
}
