//! Batch-close and degradation policies.
//!
//! Micro-batching trades throughput against latency (paper Sec. V-B): a
//! batch closes when it is *full* (`max_batch`) or when its oldest
//! request has waited `max_wait_ns` — the classic size-or-timeout rule.
//! For the recommendation lane the size limit is not hand-tuned: it comes
//! from `enw_recsys::serving::try_max_batch_under_sla`, the paper's
//! binary-search for the largest batch whose modeled latency still fits
//! the SLA.

use crate::backend::Backend;
use crate::clock::ns_from_secs;
use crate::error::ServeError;
use enw_recsys::characterize::RooflineMachine;
use enw_recsys::model::RecModelConfig;
use enw_recsys::serving::try_max_batch_under_sla;

/// When a station closes the batch it is accumulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Close as soon as this many requests wait (and the lane is idle).
    pub max_batch: usize,
    /// Close when the oldest waiting request has waited this long.
    pub max_wait_ns: u64,
    /// Admission-queue capacity (≥ `max_batch`).
    pub queue_cap: usize,
}

impl BatchPolicy {
    /// A validated policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `queue_cap < max_batch`.
    pub fn new(max_batch: usize, max_wait_ns: u64, queue_cap: usize) -> Self {
        assert!(max_batch >= 1, "batches must hold at least one request");
        assert!(queue_cap >= max_batch, "queue must hold at least one full batch");
        BatchPolicy { max_batch, max_wait_ns, queue_cap }
    }

    /// Starts building a policy; constraints are checked at
    /// [`BatchPolicyBuilder::build`] instead of panicking here.
    pub fn builder() -> BatchPolicyBuilder {
        BatchPolicyBuilder::default()
    }

    /// SLA-derived policy for a recommendation lane: `max_batch` is the
    /// largest batch whose modeled latency fits `sla_seconds` on
    /// `machine` (capped at `batch_cap`), per the paper's binary search;
    /// the batch timeout is the SLA headroom left after serving at that
    /// size, so a timeout-closed batch still finishes inside the SLA.
    /// Fails with [`ServeError::InfeasibleSla`] when even batch 1 misses
    /// the SLA — such a lane cannot be served compliantly at all.
    pub fn try_for_recsys_sla(
        cfg: &RecModelConfig,
        machine: &RooflineMachine,
        sla_seconds: f64,
        batch_cap: usize,
        queue_cap: usize,
    ) -> Result<Self, ServeError> {
        let b = try_max_batch_under_sla(cfg, machine, sla_seconds, batch_cap as u64)
            .map_err(|_| ServeError::InfeasibleSla { sla_ns: ns_from_secs(sla_seconds) })?;
        let max_batch = (b as usize).max(1);
        let service = enw_recsys::serving::batch_latency(cfg, max_batch as u64, machine);
        let headroom = (sla_seconds - service).max(0.0);
        BatchPolicy::builder()
            .max_batch(max_batch)
            .max_wait_ns(ns_from_secs(headroom))
            .queue_cap(queue_cap.max(max_batch))
            .build()
    }
}

/// Builder for [`BatchPolicy`]: set what differs from the defaults
/// (`max_batch = 1`, `max_wait_ns = 0`, `queue_cap =` one full batch)
/// and let [`build`](BatchPolicyBuilder::build) validate the whole
/// configuration at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchPolicyBuilder {
    max_batch: Option<usize>,
    max_wait_ns: u64,
    queue_cap: Option<usize>,
}

impl BatchPolicyBuilder {
    /// Close as soon as this many requests wait (default 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = Some(n);
        self
    }

    /// Close when the oldest waiting request has waited this long
    /// (default 0: close immediately).
    pub fn max_wait_ns(mut self, ns: u64) -> Self {
        self.max_wait_ns = ns;
        self
    }

    /// Admission-queue capacity (default: `max_batch`).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Validates and produces the policy.
    pub fn build(self) -> Result<BatchPolicy, ServeError> {
        let max_batch = self.max_batch.unwrap_or(1);
        let queue_cap = self.queue_cap.unwrap_or(max_batch);
        if max_batch == 0 {
            return Err(ServeError::InvalidPolicy { reason: "max_batch must be at least 1" });
        }
        if queue_cap < max_batch {
            return Err(ServeError::InvalidPolicy {
                reason: "queue_cap must hold at least one full batch",
            });
        }
        Ok(BatchPolicy { max_batch, max_wait_ns: self.max_wait_ns, queue_cap })
    }
}

/// The degradation ladder (DESIGN.md "Serving runtime"): after
/// `miss_streak` consecutive batches containing a deadline miss, a
/// station steps down from its primary (analog-noisy) backend to its
/// digital fallback; after `recover_streak` consecutive clean batches on
/// the fallback it steps back up. `recover_streak == 0` makes the step
/// down sticky.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Consecutive missed batches before stepping down.
    pub miss_streak: u32,
    /// Consecutive clean batches before stepping back up (0 = never).
    pub recover_streak: u32,
}

impl DegradePolicy {
    /// A validated policy.
    ///
    /// # Panics
    ///
    /// Panics if `miss_streak` is zero (degrading on the first miss is
    /// expressed as `miss_streak = 1`).
    pub fn new(miss_streak: u32, recover_streak: u32) -> Self {
        assert!(miss_streak >= 1, "miss streak must be at least 1");
        DegradePolicy { miss_streak, recover_streak }
    }
}

/// A station's primary backend plus its optional degradation rung.
pub struct StationSpec {
    /// The lane that serves traffic in the healthy state.
    pub primary: Box<dyn Backend>,
    /// Batch-close policy.
    pub policy: BatchPolicy,
    /// Fallback lane + switching rule (the degradation ladder).
    pub degrade: Option<(Box<dyn Backend>, DegradePolicy)>,
}

impl StationSpec {
    /// A station with no fallback.
    pub fn simple(primary: Box<dyn Backend>, policy: BatchPolicy) -> Self {
        StationSpec { primary, policy, degrade: None }
    }

    /// A station that steps down to `fallback` per `ladder`.
    pub fn with_fallback(
        primary: Box<dyn Backend>,
        policy: BatchPolicy,
        fallback: Box<dyn Backend>,
        ladder: DegradePolicy,
    ) -> Self {
        StationSpec { primary, policy, degrade: Some((fallback, ladder)) }
    }

    /// Starts building a station around its primary backend.
    pub fn builder(primary: Box<dyn Backend>) -> StationSpecBuilder {
        StationSpecBuilder { primary, policy: None, degrade: None }
    }
}

/// Builder for [`StationSpec`]: attach the batch policy (required) and
/// optionally a degradation rung, then validate at
/// [`build`](StationSpecBuilder::build).
pub struct StationSpecBuilder {
    primary: Box<dyn Backend>,
    policy: Option<BatchPolicy>,
    degrade: Option<(Box<dyn Backend>, DegradePolicy)>,
}

impl StationSpecBuilder {
    /// Batch-close policy for the lane (required).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Degradation rung: step down to `fallback` per `ladder`.
    pub fn fallback(mut self, fallback: Box<dyn Backend>, ladder: DegradePolicy) -> Self {
        self.degrade = Some((fallback, ladder));
        self
    }

    /// Validates and produces the spec.
    pub fn build(self) -> Result<StationSpec, ServeError> {
        let Some(policy) = self.policy else {
            return Err(ServeError::InvalidPolicy { reason: "a station needs a batch policy" });
        };
        Ok(StationSpec { primary: self.primary, policy, degrade: self.degrade })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_recsys::serving::batch_latency;

    fn cfg() -> RecModelConfig {
        RecModelConfig::compute_bound()
    }

    #[test]
    fn sla_policy_uses_the_paper_binary_search() {
        let c = cfg();
        let m = RooflineMachine::server_cpu();
        let sla = 2.0 * batch_latency(&c, 64, &m);
        let p = BatchPolicy::try_for_recsys_sla(&c, &m, sla, 4096, 8192).expect("sla reachable");
        let direct = try_max_batch_under_sla(&c, &m, sla, 4096).expect("sla reachable");
        assert_eq!(p.max_batch as u64, direct);
        // Timeout-closed batches still fit the SLA: wait + service <= sla.
        let service = ns_from_secs(batch_latency(&c, p.max_batch as u64, &m));
        assert!(p.max_wait_ns + service <= ns_from_secs(sla) + 2, "headroom accounting broken");
    }

    #[test]
    fn unreachable_sla_yields_a_typed_error() {
        let c = cfg();
        let m = RooflineMachine::server_cpu();
        let err = BatchPolicy::try_for_recsys_sla(&c, &m, 1e-15, 1024, 2048);
        assert!(matches!(err, Err(ServeError::InfeasibleSla { .. })), "{err:?}");
    }

    #[test]
    fn queue_cap_is_raised_to_hold_a_batch() {
        let c = cfg();
        let m = RooflineMachine::server_cpu();
        let sla = 4.0 * batch_latency(&c, 256, &m);
        let p = BatchPolicy::try_for_recsys_sla(&c, &m, sla, 4096, 1).expect("sla reachable");
        assert!(p.queue_cap >= p.max_batch);
    }

    #[test]
    #[should_panic(expected = "queue must hold")]
    fn policy_validates_queue_cap() {
        BatchPolicy::new(16, 0, 8);
    }

    #[test]
    #[should_panic(expected = "miss streak")]
    fn ladder_validates_streak() {
        DegradePolicy::new(0, 1);
    }

    #[test]
    fn builder_defaults_and_validation() {
        let p = BatchPolicy::builder().max_batch(4).build().expect("valid");
        assert_eq!((p.max_batch, p.max_wait_ns, p.queue_cap), (4, 0, 4));
        let err = BatchPolicy::builder().max_batch(16).queue_cap(8).build();
        assert!(matches!(err, Err(ServeError::InvalidPolicy { .. })), "{err:?}");
        let err = BatchPolicy::builder().max_batch(0).build();
        assert!(matches!(err, Err(ServeError::InvalidPolicy { .. })), "{err:?}");
        assert_eq!(
            BatchPolicy::builder().max_batch(2).max_wait_ns(7).queue_cap(9).build(),
            Ok(BatchPolicy::new(2, 7, 9))
        );
    }
}
