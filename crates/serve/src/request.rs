//! Requests, responses and the unified payload vocabulary.
//!
//! One runtime serves four heterogeneous workloads, so payloads and
//! outputs are closed enums rather than generics: the scheduler can hold
//! mixed traffic in one trace, and rendering a response stream for the
//! byte-identical determinism check needs a single exhaustive format.

use enw_recsys::trace::SparseQuery;

/// What a request carries to its backend.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A dense feature vector (crossbar / digital MLP input, or a TCAM
    /// few-shot query embedding).
    Features(Vec<f32>),
    /// A DLRM-style recommendation query (dense + multi-hot sparse).
    Rec(SparseQuery),
}

impl Payload {
    /// The dense feature view, when this payload has one.
    pub fn features(&self) -> Option<&[f32]> {
        match self {
            Payload::Features(v) => Some(v),
            Payload::Rec(_) => None,
        }
    }

    /// The recommendation query, when this payload is one.
    pub fn rec_query(&self) -> Option<&SparseQuery> {
        match self {
            Payload::Rec(q) => Some(q),
            Payload::Features(_) => None,
        }
    }
}

/// What a backend computes for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Raw output scores of an MLP forward pass.
    Scores(Vec<f32>),
    /// Retrieved class label from a TCAM memory search (`None` when the
    /// memory is empty).
    Label(Option<usize>),
    /// Predicted click-through rate.
    Ctr(f32),
}

/// One admitted unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Trace-unique id (also the tie-break key for rendering).
    pub id: u64,
    /// Index of the station (backend lane) this request targets.
    pub station: usize,
    /// Input data.
    pub payload: Payload,
    /// Arrival instant on the virtual clock.
    pub arrival_ns: u64,
    /// Absolute deadline; the response is late past this instant.
    pub deadline_ns: u64,
}

/// How a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served within its deadline.
    Completed,
    /// Served, but past its deadline (counts toward degradation).
    DeadlineMiss,
    /// Dropped at batch close because its deadline had already passed.
    Shed,
    /// Refused at admission: the station queue was full (backpressure).
    Rejected,
}

impl Outcome {
    /// Stable short name used in rendered response streams.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Completed => "ok",
            Outcome::DeadlineMiss => "late",
            Outcome::Shed => "shed",
            Outcome::Rejected => "rejected",
        }
    }
}

/// The terminal record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Id of the originating request.
    pub id: u64,
    /// Station that owned the request.
    pub station: usize,
    /// How the request left the system.
    pub outcome: Outcome,
    /// Backend output (present only for served requests).
    pub output: Option<Output>,
    /// Arrival instant of the originating request.
    pub arrival_ns: u64,
    /// Instant the response was produced (equals `arrival_ns` for
    /// rejections, the batch-close instant for sheds).
    pub finish_ns: u64,
}

impl Response {
    /// Served latency; zero for requests that never ran.
    pub fn latency_ns(&self) -> u64 {
        self.finish_ns.saturating_sub(self.arrival_ns)
    }
}

/// Renders a response stream to a canonical byte-exact text form: floats
/// are printed as IEEE-754 bit patterns, so two streams compare equal iff
/// every numeric output is bit-identical.
pub fn render_responses(responses: &[Response]) -> String {
    let mut s = String::new();
    for r in responses {
        s.push_str(&format!(
            "id={} st={} {} t={} lat={}",
            r.id,
            r.station,
            r.outcome.tag(),
            r.finish_ns,
            r.latency_ns()
        ));
        match &r.output {
            None => s.push_str(" out=-"),
            Some(Output::Scores(v)) => {
                s.push_str(" out=scores:");
                for x in v {
                    s.push_str(&format!("{:08x},", x.to_bits()));
                }
            }
            Some(Output::Label(l)) => match l {
                Some(c) => s.push_str(&format!(" out=label:{c}")),
                None => s.push_str(" out=label:-"),
            },
            Some(Output::Ctr(p)) => s.push_str(&format!(" out=ctr:{:08x}", p.to_bits())),
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_views_are_exclusive() {
        let f = Payload::Features(vec![1.0, 2.0]);
        assert!(f.features().is_some());
        assert!(f.rec_query().is_none());
        let q = Payload::Rec(SparseQuery { dense: vec![0.5], sparse: vec![vec![1]] });
        assert!(q.features().is_none());
        assert!(q.rec_query().is_some());
    }

    #[test]
    fn latency_is_zero_for_unserved() {
        let r = Response {
            id: 1,
            station: 0,
            outcome: Outcome::Rejected,
            output: None,
            arrival_ns: 50,
            finish_ns: 50,
        };
        assert_eq!(r.latency_ns(), 0);
    }

    #[test]
    fn rendering_is_bit_exact() {
        let mk = |x: f32| Response {
            id: 7,
            station: 2,
            outcome: Outcome::Completed,
            output: Some(Output::Ctr(x)),
            arrival_ns: 10,
            finish_ns: 35,
        };
        let a = render_responses(&[mk(0.25)]);
        let b = render_responses(&[mk(0.25)]);
        assert_eq!(a, b);
        let c = render_responses(&[mk(0.25 + 1e-7)]);
        assert_ne!(a, c, "different bits must render differently");
        assert!(a.contains("id=7 st=2 ok t=35 lat=25"));
    }

    #[test]
    fn outcome_tags_are_stable() {
        assert_eq!(Outcome::Completed.tag(), "ok");
        assert_eq!(Outcome::DeadlineMiss.tag(), "late");
        assert_eq!(Outcome::Shed.tag(), "shed");
        assert_eq!(Outcome::Rejected.tag(), "rejected");
    }
}
