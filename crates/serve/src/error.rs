//! Typed failures for the serving runtime.
//!
//! Everything that used to be a panic message, a `bool`, or an ad-hoc
//! admission sentinel on the public surface now has a variant here, so
//! callers can branch on the cause and error chains render through
//! `std::error::Error`. Constructors that take already-validated inputs
//! (builders' `build()`) return `Result<_, ServeError>` too.

use std::error::Error;
use std::fmt;

/// Why a serving-runtime operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A server was built with zero stations.
    NoStations,
    /// A trace was not sorted by arrival time (index of the first
    /// out-of-order request).
    UnsortedTrace {
        /// Index into the trace of the offending request.
        position: usize,
    },
    /// A request named a station index the server does not have.
    UnknownStation {
        /// Offending request id.
        request_id: u64,
        /// Station index the request asked for.
        station: usize,
        /// Number of stations the server actually has.
        stations: usize,
    },
    /// An admission was refused because the station queue was full.
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
    /// A batch policy or station spec failed validation.
    InvalidPolicy {
        /// Which constraint was violated.
        reason: &'static str,
    },
    /// No feasible configuration exists for the requested SLA.
    InfeasibleSla {
        /// The SLA bound that could not be met (ns).
        sla_ns: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoStations => write!(f, "a server needs at least one station"),
            ServeError::UnsortedTrace { position } => {
                write!(
                    f,
                    "trace is not sorted by arrival time (first violation at index {position})"
                )
            }
            ServeError::UnknownStation { request_id, station, stations } => write!(
                f,
                "request {request_id} targets station {station} but only {stations} exist"
            ),
            ServeError::QueueFull { capacity } => {
                write!(f, "station queue is full (capacity {capacity})")
            }
            ServeError::InvalidPolicy { reason } => write!(f, "invalid policy: {reason}"),
            ServeError::InfeasibleSla { sla_ns } => {
                write!(f, "no feasible configuration under an SLA of {sla_ns} ns")
            }
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::NoStations, "at least one station"),
            (ServeError::UnsortedTrace { position: 3 }, "index 3"),
            (ServeError::UnknownStation { request_id: 9, station: 4, stations: 2 }, "station 4"),
            (ServeError::QueueFull { capacity: 8 }, "capacity 8"),
            (ServeError::InvalidPolicy { reason: "max_batch must be > 0" }, "max_batch"),
            (ServeError::InfeasibleSla { sla_ns: 100 }, "100 ns"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn Error> = Box::new(ServeError::NoStations);
        assert!(err.source().is_none());
    }
}
