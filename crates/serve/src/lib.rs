//! `enw-serve` — the unified multi-workload serving runtime.
//!
//! The paper's recommendation section (Sec. V) frames inference as a
//! latency-bounded *serving* problem: batch size trades throughput
//! against SLA, and operators respond differently depending on whether
//! they are compute- or memory-bound. This crate lifts that framing from
//! the recsys crate to **all four** paper workloads, fronting them with
//! one [`backend::Backend`] trait:
//!
//! * analog crossbar MLP inference (Sec. II) — [`backends::CrossbarBackend`]
//! * exact digital MLP inference (baseline / fallback) — [`backends::DigitalBackend`]
//! * TCAM few-shot lookup (Sec. III–IV) — [`backends::TcamBackend`]
//! * DLRM-style CTR prediction (Sec. V) — [`backends::RecsysBackend`]
//!
//! On top sits a deterministic micro-batching [`scheduler::Server`]:
//! bounded per-station queues with explicit rejection (backpressure),
//! size-or-timeout batch closing (the recsys lane's size limit comes
//! from the paper's `try_max_batch_under_sla` binary search), per-request
//! deadlines with timeout shedding, and a degradation ladder that steps
//! from the analog-noisy lane down to its digital fallback after
//! repeated deadline misses (and back after clean batches).
//!
//! # Determinism contract
//!
//! The whole runtime runs on a [`clock::VirtualClock`]; no library code
//! here may read `Instant`/`SystemTime` (enforced by `enw-analyze` rule
//! ENW-D002). Service times come from analytic hardware models, batch
//! composition from fixed FIFO/size/timeout rules, numeric outputs from
//! `enw-parallel`'s fixed-chunk kernels, and load from a seeded
//! generator — so one `(seed, spec)` pair names exactly one response
//! stream, byte-identical across runs, hosts, and `ENW_THREADS`
//! settings, including every p50/p95/p99 and shed-rate figure.
//! `exp16_serving_slo` in `enw-bench` sweeps QPS levels through this
//! runtime and emits `BENCH_serving.json`.

pub mod backend;
pub mod backends;
pub mod clock;
pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod policy;
pub mod presets;
pub mod queue;
pub mod request;
pub mod scheduler;

pub use backend::{Backend, ServiceModel};
pub use clock::VirtualClock;
pub use error::ServeError;
pub use loadgen::{
    generate_trace, generate_trace_shaped, LoadShape, LoadSpec, Poisson, TrafficClass,
};
pub use metrics::{LatencySummary, StationMetrics};
pub use policy::{BatchPolicy, DegradePolicy, StationSpec};
pub use request::{render_responses, Outcome, Output, Payload, Request, Response};
pub use scheduler::{RunReport, Server};
