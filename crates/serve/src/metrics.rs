//! Per-station serving metrics on the shared `enw-trace` histogram.
//!
//! Earlier revisions kept every served latency in a `Vec<u64>` and
//! computed nearest-rank percentiles over the sorted list. The counters
//! survive unchanged, but latencies now accumulate into
//! [`enw_trace::Histogram`] — the same fixed-bucket type the rest of the
//! workspace records into — so a station's distribution merges with any
//! other deterministically and in O(buckets) memory regardless of run
//! length. Bucket boundaries are a pure function of the value, so the
//! reported p50/p95/p99 remain bit-identical across runs, hosts, and
//! `ENW_THREADS` settings; values below 64 ns are exact and larger ones
//! quantize to ≤ ~3% (min/max stay exact).

use enw_trace::Histogram;

/// Summary statistics of one lane's served latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Served responses (on-time + late).
    pub count: u64,
    /// Median latency (ns, bucket-quantized).
    pub p50_ns: u64,
    /// 95th percentile (ns, bucket-quantized).
    pub p95_ns: u64,
    /// 99th percentile (ns, bucket-quantized).
    pub p99_ns: u64,
    /// Worst served latency (ns, exact).
    pub max_ns: u64,
}

/// Counters and latencies for one station over a run.
#[derive(Debug, Clone, Default)]
pub struct StationMetrics {
    /// Lane name (primary backend's).
    pub name: String,
    /// Requests that arrived for this station.
    pub arrived: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests dropped at batch close (deadline already passed).
    pub shed: u64,
    /// Requests served within their deadline.
    pub completed: u64,
    /// Requests served past their deadline.
    pub deadline_misses: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches executed on the fallback backend.
    pub degraded_batches: u64,
    /// Times the ladder stepped down to the fallback.
    pub fallback_switches: u64,
    /// Times the ladder stepped back up to the primary.
    pub recoveries: u64,
    /// Distribution of served latencies (ns).
    pub latencies: Histogram,
}

impl StationMetrics {
    /// Fresh metrics for a named lane.
    pub fn new(name: &str) -> Self {
        StationMetrics { name: name.to_string(), ..Default::default() }
    }

    /// Records one served latency (on-time or late).
    pub fn record_latency(&mut self, latency_ns: u64) {
        self.latencies.record(latency_ns);
    }

    /// Served requests (on-time + late).
    pub fn served(&self) -> u64 {
        self.completed + self.deadline_misses
    }

    /// Percentile summary of served latencies.
    pub fn summary(&self) -> LatencySummary {
        if self.latencies.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.latencies.count(),
            p50_ns: self.latencies.percentile(50.0),
            p95_ns: self.latencies.percentile(95.0),
            p99_ns: self.latencies.percentile(99.0),
            max_ns: self.latencies.max(),
        }
    }

    /// Fraction of arrived requests dropped at batch close.
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed, self.arrived)
    }

    /// Fraction of arrived requests refused at admission.
    pub fn reject_rate(&self) -> f64 {
        ratio(self.rejected, self.arrived)
    }

    /// Fraction of served requests that finished late.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.deadline_misses, self.served())
    }

    /// Served goodput (on-time responses per second of virtual time).
    pub fn goodput_qps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (duration_ns as f64 / 1e9)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_rates() {
        let mut m = StationMetrics::new("lane");
        m.arrived = 10;
        m.rejected = 2;
        m.shed = 1;
        m.completed = 6;
        m.deadline_misses = 1;
        for v in [30u64, 10, 20, 40, 50, 60, 70] {
            m.record_latency(v);
        }
        let s = m.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.p50_ns, 40, "sub-64 latencies are exact");
        assert_eq!(s.max_ns, 70, "max is tracked exactly");
        assert!((m.shed_rate() - 0.1).abs() < 1e-12);
        assert!((m.reject_rate() - 0.2).abs() < 1e-12);
        assert!((m.miss_rate() - 1.0 / 7.0).abs() < 1e-12);
        assert!((m.goodput_qps(1_000_000_000) - 6.0).abs() < 1e-12);
        assert_eq!(m.goodput_qps(0), 0.0);
    }

    #[test]
    fn large_latency_percentiles_are_bounded_quantizations() {
        let mut m = StationMetrics::new("lane");
        for i in 0..1000u64 {
            m.record_latency(1_000_000 + i * 1_000);
        }
        let s = m.summary();
        let exact_p95 = 1_000_000 + 949 * 1_000;
        assert!(s.p95_ns >= exact_p95, "nearest-rank bucket upper bound cannot undershoot");
        assert!((s.p95_ns - exact_p95) as f64 / exact_p95 as f64 <= 0.04, "p95 {}", s.p95_ns);
        assert_eq!(s.max_ns, 1_999_000);
    }

    #[test]
    fn empty_metrics_are_all_zero() {
        let m = StationMetrics::new("idle");
        assert_eq!(m.summary(), LatencySummary::default());
        assert_eq!(m.shed_rate(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
    }

    #[test]
    fn merged_station_histograms_equal_sequential() {
        let mut a = StationMetrics::new("a");
        let mut b = StationMetrics::new("b");
        let mut whole = StationMetrics::new("w");
        for v in 0..200u64 {
            let v = v * 977;
            whole.record_latency(v);
            if v % 2 == 0 {
                a.record_latency(v)
            } else {
                b.record_latency(v)
            }
        }
        a.latencies.merge(&b.latencies);
        assert_eq!(a.latencies, whole.latencies);
    }
}
