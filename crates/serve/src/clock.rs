//! Virtual time: the only clock the serving runtime knows about.
//!
//! Nothing in `enw-serve` reads wall-clock time (`enw-analyze` rule
//! ENW-D002 denies `Instant`/`SystemTime` here). Instead the scheduler
//! owns a [`VirtualClock`] — a monotone nanosecond counter advanced by
//! the event loop — and every latency, deadline and service time is a
//! `u64` nanosecond count derived from analytic hardware models. Two runs
//! with the same trace therefore see *exactly* the same timestamps, which
//! is what makes response streams and tail percentiles bit-reproducible.
//! Real monotonic timing exists only in the `enw-bench` experiment
//! binaries, which time the simulator itself, never the simulation.

/// Monotone simulated time in nanoseconds, starting at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        VirtualClock { now_ns: 0 }
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Jumps to an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `t_ns` is in the past — the event loop must only move
    /// forward; a backwards jump means event ordering is broken.
    pub fn advance_to(&mut self, t_ns: u64) {
        assert!(t_ns >= self.now_ns, "virtual clock moved backwards: {} -> {t_ns}", self.now_ns);
        self.now_ns = t_ns;
    }

    /// Advances by a relative amount (saturating at `u64::MAX`).
    pub fn advance(&mut self, dt_ns: u64) {
        self.now_ns = self.now_ns.saturating_add(dt_ns);
    }
}

/// Converts non-negative seconds to nanoseconds, rounding up so that a
/// positive duration never becomes zero (the scheduler relies on service
/// times being at least 1 ns to keep the event loop monotone).
pub fn ns_from_secs(seconds: f64) -> u64 {
    if seconds <= 0.0 || !seconds.is_finite() {
        return if seconds.is_finite() { 0 } else { u64::MAX };
    }
    let ns = (seconds * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        (ns as u64).max(1)
    }
}

/// Formats nanoseconds as engineering-friendly milliseconds.
pub fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_to(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.advance_to(15); // same instant is fine
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    #[should_panic(expected = "virtual clock moved backwards")]
    fn clock_rejects_backwards_jump() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(9);
    }

    #[test]
    fn ns_from_secs_rounds_up_and_saturates() {
        assert_eq!(ns_from_secs(0.0), 0);
        assert_eq!(ns_from_secs(-1.0), 0);
        assert_eq!(ns_from_secs(1e-12), 1, "positive durations never truncate to zero");
        assert_eq!(ns_from_secs(1.5e-9), 2);
        assert_eq!(ns_from_secs(2.0), 2_000_000_000);
        assert_eq!(ns_from_secs(f64::INFINITY), u64::MAX);
        assert_eq!(ns_from_secs(1e30), u64::MAX);
    }

    #[test]
    fn ms_converts() {
        assert!((ms(2_500_000) - 2.5).abs() < 1e-12);
    }
}
