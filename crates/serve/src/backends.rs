//! The four workload lanes behind the [`Backend`] trait.
//!
//! | lane | paper section | compute | service-time model |
//! |---|---|---|---|
//! | [`DigitalBackend`] | Sec. II (baseline) | exact FP32 MLP forward | affine: provisioned digital logic |
//! | [`CrossbarBackend`] | Sec. II | MLP forward on drifted PCM weights | affine: DAC stream + integration + ADC readout per sample |
//! | [`TcamBackend`] | Sec. III–IV | LSH nearest-Hamming TCAM lookup | affine: per-item cost derived from the `enw-cam` hardware cost model |
//! | [`RecsysBackend`] | Sec. V | DLRM-style CTR prediction | roofline: `enw-recsys` batched operator latencies |
//!
//! Affine constants are representative single-lane figures chosen so the
//! analog crossbar lane is the *slow tier* (its per-sample DAC/ADC
//! conversions and drift-compensation rechecks dominate at serving batch
//! sizes) and the digital lane is the *provisioned fallback tier* — the
//! degradation ladder of DESIGN.md falls back from analog-noisy to
//! digital when deadlines are repeatedly missed.

use crate::backend::{Backend, ServiceModel};
use crate::clock::ns_from_secs;
use crate::request::{Output, Payload, Request};
use enw_cam::array::TcamConfig;
use enw_cam::cells::CellTech;
use enw_cam::lsh_memory::TcamKeyValueMemory;
use enw_crossbar::devices::pcm::PcmConfig;
use enw_crossbar::inference::PcmLayer;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;
use enw_parallel as parallel;
use enw_recsys::characterize::RooflineMachine;
use enw_recsys::model::{RecModel, RecModelConfig};
use enw_recsys::serving::batch_latency;
use enw_recsys::trace::TraceGenerator;

/// Requests per parallel chunk when an MLP lane fans a batch out.
const PAR_CHUNK: usize = 8;

/// Random post-training-like MLP weights for `dims` (values in
/// `[-0.5, 0.5]`, inside the PCM programmable range), shared by the
/// digital lane and the crossbar lane so both serve the *same* model.
pub fn ideal_layers(dims: &[usize], rng: &mut Rng64) -> Vec<Matrix> {
    dims.windows(2).map(|w| Matrix::random_uniform(w[1], w[0], -0.5, 0.5, rng)).collect()
}

/// Forward pass through `layers` with ReLU between hidden layers (linear
/// output). Purely `&self` so batches can fan out across workers. The
/// per-layer activations ping-pong through thread-local scratch, so the
/// only allocation is the returned score vector itself.
fn mlp_forward(layers: &[Matrix], x: &[f32]) -> Vec<f32> {
    let widest = layers.iter().map(Matrix::rows).max().unwrap_or(1).max(x.len());
    let mut cur = parallel::scratch::take_f32(widest);
    let mut nxt = parallel::scratch::take_f32(widest);
    cur[..x.len()].copy_from_slice(x);
    let mut len = x.len();
    let last = layers.len().saturating_sub(1);
    for (i, w) in layers.iter().enumerate() {
        w.matvec_into(&cur[..len], &mut nxt[..w.rows()]);
        len = w.rows();
        if i < last {
            for v in nxt[..len].iter_mut() {
                *v = v.max(0.0);
            }
        }
        std::mem::swap(&mut cur, &mut nxt);
    }
    cur[..len].to_vec()
}

/// Serves a batch of feature-vector requests through shared read-only
/// layers into a caller-owned output buffer (`out` is cleared, then
/// refilled): fixed 8-request chunks fan out via `enw-parallel`, each
/// chunk computed exactly as the serial loop would, so outputs are
/// bit-identical at any thread count.
fn mlp_serve_into(layers: &[Matrix], in_dim: usize, batch: &[Request], out: &mut Vec<Output>) {
    out.clear();
    for r in batch {
        let f = r.payload.features();
        assert!(
            f.is_some(),
            "MLP lane got a non-feature payload: route requests to the station that generated them"
        );
        let w = f.map_or(0, <[f32]>::len);
        assert!(w == in_dim, "feature width {w} does not match lane input {in_dim}");
    }
    let feature = |i: usize| batch[i].payload.features().unwrap_or(&[]);
    // Per-request work = the lane's MLP multiply–accumulates, so the
    // shared `plan_chunks` gate sees the real batch cost.
    let per_req: usize = layers.iter().map(|w| w.rows() * w.cols()).sum();
    if parallel::plan_chunks(batch.len(), per_req).is_none() {
        out.extend((0..batch.len()).map(|i| Output::Scores(mlp_forward(layers, feature(i)))));
        return;
    }
    out.extend(
        parallel::map_chunks(batch.len(), PAR_CHUNK, |r| {
            r.map(|i| Output::Scores(mlp_forward(layers, feature(i)))).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten(),
    );
}

/// Exact FP32 MLP inference on provisioned digital logic — the reference
/// lane, and the fallback tier of the degradation ladder.
#[derive(Debug, Clone)]
pub struct DigitalBackend {
    name: String,
    layers: Vec<Matrix>,
    model: ServiceModel,
}

impl DigitalBackend {
    /// Representative single-lane timing: 20 µs batch staging, 8 µs per
    /// request (weight-stationary quantized MLP).
    pub const DEFAULT_MODEL: ServiceModel = ServiceModel { setup_ns: 20_000, per_item_ns: 8_000 };

    /// A lane over pre-built layers (use [`ideal_layers`]).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_layers(name: &str, layers: Vec<Matrix>, model: ServiceModel) -> Self {
        assert!(!layers.is_empty(), "an MLP lane needs at least one layer");
        DigitalBackend { name: name.to_string(), layers, model }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Matrix::cols)
    }
}

impl Backend for DigitalBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ns(&self, batch: usize) -> u64 {
        self.model.ns(batch)
    }

    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }

    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        mlp_serve_into(&self.layers, self.in_dim(), batch, out);
    }

    fn make_payload(&self, rng: &mut Rng64) -> Payload {
        let d = self.in_dim();
        Payload::Features((0..d).map(|_| rng.range(-1.0, 1.0) as f32).collect())
    }
}

/// Analog MLP inference on PCM crossbars (paper Sec. II): the same ideal
/// weights write-verify programmed onto differential pairs, read back at
/// deployment time `t_read` — so programming noise and conductance drift
/// are baked into every answer this lane returns.
#[derive(Debug, Clone)]
pub struct CrossbarBackend {
    name: String,
    /// Effective (noisy, drifted) weights at deployment time.
    layers: Vec<Matrix>,
    model: ServiceModel,
}

impl CrossbarBackend {
    /// Representative single-lane timing: 60 µs batch setup (DAC
    /// programming + integration windows), 25 µs per request (per-sample
    /// input streaming and ADC readout, including the periodic
    /// drift-compensation recheck). Deliberately the slow tier.
    pub const DEFAULT_MODEL: ServiceModel = ServiceModel { setup_ns: 60_000, per_item_ns: 25_000 };

    /// Programs `ideal` layer weights onto PCM pairs and snapshots the
    /// effective weights at deployment time `t_read` (seconds since
    /// programming).
    ///
    /// # Panics
    ///
    /// Panics if `ideal` is empty.
    pub fn program(
        name: &str,
        ideal: &[Matrix],
        cfg: PcmConfig,
        t_read: f64,
        model: ServiceModel,
        rng: &mut Rng64,
    ) -> Self {
        assert!(!ideal.is_empty(), "an MLP lane needs at least one layer");
        let layers = ideal
            .iter()
            .map(|w| {
                let mut layer = PcmLayer::program(w, cfg, rng);
                layer.compensate_drift(t_read);
                layer.weights_at(t_read)
            })
            .collect();
        CrossbarBackend { name: name.to_string(), layers, model }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Matrix::cols)
    }
}

impl Backend for CrossbarBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ns(&self, batch: usize) -> u64 {
        self.model.ns(batch)
    }

    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }

    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        mlp_serve_into(&self.layers, self.in_dim(), batch, out);
    }

    fn make_payload(&self, rng: &mut Rng64) -> Payload {
        let d = self.in_dim();
        Payload::Features((0..d).map(|_| rng.range(-1.0, 1.0) as f32).collect())
    }
}

/// TCAM few-shot lookup (paper Sec. III–IV): queries hash to LSH
/// signatures and retrieve the nearest stored support label in one
/// parallel memory search. The search itself is one physical array
/// operation, so batches execute serially — the hardware *is* the
/// parallelism.
#[derive(Debug)]
pub struct TcamBackend {
    name: String,
    mem: TcamKeyValueMemory,
    dim: usize,
    model: ServiceModel,
}

/// Geometry of a TCAM lane's physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamGeometry {
    /// Stored-word capacity (must cover the support set).
    pub capacity: usize,
    /// Query embedding width.
    pub dim: usize,
    /// LSH hyperplanes (signature bits).
    pub planes: usize,
}

impl TcamBackend {
    /// Per-request digital wrapper overhead (query embedding transfer +
    /// encoder) around the raw TCAM search, and the per-batch staging
    /// cost. The search latency itself comes from the `enw-cam` cost
    /// model at construction.
    const IO_PER_ITEM_NS: u64 = 2_000;
    const SETUP_NS: u64 = 10_000;

    /// Builds the lane and stores `support` (embedding, label) pairs.
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty or `geometry.capacity < support.len()`.
    pub fn new(
        name: &str,
        geometry: TcamGeometry,
        tech: CellTech,
        cfg: TcamConfig,
        support: &[(Vec<f32>, usize)],
        rng: &mut Rng64,
    ) -> Self {
        assert!(!support.is_empty(), "a TCAM lane needs stored support examples");
        assert!(geometry.capacity >= support.len(), "TCAM capacity below support set size");
        let mut mem = TcamKeyValueMemory::new(
            geometry.capacity,
            geometry.dim,
            geometry.planes,
            tech,
            cfg,
            rng,
        );
        for (key, label) in support {
            mem.update(key, *label);
        }
        // Price one probe search with the populated memory: the cam cost
        // model scales search latency with stored words, so this is the
        // steady-state per-request device time.
        let probe: Vec<f32> =
            (0..geometry.dim).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let (_, cost) = mem.retrieve(&probe);
        let search_ns = cost.latency_ns.ceil().max(1.0) as u64;
        let model = ServiceModel {
            setup_ns: Self::SETUP_NS,
            per_item_ns: search_ns.saturating_add(Self::IO_PER_ITEM_NS),
        };
        TcamBackend { name: name.to_string(), mem, dim: geometry.dim, model }
    }

    /// Query embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Backend for TcamBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ns(&self, batch: usize) -> u64 {
        self.model.ns(batch)
    }

    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }

    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        out.clear();
        for r in batch {
            let q = r.payload.features();
            assert!(q.is_some(), "TCAM lane got a non-feature payload");
            let (hit, _cost) = self.mem.retrieve(q.unwrap_or(&[]));
            out.push(Output::Label(hit.map(|h| h.value)));
        }
    }

    fn make_payload(&self, rng: &mut Rng64) -> Payload {
        Payload::Features((0..self.dim).map(|_| rng.range(-1.0, 1.0) as f32).collect())
    }
}

/// DLRM-style CTR prediction (paper Sec. V): real `enw-recsys` model
/// compute, priced by the roofline operator model — so batch size trades
/// throughput against latency exactly as Sec. V-B describes.
#[derive(Debug, Clone)]
pub struct RecsysBackend {
    name: String,
    model: RecModel,
    gen: TraceGenerator,
    machine: RooflineMachine,
    cfg: RecModelConfig,
}

impl RecsysBackend {
    /// Builds the lane: a model for `cfg`, a Zipf(`alpha`) trace
    /// generator, and `machine` as the roofline that prices batches.
    pub fn new(
        name: &str,
        cfg: &RecModelConfig,
        alpha: f64,
        machine: RooflineMachine,
        rng: &mut Rng64,
    ) -> Self {
        RecsysBackend {
            name: name.to_string(),
            model: RecModel::new(cfg, rng),
            gen: TraceGenerator::new(cfg, alpha),
            machine,
            cfg: cfg.clone(),
        }
    }

    /// The model configuration (used to derive SLA-driven batch policies).
    pub fn config(&self) -> &RecModelConfig {
        &self.cfg
    }

    /// The pricing roofline.
    pub fn machine(&self) -> &RooflineMachine {
        &self.machine
    }
}

impl Backend for RecsysBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ns(&self, batch: usize) -> u64 {
        if batch == 0 {
            return 0;
        }
        ns_from_secs(batch_latency(&self.cfg, batch as u64, &self.machine))
    }

    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }

    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        out.clear();
        // Small batches predict straight off the borrowed payloads — no
        // query clones, and `predict` reuses thread-local scratch.
        // Large batches clone the queries once into a contiguous slice so
        // the batched predictor can fan chunks out to workers; both paths
        // are bit-identical (the batched serial kernel is the same code).
        if parallel::plan_chunks(batch.len(), self.model.query_work() as usize).is_none() {
            for r in batch {
                let q = r.payload.rec_query();
                assert!(q.is_some(), "recsys lane got a non-recsys payload");
                let Some(q) = q else { continue };
                out.push(Output::Ctr(self.model.predict(&q.dense, &q.sparse)));
            }
            return;
        }
        let queries: Vec<_> = batch.iter().filter_map(|r| r.payload.rec_query()).cloned().collect();
        assert!(queries.len() == batch.len(), "recsys lane got a non-recsys payload");
        let mut ctrs = parallel::scratch::take_f32(queries.len());
        self.model.predict_batch_into(&queries, &mut ctrs);
        out.extend(ctrs.iter().copied().map(Output::Ctr));
    }

    fn make_payload(&self, rng: &mut Rng64) -> Payload {
        Payload::Rec(self.gen.query(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_cam::cells;

    fn req(id: u64, payload: Payload) -> Request {
        Request { id, station: 0, payload, arrival_ns: 0, deadline_ns: u64::MAX }
    }

    fn small_rec_cfg() -> RecModelConfig {
        RecModelConfig {
            dense_features: 4,
            bottom_mlp: vec![8, 8],
            tables: vec![(64, 3), (32, 2)],
            embedding_dim: 8,
            top_mlp: vec![8],
            interaction: enw_recsys::model::Interaction::Concat,
        }
    }

    #[test]
    fn digital_and_crossbar_serve_the_same_model_differently() {
        let mut rng = Rng64::new(11);
        let ideal = ideal_layers(&[6, 10, 4], &mut rng);
        let mut digital =
            DigitalBackend::from_layers("digital", ideal.clone(), DigitalBackend::DEFAULT_MODEL);
        let mut analog = CrossbarBackend::program(
            "crossbar",
            &ideal,
            PcmConfig::projected(),
            1e6,
            CrossbarBackend::DEFAULT_MODEL,
            &mut rng,
        );
        let p = digital.make_payload(&mut rng);
        let d = digital.serve(&[req(0, p.clone())]);
        let a = analog.serve(&[req(0, p)]);
        let (Some(Output::Scores(ds)), Some(Output::Scores(as_))) = (d.first(), a.first()) else {
            unreachable!("MLP lanes return scores");
        };
        assert_eq!(ds.len(), 4);
        assert_eq!(as_.len(), 4);
        // Programming noise + drift make the analog answer close but not
        // equal to the digital reference.
        let err: f32 = ds.iter().zip(as_).map(|(x, y)| (x - y).abs()).sum();
        assert!(err > 0.0, "analog lane should carry device noise");
        assert!(err < 2.0, "analog lane should still approximate the model, err={err}");
    }

    #[test]
    fn mlp_batch_serving_is_thread_count_invariant() {
        let mut rng = Rng64::new(12);
        let ideal = ideal_layers(&[8, 16, 3], &mut rng);
        let mut lane = DigitalBackend::from_layers("d", ideal, DigitalBackend::DEFAULT_MODEL);
        let batch: Vec<Request> = (0..40).map(|i| req(i, lane.make_payload(&mut rng))).collect();
        let serial = parallel::with_threads(1, || lane.serve(&batch));
        for t in [2, 4, 8] {
            let par = parallel::with_threads(t, || lane.serve(&batch));
            assert_eq!(par, serial, "thread count {t} changed outputs");
        }
    }

    #[test]
    fn tcam_lane_retrieves_stored_labels() {
        let mut rng = Rng64::new(13);
        let support: Vec<(Vec<f32>, usize)> = (0..4)
            .map(|c| {
                let mut v = vec![-1.0f32; 8];
                v[c * 2] = 1.0;
                (v, c)
            })
            .collect();
        let mut lane = TcamBackend::new(
            "tcam",
            TcamGeometry { capacity: 16, dim: 8, planes: 64 },
            cells::cmos_16t(),
            TcamConfig::default(),
            &support,
            &mut rng,
        );
        assert!(lane.service_ns(1) > TcamBackend::SETUP_NS);
        let out = lane.serve(&[req(0, Payload::Features(support[2].0.clone()))]);
        assert_eq!(out, vec![Output::Label(Some(2))]);
    }

    #[test]
    fn recsys_lane_prices_batches_by_roofline() {
        let mut rng = Rng64::new(14);
        let cfg = small_rec_cfg();
        let mut lane =
            RecsysBackend::new("recsys", &cfg, 1.0, RooflineMachine::server_cpu(), &mut rng);
        assert_eq!(lane.service_ns(0), 0);
        let t1 = lane.service_ns(1);
        let t64 = lane.service_ns(64);
        assert!(t1 >= 1);
        assert!(t64 > t1, "batch latency must grow: {t1} vs {t64}");
        assert!((t64 as f64) < 64.0 * t1 as f64, "batching must amortize");
        let p = lane.make_payload(&mut rng);
        let out = lane.serve(&[req(0, p)]);
        let Some(Output::Ctr(ctr)) = out.first() else {
            unreachable!("recsys lane returns CTRs");
        };
        assert!((0.0..=1.0).contains(ctr));
    }

    #[test]
    fn payloads_match_their_lane() {
        let mut rng = Rng64::new(15);
        let ideal = ideal_layers(&[5, 2], &mut rng);
        let lane = DigitalBackend::from_layers("d", ideal, DigitalBackend::DEFAULT_MODEL);
        let Payload::Features(f) = lane.make_payload(&mut rng) else {
            unreachable!("MLP lanes draw feature payloads");
        };
        assert_eq!(f.len(), 5);
        let cfg = small_rec_cfg();
        let rec = RecsysBackend::new("r", &cfg, 0.8, RooflineMachine::server_cpu(), &mut rng);
        let Payload::Rec(q) = rec.make_payload(&mut rng) else {
            unreachable!("recsys lane draws rec payloads");
        };
        assert_eq!(q.dense.len(), 4);
        assert_eq!(q.sparse.len(), 2);
    }
}
