//! The canonical four-lane "paper fleet" used by `exp16_serving_slo`
//! and the end-to-end determinism tests.
//!
//! Station order is fixed and part of the reproducibility contract:
//!
//! | index | lane | policy | deadline budget |
//! |---|---|---|---|
//! | 0 | `crossbar` (analog, digital fallback) | 8-deep batches, 200 µs wait | 2 ms |
//! | 1 | `digital` | 16-deep batches, 100 µs wait | 1 ms |
//! | 2 | `tcam` | 4-deep batches, 50 µs wait | 500 µs |
//! | 3 | `recsys` | SLA-derived via `try_max_batch_under_sla` | 1 ms |
//!
//! All parameters are representative serving numbers, not tuned claims;
//! what the experiments measure is how *tails, shedding and degradation*
//! respond to load, which only needs the lanes to sit at believable
//! relative speeds (analog slowest, TCAM fastest).

use crate::backends::{
    ideal_layers, CrossbarBackend, DigitalBackend, RecsysBackend, TcamBackend, TcamGeometry,
};
use crate::loadgen::TrafficClass;
use crate::policy::{BatchPolicy, DegradePolicy, StationSpec};
use crate::scheduler::Server;
use enw_cam::array::TcamConfig;
use enw_cam::cells;
use enw_crossbar::devices::pcm::PcmConfig;
use enw_numerics::rng::Rng64;
use enw_recsys::characterize::RooflineMachine;
use enw_recsys::model::{Interaction, RecModelConfig};
use enw_recsys::serving::batch_latency;

/// MLP served by the crossbar and digital lanes.
const MLP_DIMS: [usize; 3] = [16, 32, 10];
/// PCM deployment age (seconds) at which the analog lane is read.
const T_READ_S: f64 = 1e6;
/// TCAM lane geometry.
const TCAM_DIM: usize = 16;
const TCAM_PLANES: usize = 64;
const TCAM_CLASSES: usize = 10;
const TCAM_SHOTS: usize = 4;
/// Recsys SLA as a multiple of the single-query latency (comfortably
/// reachable, so the binary search always yields a batch size).
const RECSYS_SLA_X: f64 = 50.0;
const RECSYS_BATCH_CAP: usize = 64;

/// A small DLRM-style configuration sized for simulation throughput.
pub fn recsys_config() -> RecModelConfig {
    RecModelConfig {
        dense_features: 8,
        bottom_mlp: vec![16, 16],
        tables: vec![(512, 4), (256, 2), (128, 2)],
        embedding_dim: 16,
        top_mlp: vec![16],
        interaction: Interaction::Concat,
    }
}

/// Builds the four-lane server; every parameter and random draw is a
/// pure function of `seed`.
///
/// # Errors
///
/// Propagates [`Server::try_new`]'s validation; with the preset spec
/// list this cannot fail, but the `Result` keeps the preset honest
/// instead of hiding a panic behind an "is statically valid" expect.
pub fn try_fleet(seed: u64) -> Result<Server, crate::ServeError> {
    let mut rng = Rng64::new(seed);

    // Lanes 0/1: the same ideal MLP weights served analog and digital.
    let ideal = ideal_layers(&MLP_DIMS, &mut rng);
    let analog = CrossbarBackend::program(
        "crossbar",
        &ideal,
        PcmConfig::projected(),
        T_READ_S,
        CrossbarBackend::DEFAULT_MODEL,
        &mut rng,
    );
    let analog_fallback = DigitalBackend::from_layers(
        "crossbar-fallback",
        ideal.clone(),
        DigitalBackend::DEFAULT_MODEL,
    );
    let digital = DigitalBackend::from_layers("digital", ideal, DigitalBackend::DEFAULT_MODEL);

    // Lane 2: TCAM few-shot memory holding a small support set.
    let support: Vec<(Vec<f32>, usize)> = (0..TCAM_CLASSES * TCAM_SHOTS)
        .map(|k| {
            let class = k % TCAM_CLASSES;
            let mut v: Vec<f32> = (0..TCAM_DIM).map(|_| rng.range(-0.2, 0.2) as f32).collect();
            v[class % TCAM_DIM] = 1.0;
            (v, class)
        })
        .collect();
    let tcam = TcamBackend::new(
        "tcam",
        TcamGeometry {
            capacity: 2 * TCAM_CLASSES * TCAM_SHOTS,
            dim: TCAM_DIM,
            planes: TCAM_PLANES,
        },
        cells::cmos_16t(),
        TcamConfig::default(),
        &support,
        &mut rng,
    );

    // Lane 3: recsys with the SLA-derived batch policy (paper Sec. V-B).
    let cfg = recsys_config();
    let machine = RooflineMachine::server_cpu();
    let sla = RECSYS_SLA_X * batch_latency(&cfg, 1, &machine);
    let recsys_policy =
        BatchPolicy::try_for_recsys_sla(&cfg, &machine, sla, RECSYS_BATCH_CAP, 512).unwrap_or(
            BatchPolicy { max_batch: RECSYS_BATCH_CAP, max_wait_ns: 100_000, queue_cap: 512 },
        );
    let recsys = RecsysBackend::new("recsys", &cfg, 1.0, machine, &mut rng);

    // Every figure below is a compile-time constant satisfying
    // `BatchPolicy::new`'s documented invariants, so the infallible
    // validated constructors apply; only `Server::try_new` stays
    // fallible and its error propagates.
    let specs = vec![
        StationSpec::with_fallback(
            Box::new(analog),
            BatchPolicy::new(8, 200_000, 64),
            Box::new(analog_fallback),
            DegradePolicy::new(3, 8),
        ),
        StationSpec::simple(Box::new(digital), BatchPolicy::new(16, 100_000, 128)),
        StationSpec::simple(Box::new(tcam), BatchPolicy::new(4, 50_000, 64)),
        StationSpec::simple(Box::new(recsys), recsys_policy),
    ];
    Server::try_new(specs)
}

/// The traffic mix matching [`try_fleet`]'s station order.
pub fn traffic_classes() -> Vec<TrafficClass> {
    vec![
        TrafficClass { station: 0, weight: 1.0, deadline_ns: 2_000_000 },
        TrafficClass { station: 1, weight: 2.0, deadline_ns: 1_000_000 },
        TrafficClass { station: 2, weight: 2.0, deadline_ns: 500_000 },
        TrafficClass { station: 3, weight: 3.0, deadline_ns: 1_000_000 },
    ]
}

/// Aggregate QPS at which the first lane saturates: the minimum over
/// lanes of `capacity / traffic share`. Feeding more than this must
/// produce queue growth, shedding or rejection somewhere.
pub fn saturation_qps(server: &Server, classes: &[TrafficClass]) -> f64 {
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    let mut sat = f64::INFINITY;
    for c in classes {
        let share = c.weight / total;
        if share > 0.0 {
            sat = sat.min(server.capacity_qps(c.station) / share);
        }
    }
    sat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_four_lanes_in_paper_order() {
        let s = try_fleet(1).expect("preset fleet");
        assert_eq!(s.station_count(), 4);
        assert_eq!(s.station_name(0), "crossbar");
        assert_eq!(s.station_name(1), "digital");
        assert_eq!(s.station_name(2), "tcam");
        assert_eq!(s.station_name(3), "recsys");
    }

    #[test]
    fn recsys_policy_is_sla_derived() {
        let s = try_fleet(2).expect("preset fleet");
        let p = s.policy(3);
        let direct = enw_recsys::serving::try_max_batch_under_sla(
            &recsys_config(),
            &RooflineMachine::server_cpu(),
            RECSYS_SLA_X * batch_latency(&recsys_config(), 1, &RooflineMachine::server_cpu()),
            RECSYS_BATCH_CAP as u64,
        );
        assert_eq!(Ok(p.max_batch as u64), direct, "policy must come from the paper search");
    }

    #[test]
    fn saturation_is_finite_and_positive() {
        let s = try_fleet(3).expect("preset fleet");
        let classes = traffic_classes();
        let sat = saturation_qps(&s, &classes);
        assert!(sat.is_finite() && sat > 0.0, "saturation {sat}");
        // The analog lane (slowest per request, smallest share) should
        // not be orders of magnitude away from the others' knee.
        for c in &classes {
            assert!(s.capacity_qps(c.station) > 0.0);
        }
    }

    #[test]
    fn fleets_from_the_same_seed_are_interchangeable() {
        let a = try_fleet(9).expect("preset fleet");
        let b = try_fleet(9).expect("preset fleet");
        let mut ra = Rng64::new(1);
        let mut rb = Rng64::new(1);
        for i in 0..4 {
            assert_eq!(a.payload_for(i, &mut ra), b.payload_for(i, &mut rb));
            assert_eq!(a.capacity_qps(i).to_bits(), b.capacity_qps(i).to_bits());
        }
    }
}
