//! Reproducible open-loop load generation.
//!
//! Open-loop means arrivals do not wait for responses — the generator
//! plays a Poisson-like process at a configured aggregate QPS regardless
//! of how the server is coping, which is what exposes saturation and
//! tail behaviour (a closed-loop generator self-throttles and hides
//! them). All randomness flows through one seeded `Rng64` in a fixed
//! draw order, so a `(seed, spec)` pair names exactly one trace.

use crate::clock::ns_from_secs;
use crate::request::Request;
use crate::scheduler::Server;
use enw_numerics::rng::Rng64;

/// One slice of the traffic mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficClass {
    /// Target station index.
    pub station: usize,
    /// Relative share of the aggregate QPS (weights need not sum to 1).
    pub weight: f64,
    /// Per-request latency budget: deadline = arrival + this.
    pub deadline_ns: u64,
}

/// Aggregate arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Aggregate arrival rate over all classes (requests/second).
    pub qps: f64,
    /// Trace horizon in virtual nanoseconds.
    pub duration_ns: u64,
    /// Seed naming this trace.
    pub seed: u64,
}

/// Generates the arrival trace for `spec` with traffic split across
/// `classes`; payloads are drawn from each class's station so they always
/// match the lane that will serve them. Arrivals are exponential
/// inter-arrival (memoryless) at the aggregate rate, classes sampled by
/// weight per arrival.
///
/// # Panics
///
/// Panics if `classes` is empty, any weight is non-positive, any station
/// index is out of range, or `qps` is non-positive.
pub fn generate_trace(server: &Server, spec: &LoadSpec, classes: &[TrafficClass]) -> Vec<Request> {
    assert!(!classes.is_empty(), "traffic mix needs at least one class");
    assert!(spec.qps > 0.0 && spec.qps.is_finite(), "qps must be positive");
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    for c in classes {
        assert!(c.weight > 0.0, "class weights must be positive");
        assert!(c.station < server.station_count(), "traffic class targets unknown station");
    }
    let mut rng = Rng64::new(spec.seed);
    let mut trace = Vec::new();
    let mut t_s = 0.0f64;
    let mut id = 0u64;
    loop {
        // Exponential inter-arrival: -ln(u)/qps with u in (0, 1].
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        t_s += -u.ln() / spec.qps;
        let arrival_ns = ns_from_secs(t_s);
        if arrival_ns >= spec.duration_ns {
            break;
        }
        let mut pick = rng.uniform() * total_weight;
        let mut class = classes[classes.len() - 1];
        for c in classes {
            if pick < c.weight {
                class = *c;
                break;
            }
            pick -= c.weight;
        }
        let payload = server.payload_for(class.station, &mut rng);
        trace.push(Request {
            id,
            station: class.station,
            payload,
            arrival_ns,
            deadline_ns: arrival_ns.saturating_add(class.deadline_ns),
        });
        id += 1;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ServiceModel};
    use crate::policy::{BatchPolicy, StationSpec};
    use crate::request::{Output, Payload};

    struct Stub(usize);

    impl Backend for Stub {
        fn name(&self) -> &str {
            "stub"
        }
        fn service_ns(&self, batch: usize) -> u64 {
            ServiceModel { setup_ns: 10, per_item_ns: 1 }.ns(batch)
        }
        fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
            batch.iter().map(|_| Output::Label(None)).collect()
        }
        fn make_payload(&self, rng: &mut Rng64) -> Payload {
            Payload::Features((0..self.0).map(|_| rng.uniform_f32()).collect())
        }
    }

    fn server(stations: usize) -> Server {
        Server::try_new(
            (0..stations)
                .map(|i| StationSpec::simple(Box::new(Stub(i + 1)), BatchPolicy::new(4, 100, 16)))
                .collect(),
        )
        .expect("test server has stations")
    }

    fn spec(seed: u64) -> LoadSpec {
        LoadSpec { qps: 50_000.0, duration_ns: 20_000_000, seed }
    }

    fn classes() -> Vec<TrafficClass> {
        vec![
            TrafficClass { station: 0, weight: 3.0, deadline_ns: 1_000_000 },
            TrafficClass { station: 1, weight: 1.0, deadline_ns: 2_000_000 },
        ]
    }

    #[test]
    fn traces_are_reproducible_and_sorted() {
        let s = server(2);
        let a = generate_trace(&s, &spec(42), &classes());
        let b = generate_trace(&s, &spec(42), &classes());
        assert_eq!(a, b, "same seed must name the same trace");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert!(w[0].id < w[1].id);
        }
        let c = generate_trace(&s, &spec(43), &classes());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn rate_and_mix_are_roughly_honoured() {
        let s = server(2);
        let trace = generate_trace(&s, &spec(7), &classes());
        // 50k qps over 20 ms ~ 1000 arrivals; Poisson spread is ~3%.
        let n = trace.len() as f64;
        assert!((800.0..1200.0).contains(&n), "got {n} arrivals");
        let to_zero = trace.iter().filter(|r| r.station == 0).count() as f64;
        let share = to_zero / n;
        assert!((0.65..0.85).contains(&share), "class share {share} far from 0.75");
    }

    #[test]
    fn deadlines_and_payloads_follow_the_class() {
        let s = server(2);
        let trace = generate_trace(&s, &spec(9), &classes());
        for r in &trace {
            let budget = if r.station == 0 { 1_000_000 } else { 2_000_000 };
            assert_eq!(r.deadline_ns, r.arrival_ns + budget);
            let Payload::Features(f) = &r.payload else {
                unreachable!("stub lanes draw feature payloads");
            };
            assert_eq!(f.len(), r.station + 1, "payload drawn from the wrong station");
        }
    }

    #[test]
    fn horizon_bounds_the_trace() {
        let s = server(1);
        let one = vec![TrafficClass { station: 0, weight: 1.0, deadline_ns: 100 }];
        let trace = generate_trace(
            &s,
            &LoadSpec { qps: 1_000_000.0, duration_ns: 1_000_000, seed: 3 },
            &one,
        );
        assert!(trace.iter().all(|r| r.arrival_ns < 1_000_000));
    }
}
