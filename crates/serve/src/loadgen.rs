//! Reproducible open-loop load generation.
//!
//! Open-loop means arrivals do not wait for responses — the generator
//! plays a Poisson-like process at a configured aggregate QPS regardless
//! of how the server is coping, which is what exposes saturation and
//! tail behaviour (a closed-loop generator self-throttles and hides
//! them). All randomness flows through one seeded `Rng64` in a fixed
//! draw order, so a `(seed, spec)` pair names exactly one trace.
//!
//! The inter-arrival process itself is pluggable through [`LoadShape`]:
//! the classic memoryless process is [`Poisson`], and richer shapes
//! (diurnal sinusoids, bursty on/off phases, flash crowds) live in the
//! fleet layer (`enw-fleet`) and drive the same generator through this
//! trait.

use crate::clock::ns_from_secs;
use crate::request::Request;
use crate::scheduler::Server;
use enw_numerics::rng::Rng64;

/// An open-loop inter-arrival process on virtual time.
///
/// Implementations map the current virtual instant to the gap before the
/// next arrival. All randomness must come from the passed `Rng64` (in a
/// fixed draw order) so a `(seed, shape)` pair names exactly one arrival
/// sequence — the determinism contract every consumer relies on.
pub trait LoadShape {
    /// Seconds until the next arrival after virtual instant `t_s`.
    /// Must be positive and finite for every reachable `t_s`.
    fn next_dt_s(&mut self, t_s: f64, rng: &mut Rng64) -> f64;
}

/// The memoryless process: exponential inter-arrival at a fixed
/// aggregate rate. This is byte-for-byte the process E16's serving sweep
/// has always used — one uniform draw per arrival, `-ln(1-u)/qps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    qps: f64,
}

impl Poisson {
    /// A Poisson process at `qps` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not positive and finite.
    pub fn new(qps: f64) -> Self {
        assert!(qps > 0.0 && qps.is_finite(), "qps must be positive");
        Poisson { qps }
    }

    /// The configured aggregate rate.
    pub fn qps(&self) -> f64 {
        self.qps
    }
}

impl LoadShape for Poisson {
    fn next_dt_s(&mut self, _t_s: f64, rng: &mut Rng64) -> f64 {
        // Exponential inter-arrival: -ln(u)/qps with u in (0, 1].
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        -u.ln() / self.qps
    }
}

/// One slice of the traffic mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficClass {
    /// Target station index.
    pub station: usize,
    /// Relative share of the aggregate QPS (weights need not sum to 1).
    pub weight: f64,
    /// Per-request latency budget: deadline = arrival + this.
    pub deadline_ns: u64,
}

/// Aggregate arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Aggregate arrival rate over all classes (requests/second).
    pub qps: f64,
    /// Trace horizon in virtual nanoseconds.
    pub duration_ns: u64,
    /// Seed naming this trace.
    pub seed: u64,
}

/// Generates the arrival trace for `spec` with traffic split across
/// `classes`; payloads are drawn from each class's station so they always
/// match the lane that will serve them. Arrivals are exponential
/// inter-arrival (memoryless) at the aggregate rate, classes sampled by
/// weight per arrival — i.e. [`generate_trace_shaped`] driven by
/// [`Poisson`] at `spec.qps`.
///
/// # Panics
///
/// Panics if `classes` is empty, any weight is non-positive, any station
/// index is out of range, or `qps` is non-positive.
pub fn generate_trace(server: &Server, spec: &LoadSpec, classes: &[TrafficClass]) -> Vec<Request> {
    let mut shape = Poisson::new(spec.qps);
    generate_trace_shaped(server, spec, classes, &mut shape)
}

/// [`generate_trace`] with a caller-supplied inter-arrival process. The
/// draw order is fixed: one [`LoadShape::next_dt_s`] call, then the class
/// pick, then the payload draw, per arrival — so shapes compose with the
/// class mix without perturbing each other's randomness.
///
/// # Panics
///
/// Panics if `classes` is empty, any weight is non-positive, any station
/// index is out of range, `qps` is non-positive, or the shape returns a
/// non-positive or non-finite gap.
pub fn generate_trace_shaped(
    server: &Server,
    spec: &LoadSpec,
    classes: &[TrafficClass],
    shape: &mut dyn LoadShape,
) -> Vec<Request> {
    assert!(!classes.is_empty(), "traffic mix needs at least one class");
    assert!(spec.qps > 0.0 && spec.qps.is_finite(), "qps must be positive");
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    for c in classes {
        assert!(c.weight > 0.0, "class weights must be positive");
        assert!(c.station < server.station_count(), "traffic class targets unknown station");
    }
    let mut rng = Rng64::new(spec.seed);
    let mut trace = Vec::new();
    let mut t_s = 0.0f64;
    let mut id = 0u64;
    loop {
        let dt = shape.next_dt_s(t_s, &mut rng);
        assert!(dt > 0.0 && dt.is_finite(), "load shape produced a bad gap: {dt}");
        t_s += dt;
        let arrival_ns = ns_from_secs(t_s);
        if arrival_ns >= spec.duration_ns {
            break;
        }
        let mut pick = rng.uniform() * total_weight;
        let mut class = classes[classes.len() - 1];
        for c in classes {
            if pick < c.weight {
                class = *c;
                break;
            }
            pick -= c.weight;
        }
        let payload = server.payload_for(class.station, &mut rng);
        trace.push(Request {
            id,
            station: class.station,
            payload,
            arrival_ns,
            deadline_ns: arrival_ns.saturating_add(class.deadline_ns),
        });
        id += 1;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ServiceModel};
    use crate::policy::{BatchPolicy, StationSpec};
    use crate::request::{Output, Payload};

    struct Stub(usize);

    impl Backend for Stub {
        fn name(&self) -> &str {
            "stub"
        }
        fn service_ns(&self, batch: usize) -> u64 {
            ServiceModel { setup_ns: 10, per_item_ns: 1 }.ns(batch)
        }
        fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
            batch.iter().map(|_| Output::Label(None)).collect()
        }
        fn make_payload(&self, rng: &mut Rng64) -> Payload {
            Payload::Features((0..self.0).map(|_| rng.uniform_f32()).collect())
        }
    }

    fn server(stations: usize) -> Server {
        Server::try_new(
            (0..stations)
                .map(|i| StationSpec::simple(Box::new(Stub(i + 1)), BatchPolicy::new(4, 100, 16)))
                .collect(),
        )
        .expect("test server has stations")
    }

    fn spec(seed: u64) -> LoadSpec {
        LoadSpec { qps: 50_000.0, duration_ns: 20_000_000, seed }
    }

    fn classes() -> Vec<TrafficClass> {
        vec![
            TrafficClass { station: 0, weight: 3.0, deadline_ns: 1_000_000 },
            TrafficClass { station: 1, weight: 1.0, deadline_ns: 2_000_000 },
        ]
    }

    #[test]
    fn traces_are_reproducible_and_sorted() {
        let s = server(2);
        let a = generate_trace(&s, &spec(42), &classes());
        let b = generate_trace(&s, &spec(42), &classes());
        assert_eq!(a, b, "same seed must name the same trace");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert!(w[0].id < w[1].id);
        }
        let c = generate_trace(&s, &spec(43), &classes());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn rate_and_mix_are_roughly_honoured() {
        let s = server(2);
        let trace = generate_trace(&s, &spec(7), &classes());
        // 50k qps over 20 ms ~ 1000 arrivals; Poisson spread is ~3%.
        let n = trace.len() as f64;
        assert!((800.0..1200.0).contains(&n), "got {n} arrivals");
        let to_zero = trace.iter().filter(|r| r.station == 0).count() as f64;
        let share = to_zero / n;
        assert!((0.65..0.85).contains(&share), "class share {share} far from 0.75");
    }

    #[test]
    fn deadlines_and_payloads_follow_the_class() {
        let s = server(2);
        let trace = generate_trace(&s, &spec(9), &classes());
        for r in &trace {
            let budget = if r.station == 0 { 1_000_000 } else { 2_000_000 };
            assert_eq!(r.deadline_ns, r.arrival_ns + budget);
            let Payload::Features(f) = &r.payload else {
                unreachable!("stub lanes draw feature payloads");
            };
            assert_eq!(f.len(), r.station + 1, "payload drawn from the wrong station");
        }
    }

    #[test]
    fn poisson_shape_reproduces_the_legacy_trace() {
        // The LoadShape extraction must not change E16's emitted arrival
        // sequence: the shaped generator driven by `Poisson` is the same
        // draw-for-draw process `generate_trace` always played.
        let s = server(2);
        let legacy = generate_trace(&s, &spec(42), &classes());
        let mut shape = Poisson::new(spec(42).qps);
        let shaped = generate_trace_shaped(&s, &spec(42), &classes(), &mut shape);
        assert_eq!(legacy, shaped, "Poisson shape diverged from the legacy process");
    }

    #[test]
    fn custom_shapes_drive_the_generator() {
        /// Fixed-gap arrivals: 1 µs apart, no randomness.
        struct EveryMicro;
        impl LoadShape for EveryMicro {
            fn next_dt_s(&mut self, _t_s: f64, _rng: &mut Rng64) -> f64 {
                1e-6
            }
        }
        let s = server(1);
        let one = vec![TrafficClass { station: 0, weight: 1.0, deadline_ns: 100 }];
        let spec = LoadSpec { qps: 1.0, duration_ns: 10_000, seed: 5 };
        let trace = generate_trace_shaped(&s, &spec, &one, &mut EveryMicro);
        assert_eq!(trace.len(), 9, "10 µs horizon holds 9 strictly-later 1 µs arrivals");
        for (k, r) in trace.iter().enumerate() {
            assert_eq!(r.arrival_ns, 1_000 * (k as u64 + 1));
        }
    }

    #[test]
    #[should_panic(expected = "bad gap")]
    fn non_positive_gaps_are_rejected() {
        struct Stuck;
        impl LoadShape for Stuck {
            fn next_dt_s(&mut self, _t_s: f64, _rng: &mut Rng64) -> f64 {
                0.0
            }
        }
        let s = server(1);
        let one = vec![TrafficClass { station: 0, weight: 1.0, deadline_ns: 100 }];
        let spec = LoadSpec { qps: 1.0, duration_ns: 10_000, seed: 5 };
        generate_trace_shaped(&s, &spec, &one, &mut Stuck);
    }

    #[test]
    fn horizon_bounds_the_trace() {
        let s = server(1);
        let one = vec![TrafficClass { station: 0, weight: 1.0, deadline_ns: 100 }];
        let trace = generate_trace(
            &s,
            &LoadSpec { qps: 1_000_000.0, duration_ns: 1_000_000, seed: 3 },
            &one,
        );
        assert!(trace.iter().all(|r| r.arrival_ns < 1_000_000));
    }
}
