//! The deterministic micro-batching event loop.
//!
//! One [`Server`] owns a set of *stations* (one per backend lane), each
//! with a bounded FIFO queue, a batch-close policy, and optionally a
//! degradation rung. Time is the [`VirtualClock`]: the loop repeatedly
//! finds the earliest pending event — next trace arrival, a station's
//! in-flight batch completing, or a station's batch-wait timeout — and
//! processes everything due at that instant in a fixed order
//! (completions, then arrivals, then batch closes; stations always in
//! index order). Every tie-break is structural, so the full response
//! stream is a pure function of the trace: bit-identical across runs,
//! hosts, and `ENW_THREADS` settings.
//!
//! Station lifecycle per batch:
//!
//! 1. **Admit** — arrivals enter the station queue or are `Rejected`
//!    when it is full (backpressure).
//! 2. **Close** — an idle station closes a batch when the queue reaches
//!    `max_batch` or the oldest request has waited `max_wait_ns`.
//!    Requests whose deadline has already passed are `Shed` here,
//!    unserved.
//! 3. **Serve** — the active backend computes real outputs (through
//!    `enw-parallel`'s fixed-chunk kernels) and prices the batch with
//!    its analytic service model; the station is busy until then.
//! 4. **Complete** — responses are emitted; late ones count as deadline
//!    misses and drive the degradation ladder (primary → fallback after
//!    `miss_streak` missed batches, back after `recover_streak` clean
//!    ones).
//!
//! # Observability
//!
//! The loop publishes the `enw-trace` virtual clock as it advances and
//! records `serve/*` spans — queue wait, batch close, backend execute,
//! shed and reject — plus latency/batch-size histograms, all keyed on
//! virtual time and therefore bit-identical across runs and thread
//! counts. Run with `ENW_TRACE=summary` to see the breakdown.

use crate::backend::Backend;
use crate::clock::VirtualClock;
use crate::error::ServeError;
use crate::metrics::StationMetrics;
use crate::policy::{BatchPolicy, DegradePolicy, StationSpec};
use crate::queue::BoundedQueue;
use crate::request::{render_responses, Outcome, Output, Payload, Request, Response};
use enw_numerics::rng::Rng64;
use enw_trace as trace;

struct Station {
    backend: Box<dyn Backend>,
    fallback: Option<Box<dyn Backend>>,
    ladder: Option<DegradePolicy>,
    policy: BatchPolicy,
    queue: BoundedQueue,
    busy_until: Option<u64>,
    pending: Vec<(Request, Output)>,
    // Per-station arena: batch close and serve refill these warm buffers
    // in place, so the steady-state event loop performs no per-request
    // heap allocation (each grows once to `max_batch` and stays).
    batch_buf: Vec<Request>,
    outputs_buf: Vec<Output>,
    on_fallback: bool,
    miss_streak: u32,
    clean_streak: u32,
    metrics: StationMetrics,
}

impl Station {
    fn new(spec: StationSpec) -> Self {
        let metrics = StationMetrics::new(spec.primary.name());
        let (fallback, ladder) = match spec.degrade {
            Some((f, l)) => (Some(f), Some(l)),
            None => (None, None),
        };
        Station {
            queue: BoundedQueue::new(spec.policy.queue_cap),
            backend: spec.primary,
            fallback,
            ladder,
            policy: spec.policy,
            busy_until: None,
            pending: Vec::new(),
            batch_buf: Vec::new(),
            outputs_buf: Vec::new(),
            on_fallback: false,
            miss_streak: 0,
            clean_streak: 0,
            metrics,
        }
    }

    /// Earliest future instant at which this station, left alone, must
    /// act: batch completion when busy, else the oldest request's
    /// wait-timeout expiry.
    fn next_event_ns(&self) -> Option<u64> {
        if let Some(b) = self.busy_until {
            return Some(b);
        }
        self.queue.oldest_arrival_ns().map(|oldest| oldest.saturating_add(self.policy.max_wait_ns))
    }

    /// True when an idle station should close a batch now.
    fn can_close(&self, now_ns: u64) -> bool {
        if self.busy_until.is_some() || self.queue.is_empty() {
            return false;
        }
        if self.queue.len() >= self.policy.max_batch {
            return true;
        }
        self.queue
            .oldest_arrival_ns()
            .is_some_and(|oldest| now_ns >= oldest.saturating_add(self.policy.max_wait_ns))
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Terminal record per request, in virtual-time emission order.
    pub responses: Vec<Response>,
    /// Per-station counters and latency histograms.
    pub stations: Vec<StationMetrics>,
    /// Virtual instant of the last event (the simulated makespan).
    pub duration_ns: u64,
}

impl RunReport {
    /// Canonical byte-exact rendering of the response stream (the
    /// determinism contract compares these strings).
    pub fn render(&self) -> String {
        render_responses(&self.responses)
    }
}

/// The multi-workload serving runtime.
pub struct Server {
    stations: Vec<Station>,
    clock: VirtualClock,
}

impl Server {
    /// Builds a server from station specs; station indices follow the
    /// order given here. Fails with [`ServeError::NoStations`] on an
    /// empty spec list.
    pub fn try_new(specs: Vec<StationSpec>) -> Result<Self, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::NoStations);
        }
        Ok(Server {
            stations: specs.into_iter().map(Station::new).collect(),
            clock: VirtualClock::new(),
        })
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Primary-lane name of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn station_name(&self, i: usize) -> &str {
        assert!(i < self.stations.len(), "station index out of range");
        self.stations[i].backend.name()
    }

    /// Batch policy of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn policy(&self, i: usize) -> BatchPolicy {
        assert!(i < self.stations.len(), "station index out of range");
        self.stations[i].policy
    }

    /// Draws a payload station `i`'s primary backend understands (load
    /// generation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn payload_for(&self, i: usize, rng: &mut Rng64) -> Payload {
        assert!(i < self.stations.len(), "station index out of range");
        self.stations[i].backend.make_payload(rng)
    }

    /// Steady-state capacity (requests/second) of station `i` serving
    /// back-to-back full batches on its primary backend.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn capacity_qps(&self, i: usize) -> f64 {
        assert!(i < self.stations.len(), "station index out of range");
        let st = &self.stations[i];
        let b = st.policy.max_batch;
        let ns = st.backend.service_ns(b).max(1);
        b as f64 / (ns as f64 / 1e9)
    }

    /// Runs the whole trace to completion and reports. Fails without
    /// serving anything if the trace is unsorted or names an unknown
    /// station.
    ///
    /// Each admitted request is cloned out of the borrowed trace; when the
    /// caller owns the trace, [`Server::try_run_owned`] moves requests
    /// into the loop instead and never clones a payload.
    pub fn try_run(self, trace_reqs: &[Request]) -> Result<RunReport, ServeError> {
        self.validate(trace_reqs)?;
        Ok(self.run_loop(trace_reqs.len(), trace_reqs.iter().cloned()))
    }

    /// [`Server::try_run`] over an owned trace: requests (and their
    /// payload buffers) move straight from the trace into the station
    /// queues, so the steady-state event loop performs zero per-request
    /// heap allocations.
    pub fn try_run_owned(self, trace_reqs: Vec<Request>) -> Result<RunReport, ServeError> {
        self.validate(&trace_reqs)?;
        let n = trace_reqs.len();
        Ok(self.run_loop(n, trace_reqs.into_iter()))
    }

    fn validate(&self, trace_reqs: &[Request]) -> Result<(), ServeError> {
        for (i, w) in trace_reqs.windows(2).enumerate() {
            if w[0].arrival_ns > w[1].arrival_ns {
                return Err(ServeError::UnsortedTrace { position: i + 1 });
            }
        }
        for r in trace_reqs {
            if r.station >= self.stations.len() {
                return Err(ServeError::UnknownStation {
                    request_id: r.id,
                    station: r.station,
                    stations: self.stations.len(),
                });
            }
        }
        Ok(())
    }

    fn run_loop(mut self, expected: usize, reqs: impl Iterator<Item = Request>) -> RunReport {
        // Spin up the shared worker pool before the first batch closes,
        // so no serving-path latency sample pays thread start-up cost.
        enw_parallel::prewarm(enw_parallel::max_threads());
        let mut reqs = reqs.peekable();
        let mut responses: Vec<Response> = Vec::with_capacity(expected);
        loop {
            let mut t_next: Option<u64> = reqs.peek().map(|r| r.arrival_ns);
            for st in &self.stations {
                if let Some(cand) = st.next_event_ns() {
                    t_next = Some(t_next.map_or(cand, |t| t.min(cand)));
                }
            }
            let Some(t) = t_next else { break };
            self.clock.advance_to(t);
            // Publish virtual time so serve/* spans measure virtual-time
            // deltas, not host time.
            trace::set_virtual_ns(t);
            // 1. Completions due now free their stations.
            for i in 0..self.stations.len() {
                if self.stations[i].busy_until == Some(t) {
                    self.complete_batch(i, t, &mut responses);
                }
            }
            // 2. All arrivals at this instant are admitted (trace order).
            while let Some(r) = reqs.next_if(|r| r.arrival_ns == t) {
                self.admit(r, t, &mut responses);
            }
            // 3. Idle stations close every batch that is now due; a close
            // may shed the entire batch and leave the station idle with a
            // still-closable queue, hence the fixpoint loop.
            loop {
                let mut progressed = false;
                for i in 0..self.stations.len() {
                    if self.stations[i].can_close(t) {
                        self.close_batch(i, t, &mut responses);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        RunReport {
            responses,
            duration_ns: self.clock.now_ns(),
            stations: self.stations.into_iter().map(|s| s.metrics).collect(),
        }
    }

    fn admit(&mut self, req: Request, now_ns: u64, responses: &mut Vec<Response>) {
        let station = &mut self.stations[req.station];
        station.metrics.arrived += 1;
        trace::counter_add("serve.arrived", 1);
        let (id, sid, arrival) = (req.id, req.station, req.arrival_ns);
        if station.queue.try_offer(req).is_err() {
            station.metrics.rejected += 1;
            trace::record_span("serve/reject", 1);
            responses.push(Response {
                id,
                station: sid,
                outcome: Outcome::Rejected,
                output: None,
                arrival_ns: arrival,
                finish_ns: now_ns,
            });
        }
    }

    fn close_batch(&mut self, i: usize, now_ns: u64, responses: &mut Vec<Response>) {
        let close_span = trace::span("serve/batch_close");
        let station = &mut self.stations[i];
        // Refill the station's warm batch buffer in place — the only
        // allocations in a steady-state close are whatever the backend's
        // outputs themselves need.
        let mut batch = std::mem::take(&mut station.batch_buf);
        station.queue.take_into(station.policy.max_batch, &mut batch);
        close_span.add_work(batch.len() as u64);
        batch.retain(|req| {
            trace::record_span("serve/queue_wait", now_ns.saturating_sub(req.arrival_ns));
            // Timeout shedding: a request already past its deadline gets
            // no service — answering it late helps no one and slows the
            // batch for everyone else.
            if now_ns >= req.deadline_ns {
                station.metrics.shed += 1;
                trace::record_span("serve/shed", 1);
                responses.push(Response {
                    id: req.id,
                    station: i,
                    outcome: Outcome::Shed,
                    output: None,
                    arrival_ns: req.arrival_ns,
                    finish_ns: now_ns,
                });
                return false;
            }
            true
        });
        if batch.is_empty() {
            station.batch_buf = batch;
            return;
        }
        let on_fallback = station.on_fallback && station.fallback.is_some();
        let backend = match (&mut station.fallback, on_fallback) {
            (Some(f), true) => f.as_mut(),
            _ => station.backend.as_mut(),
        };
        let mut outputs = std::mem::take(&mut station.outputs_buf);
        backend.serve_into(&batch, &mut outputs);
        assert!(
            outputs.len() == batch.len(),
            "backend {} returned {} outputs for a batch of {}",
            backend.name(),
            outputs.len(),
            batch.len()
        );
        let service = backend.service_ns(batch.len()).max(1);
        // Work = modeled service nanoseconds: deterministic, and exactly
        // the currency exp17's stage-share breakdown wants.
        trace::record_span("serve/backend_execute", service);
        trace::record_value("serve.batch_size", batch.len() as u64);
        station.busy_until = Some(now_ns.saturating_add(service));
        station.metrics.batches += 1;
        if on_fallback {
            station.metrics.degraded_batches += 1;
        }
        station.pending.clear();
        station.pending.extend(batch.drain(..).zip(outputs.drain(..)));
        station.batch_buf = batch;
        station.outputs_buf = outputs;
    }

    fn complete_batch(&mut self, i: usize, now_ns: u64, responses: &mut Vec<Response>) {
        let station = &mut self.stations[i];
        station.busy_until = None;
        let Station { pending, metrics, .. } = station;
        let mut any_miss = false;
        for (req, out) in pending.drain(..) {
            let late = now_ns > req.deadline_ns;
            if late {
                metrics.deadline_misses += 1;
                any_miss = true;
            } else {
                metrics.completed += 1;
            }
            let latency = now_ns.saturating_sub(req.arrival_ns);
            metrics.record_latency(latency);
            trace::record_value("serve.latency_ns", latency);
            responses.push(Response {
                id: req.id,
                station: i,
                outcome: if late { Outcome::DeadlineMiss } else { Outcome::Completed },
                output: Some(out),
                arrival_ns: req.arrival_ns,
                finish_ns: now_ns,
            });
        }
        let Some(ladder) = station.ladder else { return };
        if !station.on_fallback {
            if any_miss {
                station.miss_streak += 1;
                if station.miss_streak >= ladder.miss_streak && station.fallback.is_some() {
                    station.on_fallback = true;
                    station.metrics.fallback_switches += 1;
                    station.clean_streak = 0;
                }
            } else {
                station.miss_streak = 0;
            }
        } else if any_miss {
            station.clean_streak = 0;
        } else {
            station.clean_streak += 1;
            if ladder.recover_streak > 0 && station.clean_streak >= ladder.recover_streak {
                station.on_fallback = false;
                station.metrics.recoveries += 1;
                station.miss_streak = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ServiceModel;

    /// Toy lane: echoes a constant so tests can tell which backend
    /// served a request.
    struct Toy {
        name: String,
        model: ServiceModel,
        echo: f32,
    }

    impl Toy {
        fn boxed(name: &str, service_ns: u64, echo: f32) -> Box<dyn Backend> {
            Box::new(Toy {
                name: name.to_string(),
                model: ServiceModel { setup_ns: service_ns, per_item_ns: 0 },
                echo,
            })
        }
    }

    impl Backend for Toy {
        fn name(&self) -> &str {
            &self.name
        }
        fn service_ns(&self, batch: usize) -> u64 {
            self.model.ns(batch)
        }
        fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
            batch.iter().map(|_| Output::Scores(vec![self.echo])).collect()
        }
        fn make_payload(&self, _rng: &mut Rng64) -> Payload {
            Payload::Features(vec![0.0])
        }
    }

    fn req(id: u64, arrival: u64, deadline: u64) -> Request {
        Request {
            id,
            station: 0,
            payload: Payload::Features(vec![0.0]),
            arrival_ns: arrival,
            deadline_ns: deadline,
        }
    }

    fn run_one(spec: StationSpec, trace_reqs: &[Request]) -> RunReport {
        Server::try_new(vec![spec]).and_then(|s| s.try_run(trace_reqs)).expect("valid test fixture")
    }

    #[test]
    fn batch_closes_when_full() {
        let spec =
            StationSpec::simple(Toy::boxed("t", 100, 1.0), BatchPolicy::new(2, 1_000_000, 8));
        let report = run_one(spec, &[req(0, 10, u64::MAX), req(1, 10, u64::MAX)]);
        // Both arrived at 10, batch of 2 closed at 10, completed at 110.
        assert_eq!(report.responses.len(), 2);
        for r in &report.responses {
            assert_eq!(r.outcome, Outcome::Completed);
            assert_eq!(r.finish_ns, 110);
        }
        assert_eq!(report.stations[0].batches, 1);
    }

    #[test]
    fn batch_closes_on_wait_timeout() {
        let spec = StationSpec::simple(Toy::boxed("t", 100, 1.0), BatchPolicy::new(8, 500, 16));
        let report = run_one(spec, &[req(0, 10, u64::MAX)]);
        // Lone request waits max_wait = 500, closes at 510, done at 610.
        assert_eq!(report.responses[0].finish_ns, 610);
        assert_eq!(report.responses[0].latency_ns(), 600);
    }

    #[test]
    fn full_queue_rejects() {
        // Service is long, so request 0 occupies the lane while 1 waits
        // in the single queue slot and 2 bounces off.
        let spec = StationSpec::simple(Toy::boxed("t", 10_000, 1.0), BatchPolicy::new(1, 0, 1));
        let report =
            run_one(spec, &[req(0, 0, u64::MAX), req(1, 5, u64::MAX), req(2, 6, u64::MAX)]);
        let outcomes: Vec<(u64, Outcome)> =
            report.responses.iter().map(|r| (r.id, r.outcome)).collect();
        assert!(outcomes.contains(&(2, Outcome::Rejected)));
        assert_eq!(report.stations[0].rejected, 1);
        assert_eq!(report.stations[0].arrived, 3);
        // The rejected response carries the rejection instant.
        let rej = report.responses.iter().find(|r| r.id == 2).expect("rejected response");
        assert_eq!(rej.finish_ns, 6);
    }

    #[test]
    fn expired_requests_are_shed_at_close() {
        // Request 1 queues behind a 10 µs batch and its 2 µs deadline
        // passes before the lane frees up: shed, never served.
        let spec = StationSpec::simple(Toy::boxed("t", 10_000, 1.0), BatchPolicy::new(1, 0, 4));
        let report = run_one(spec, &[req(0, 0, u64::MAX), req(1, 5, 2_000)]);
        let shed = report.responses.iter().find(|r| r.id == 1).expect("response for 1");
        assert_eq!(shed.outcome, Outcome::Shed);
        assert_eq!(shed.finish_ns, 10_000, "shed at the batch-close instant");
        assert!(shed.output.is_none());
        assert_eq!(report.stations[0].shed, 1);
    }

    #[test]
    fn ladder_steps_down_and_recovers() {
        // Primary needs 1000 ns against an 800 ns deadline budget (miss);
        // fallback needs 10 ns (clean). miss_streak 2, recover after 2.
        let spec = StationSpec::with_fallback(
            Toy::boxed("analog", 1_000, 1.0),
            BatchPolicy::new(1, 0, 4),
            Toy::boxed("digital", 10, 2.0),
            DegradePolicy::new(2, 2),
        );
        // Arrivals far apart so each is its own batch.
        let trace: Vec<Request> = (0..6).map(|k| req(k, 10_000 * k, 10_000 * k + 800)).collect();
        let report = run_one(spec, &trace);
        let served_by: Vec<f32> = report
            .responses
            .iter()
            .filter_map(|r| match &r.output {
                Some(Output::Scores(v)) => v.first().copied(),
                _ => None,
            })
            .collect();
        // Batches 0,1 on primary (miss, miss) -> step down; 2,3 on
        // fallback (clean, clean) -> recover; 4 on primary (miss), 5 on
        // primary (miss -> step down again at streak 2).
        assert_eq!(served_by, vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
        let m = &report.stations[0];
        assert_eq!(m.fallback_switches, 2);
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.degraded_batches, 2);
        assert_eq!(m.deadline_misses, 4);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn reruns_are_bit_identical() {
        let mk = || StationSpec::simple(Toy::boxed("t", 777, 0.5), BatchPolicy::new(3, 1_500, 6));
        let trace: Vec<Request> = (0..40).map(|k| req(k, k * 400, k * 400 + 5_000)).collect();
        let a = run_one(mk(), &trace);
        let b = run_one(mk(), &trace);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.duration_ns, b.duration_ns);
        assert_eq!(a.stations[0].latencies, b.stations[0].latencies);
    }

    #[test]
    fn unsorted_traces_are_rejected() {
        let spec = StationSpec::simple(Toy::boxed("t", 1, 0.0), BatchPolicy::new(1, 0, 1));
        let server = Server::try_new(vec![spec]).expect("one station");
        let err = server.try_run(&[req(0, 10, 20), req(1, 5, 20)]);
        assert_eq!(err.err(), Some(ServeError::UnsortedTrace { position: 1 }));
    }

    #[test]
    fn unknown_stations_are_rejected() {
        let spec = StationSpec::simple(Toy::boxed("t", 1, 0.0), BatchPolicy::new(1, 0, 1));
        let server = Server::try_new(vec![spec]).expect("one station");
        let mut r = req(7, 10, 20);
        r.station = 3;
        let err = server.try_run(&[r]);
        assert_eq!(
            err.err(),
            Some(ServeError::UnknownStation { request_id: 7, station: 3, stations: 1 })
        );
    }

    #[test]
    fn empty_spec_list_is_rejected() {
        assert_eq!(Server::try_new(Vec::new()).err(), Some(ServeError::NoStations));
    }

    #[test]
    fn owned_run_matches_borrowed_run() {
        let mk = || StationSpec::simple(Toy::boxed("t", 777, 0.5), BatchPolicy::new(3, 1_500, 6));
        let trace: Vec<Request> = (0..40).map(|k| req(k, k * 400, k * 400 + 5_000)).collect();
        let borrowed =
            Server::try_new(vec![mk()]).and_then(|s| s.try_run(&trace)).expect("valid fixture");
        let owned = Server::try_new(vec![mk()])
            .and_then(|s| s.try_run_owned(trace))
            .expect("valid fixture");
        assert_eq!(borrowed.render(), owned.render());
        assert_eq!(borrowed.duration_ns, owned.duration_ns);
    }

    #[test]
    fn owned_run_validates_like_borrowed_run() {
        let spec = StationSpec::simple(Toy::boxed("t", 1, 0.0), BatchPolicy::new(1, 0, 1));
        let server = Server::try_new(vec![spec]).expect("one station");
        let err = server.try_run_owned(vec![req(0, 10, 20), req(1, 5, 20)]);
        assert_eq!(err.err(), Some(ServeError::UnsortedTrace { position: 1 }));
    }
}
