//! The `Backend` trait: one surface over all four paper workloads.
//!
//! A backend is a *simulated accelerator lane*: it computes real outputs
//! (so accuracy-bearing experiments can run through the serving path) and
//! it prices a closed batch with a deterministic analytic service-time
//! model (so the scheduler's virtual clock never depends on host speed).
//! Compute and time are deliberately decoupled — the simulator may take
//! milliseconds of host time to produce a batch the model says costs
//! 40 µs of device time.

use crate::request::{Output, Payload, Request};
use enw_numerics::rng::Rng64;

/// A servable workload lane.
pub trait Backend {
    /// Human-readable lane name (also used in reports).
    fn name(&self) -> &str;

    /// Modeled device time (ns) to serve a closed batch of `batch`
    /// requests. Must be deterministic, total, and at least 1 for
    /// `batch >= 1` so the event loop always moves forward.
    fn service_ns(&self, batch: usize) -> u64;

    /// Computes one output per request, in request order. Results must be
    /// bit-identical at any `ENW_THREADS` setting (backends parallelize
    /// only through `enw-parallel`'s fixed-chunk primitives).
    fn serve(&mut self, batch: &[Request]) -> Vec<Output>;

    /// [`serve`](Backend::serve) into a caller-owned output buffer (`out`
    /// is cleared, then filled with one output per request, in request
    /// order). The default delegates to `serve` and moves the results;
    /// allocation-disciplined backends override it so a warm buffer is
    /// refilled in place and the scheduler's steady-state loop performs no
    /// per-request heap allocation.
    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        out.clear();
        out.append(&mut self.serve(batch));
    }

    /// Draws a payload this backend understands — used by the load
    /// generator so traffic always matches its lane.
    fn make_payload(&self, rng: &mut Rng64) -> Payload;
}

/// Affine batch service-time model: `setup + per_item * batch` ns.
///
/// `setup` covers per-batch overheads (operand staging, DAC programming,
/// kernel launch), `per_item` the marginal request. Constants are
/// representative, documented at each backend's construction site, and —
/// crucially — fixed, so simulated latencies are reproducible anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Per-batch fixed cost in nanoseconds.
    pub setup_ns: u64,
    /// Per-request marginal cost in nanoseconds.
    pub per_item_ns: u64,
}

impl ServiceModel {
    /// Modeled time for a batch (at least 1 ns for non-empty batches).
    pub fn ns(&self, batch: usize) -> u64 {
        if batch == 0 {
            return 0;
        }
        self.setup_ns.saturating_add(self.per_item_ns.saturating_mul(batch as u64)).max(1)
    }

    /// Steady-state capacity in requests per second at batch size `b`
    /// (the lane serves back-to-back batches of `b`).
    pub fn capacity_qps(&self, b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        b as f64 / (self.ns(b) as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_model_prices_batches() {
        let m = ServiceModel { setup_ns: 100, per_item_ns: 10 };
        assert_eq!(m.ns(0), 0);
        assert_eq!(m.ns(1), 110);
        assert_eq!(m.ns(8), 180);
    }

    #[test]
    fn zero_model_still_advances_time() {
        let m = ServiceModel { setup_ns: 0, per_item_ns: 0 };
        assert_eq!(m.ns(5), 1, "non-empty batches must cost at least 1 ns");
    }

    #[test]
    fn capacity_grows_with_batch_under_fixed_setup() {
        let m = ServiceModel { setup_ns: 1_000, per_item_ns: 100 };
        assert!(m.capacity_qps(16) > m.capacity_qps(1));
        assert_eq!(m.capacity_qps(0), 0.0);
    }
}
