//! Bounded per-station admission queues.
//!
//! Admission control is the outermost defence of the SLA: a queue that
//! grows without bound converts overload into unbounded latency for
//! *everyone*, while a bounded queue converts it into explicit
//! [`Admission::Rejected`] results the client can retry elsewhere
//! (backpressure). FIFO order is part of the determinism contract — the
//! batch a request lands in depends only on the trace, never on host
//! scheduling.

use crate::error::ServeError;
use crate::request::Request;
use std::collections::VecDeque;

/// A FIFO queue with a hard capacity.
#[derive(Debug, Clone, Default)]
pub struct BoundedQueue {
    items: VecDeque<Request>,
    cap: usize,
}

impl BoundedQueue {
    /// A queue holding at most `cap` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (a station that can never hold work is a
    /// configuration error, not a policy).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        BoundedQueue { items: VecDeque::with_capacity(cap.min(1024)), cap }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Waiting requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Arrival instant of the oldest waiting request, if any.
    pub fn oldest_arrival_ns(&self) -> Option<u64> {
        self.items.front().map(|r| r.arrival_ns)
    }

    /// Offers a request; a full queue refuses it with
    /// [`ServeError::QueueFull`] (backpressure).
    pub fn try_offer(&mut self, req: Request) -> Result<(), ServeError> {
        if self.items.len() >= self.cap {
            return Err(ServeError::QueueFull { capacity: self.cap });
        }
        self.items.push_back(req);
        Ok(())
    }

    /// Removes and returns up to `n` oldest requests, in FIFO order.
    pub fn take(&mut self, n: usize) -> Vec<Request> {
        let mut out = Vec::new();
        self.take_into(n, &mut out);
        out
    }

    /// [`take`](BoundedQueue::take) into a caller-owned buffer: `out` is
    /// cleared, then filled with up to `n` oldest requests in FIFO order.
    /// A warm buffer is refilled in place, so steady-state batch closes
    /// perform no per-request allocation.
    pub fn take_into(&mut self, n: usize, out: &mut Vec<Request>) {
        out.clear();
        let k = n.min(self.items.len());
        out.extend(self.items.drain(..k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Payload;

    fn req(id: u64, arrival_ns: u64) -> Request {
        Request {
            id,
            station: 0,
            payload: Payload::Features(vec![]),
            arrival_ns,
            deadline_ns: u64::MAX,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.try_offer(req(1, 10)), Ok(()));
        assert_eq!(q.try_offer(req(2, 11)), Ok(()));
        assert_eq!(
            q.try_offer(req(3, 12)),
            Err(ServeError::QueueFull { capacity: 2 }),
            "cap 2 must reject the third"
        );
        assert_eq!(q.oldest_arrival_ns(), Some(10));
        let taken = q.take(5);
        assert_eq!(taken.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.oldest_arrival_ns(), None);
    }

    #[test]
    fn take_respects_n() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            let _ = q.try_offer(req(i, i));
        }
        let first = q.take(2);
        assert_eq!(first.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn take_into_reuses_the_buffer() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            let _ = q.try_offer(req(i, i));
        }
        let mut buf = Vec::new();
        q.take_into(4, &mut buf);
        assert_eq!(buf.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let cap = buf.capacity();
        q.take_into(4, &mut buf);
        assert_eq!(buf.iter().map(|r| r.id).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(buf.capacity(), cap, "warm buffer must be reused, not reallocated");
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_capacity_is_rejected() {
        BoundedQueue::new(0);
    }
}
