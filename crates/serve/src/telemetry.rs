//! Latency/throughput/shed-rate telemetry.
//!
//! Percentiles use the nearest-rank definition over exact integer
//! nanosecond latencies — no interpolation, no floating-point
//! accumulation across requests — so two runs that served the same
//! virtual-time schedule report *identical* p50/p95/p99, not merely
//! close ones.

/// Nearest-rank percentile of a sorted latency list (0 for empty input).
///
/// # Panics
///
/// Panics if `pct` is outside `(0, 100]`.
pub fn percentile_ns(sorted: &[u64], pct: f64) -> u64 {
    assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    sorted.get(idx).copied().unwrap_or_default()
}

/// Summary statistics of one lane's served latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Served responses (on-time + late).
    pub count: u64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Worst served latency (ns).
    pub max_ns: u64,
}

/// Counters and latencies for one station over a run.
#[derive(Debug, Clone, Default)]
pub struct StationMetrics {
    /// Lane name (primary backend's).
    pub name: String,
    /// Requests that arrived for this station.
    pub arrived: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests dropped at batch close (deadline already passed).
    pub shed: u64,
    /// Requests served within their deadline.
    pub completed: u64,
    /// Requests served past their deadline.
    pub deadline_misses: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches executed on the fallback backend.
    pub degraded_batches: u64,
    /// Times the ladder stepped down to the fallback.
    pub fallback_switches: u64,
    /// Times the ladder stepped back up to the primary.
    pub recoveries: u64,
    /// Latency (ns) of every served request, in completion order.
    pub latencies_ns: Vec<u64>,
}

impl StationMetrics {
    /// Fresh metrics for a named lane.
    pub fn new(name: &str) -> Self {
        StationMetrics { name: name.to_string(), ..Default::default() }
    }

    /// Served requests (on-time + late).
    pub fn served(&self) -> u64 {
        self.completed + self.deadline_misses
    }

    /// Percentile summary of served latencies.
    pub fn summary(&self) -> LatencySummary {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        LatencySummary {
            count: sorted.len() as u64,
            p50_ns: percentile_ns(&sorted, 50.0),
            p95_ns: percentile_ns(&sorted, 95.0),
            p99_ns: percentile_ns(&sorted, 99.0),
            max_ns: sorted.last().copied().unwrap_or_default(),
        }
    }

    /// Fraction of arrived requests dropped at batch close.
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed, self.arrived)
    }

    /// Fraction of arrived requests refused at admission.
    pub fn reject_rate(&self) -> f64 {
        ratio(self.rejected, self.arrived)
    }

    /// Fraction of served requests that finished late.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.deadline_misses, self.served())
    }

    /// Served goodput (on-time responses per second of virtual time).
    pub fn goodput_qps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (duration_ns as f64 / 1e9)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 50.0), 50);
        assert_eq!(percentile_ns(&sorted, 95.0), 95);
        assert_eq!(percentile_ns(&sorted, 99.0), 99);
        assert_eq!(percentile_ns(&sorted, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 1.0), 7, "single sample is every percentile");
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_domain_is_checked() {
        percentile_ns(&[1], 0.0);
    }

    #[test]
    fn summary_and_rates() {
        let mut m = StationMetrics::new("lane");
        m.arrived = 10;
        m.rejected = 2;
        m.shed = 1;
        m.completed = 6;
        m.deadline_misses = 1;
        m.latencies_ns = vec![30, 10, 20, 40, 50, 60, 70];
        let s = m.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.p50_ns, 40);
        assert_eq!(s.max_ns, 70);
        assert!((m.shed_rate() - 0.1).abs() < 1e-12);
        assert!((m.reject_rate() - 0.2).abs() < 1e-12);
        assert!((m.miss_rate() - 1.0 / 7.0).abs() < 1e-12);
        assert!((m.goodput_qps(1_000_000_000) - 6.0).abs() < 1e-12);
        assert_eq!(m.goodput_qps(0), 0.0);
    }

    #[test]
    fn empty_metrics_are_all_zero() {
        let m = StationMetrics::new("idle");
        assert_eq!(m.summary(), LatencySummary::default());
        assert_eq!(m.shed_rate(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
    }
}
