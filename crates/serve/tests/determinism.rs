//! End-to-end determinism of the serving runtime (acceptance criterion):
//! two runs with the same seed and trace must produce byte-identical
//! response streams and identical p50/p95/p99/shed-rate figures at any
//! `ENW_THREADS` setting — with the *real* paper backends, not stubs.

use enw_parallel as parallel;
use enw_serve::presets::{saturation_qps, traffic_classes, try_fleet};
use enw_serve::{generate_trace, LoadSpec, Outcome, RunReport};

const SEED: u64 = 20_200_309;

/// One full simulated run at `qps_frac` times the fleet's saturation QPS.
fn run_at(seed: u64, qps_frac: f64, duration_ns: u64) -> RunReport {
    let server = try_fleet(seed).expect("preset fleet");
    let classes = traffic_classes();
    let qps = qps_frac * saturation_qps(&server, &classes);
    let spec = LoadSpec { qps, duration_ns, seed: seed ^ 0x9e37_79b9 };
    let trace = generate_trace(&server, &spec, &classes);
    assert!(!trace.is_empty(), "trace must carry load");
    server.try_run(&trace).expect("preset trace is sorted and targets known stations")
}

/// Everything the experiment reports, rendered to comparable bytes.
fn fingerprint(report: &RunReport) -> String {
    let mut s = report.render();
    for m in &report.stations {
        let sum = m.summary();
        s.push_str(&format!(
            "{} p50={} p95={} p99={} shed={:.6} reject={:.6} miss={:.6} switches={} recov={}\n",
            m.name,
            sum.p50_ns,
            sum.p95_ns,
            sum.p99_ns,
            m.shed_rate(),
            m.reject_rate(),
            m.miss_rate(),
            m.fallback_switches,
            m.recoveries,
        ));
    }
    s
}

#[test]
fn same_seed_same_bytes_across_thread_counts() {
    let reference = parallel::with_threads(1, || fingerprint(&run_at(SEED, 0.6, 30_000_000)));
    for threads in [2, 4, 8] {
        let got = parallel::with_threads(threads, || fingerprint(&run_at(SEED, 0.6, 30_000_000)));
        assert_eq!(got, reference, "ENW_THREADS={threads} changed the response stream");
    }
    // And a plain re-run without any thread pinning.
    assert_eq!(fingerprint(&run_at(SEED, 0.6, 30_000_000)), reference);
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(&run_at(SEED, 0.6, 20_000_000));
    let b = fingerprint(&run_at(SEED + 1, 0.6, 20_000_000));
    assert_ne!(a, b, "distinct seeds should name distinct streams");
}

#[test]
fn undersaturated_fleet_serves_cleanly() {
    let report = run_at(SEED, 0.25, 30_000_000);
    let arrived: u64 = report.stations.iter().map(|m| m.arrived).sum();
    let completed: u64 = report.stations.iter().map(|m| m.completed).sum();
    assert!(arrived > 100, "need a meaningful sample, got {arrived}");
    for m in &report.stations {
        assert_eq!(m.rejected, 0, "{} rejected under light load", m.name);
    }
    assert!(
        completed as f64 >= 0.95 * arrived as f64,
        "light load should mostly complete on time: {completed}/{arrived}"
    );
}

#[test]
fn oversaturated_fleet_sheds_and_degrades() {
    let report = run_at(SEED, 3.0, 30_000_000);
    let dropped: u64 = report.stations.iter().map(|m| m.rejected + m.shed).sum();
    assert!(dropped > 0, "3x saturation must trigger backpressure somewhere");
    // Every arrived request is accounted for exactly once.
    for m in &report.stations {
        assert_eq!(
            m.arrived,
            m.rejected + m.shed + m.completed + m.deadline_misses,
            "{} loses requests",
            m.name
        );
    }
    // Responses cover rejections too, tagged with their outcome.
    let arrived: u64 = report.stations.iter().map(|m| m.arrived).sum();
    assert_eq!(report.responses.len() as u64, arrived);
    assert!(report.responses.iter().any(|r| r.outcome != Outcome::Completed));
}

#[test]
fn analog_lane_falls_back_under_sustained_overload() {
    // Hammer only the crossbar lane with a tight deadline so the ladder
    // has to step down to the digital fallback.
    let server = try_fleet(SEED).expect("preset fleet");
    let mut classes = traffic_classes();
    classes.truncate(1);
    classes[0].deadline_ns = 300_000; // tighter than an 8-deep analog batch
    let qps = 4.0 * saturation_qps(&server, &classes);
    let spec = LoadSpec { qps, duration_ns: 30_000_000, seed: SEED };
    let trace = generate_trace(&server, &spec, &classes);
    let report = server.try_run(&trace).expect("generated trace is valid");
    let lane = &report.stations[0];
    assert!(lane.fallback_switches > 0, "ladder never engaged: {lane:?}");
    assert!(lane.degraded_batches > 0);
}
