//! CLI for the workspace lint gate.
//!
//! ```text
//! cargo run -p enw-analyze                         # lint, write analyze-report.json
//! cargo run -p enw-analyze -- --root X             # lint a different tree
//! cargo run -p enw-analyze -- --warnings           # also list warn-level findings
//! cargo run -p enw-analyze -- --baseline FILE      # additionally fail on findings
//!                                                  # absent from the baseline report
//! cargo run -p enw-analyze -- --write-baseline F   # snapshot the current report as
//!                                                  # a baseline and exit 0
//! cargo run -p enw-analyze -- --audit-waivers      # fail on stale lint.toml entries
//! cargo run -p enw-analyze -- --no-report
//! ```
//!
//! Exit codes: 0 clean (warns allowed), 1 deny findings / baseline
//! regressions / stale waivers under `--audit-waivers`, 2 usage/config
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut audit_waivers = false;
    let mut write_report = true;
    let mut show_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--audit-waivers" => audit_waivers = true,
            "--no-report" => write_report = false,
            "--warnings" => show_warnings = true,
            "--help" | "-h" => {
                println!(
                    "usage: enw-analyze [--root DIR] [--json FILE] [--baseline FILE] \
                     [--write-baseline FILE] [--audit-waivers] [--no-report] [--warnings]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("enw-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root.or_else(|| enw_analyze::find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("enw-analyze: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };
    let analysis = match enw_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("enw-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("enw-analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "enw-analyze: wrote baseline {} ({} findings, {} waived)",
            path.display(),
            analysis.findings.len(),
            analysis.waived.len()
        );
        return ExitCode::SUCCESS;
    }

    for f in &analysis.findings {
        if f.severity == enw_analyze::Severity::Warn && !show_warnings {
            continue;
        }
        println!("{f}");
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }

    // Baseline diff: a committed baseline accepts existing warn-level
    // debt; anything whose fingerprint is not in it is a regression.
    let mut regressions = 0usize;
    if let Some(path) = &baseline {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("enw-analyze: failed to read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let accepted = enw_analyze::baseline_fingerprints(&contents);
        for f in analysis.new_vs_baseline(&accepted) {
            println!("new vs baseline: {f}");
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
            regressions += 1;
        }
    }

    let stale = if audit_waivers {
        let stale = analysis.stale_waivers();
        for f in &stale {
            println!("waiver audit: {f}");
        }
        stale.len()
    } else {
        0
    };

    let denies = analysis.deny_count();
    let warns = analysis.warn_count();
    println!(
        "enw-analyze: {} files, {} manifests; {} deny, {} warn, {} waived{}{}",
        analysis.files_scanned,
        analysis.manifests_checked,
        denies,
        warns,
        analysis.waived.len(),
        if baseline.is_some() { format!(", {regressions} new vs baseline") } else { String::new() },
        if audit_waivers { format!(", {stale} stale waivers") } else { String::new() },
    );
    if warns > 0 && !show_warnings {
        println!("enw-analyze: rerun with --warnings (or read the JSON report) for warn details");
    }
    if write_report {
        let path = json.unwrap_or_else(|| root.join("analyze-report.json"));
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("enw-analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if denies > 0 || regressions > 0 || stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
