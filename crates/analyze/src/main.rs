//! CLI for the workspace lint gate.
//!
//! ```text
//! cargo run -p enw-analyze                # lint the workspace, write analyze-report.json
//! cargo run -p enw-analyze -- --root X    # lint a different tree
//! cargo run -p enw-analyze -- --warnings  # also list warn-level findings
//! cargo run -p enw-analyze -- --no-report
//! ```
//!
//! Exit codes: 0 clean (warns allowed), 1 deny findings, 2 usage/config
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut write_report = true;
    let mut show_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--no-report" => write_report = false,
            "--warnings" => show_warnings = true,
            "--help" | "-h" => {
                println!(
                    "usage: enw-analyze [--root DIR] [--json FILE] [--no-report] [--warnings]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("enw-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root.or_else(|| enw_analyze::find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("enw-analyze: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };
    let analysis = match enw_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("enw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &analysis.findings {
        if f.severity == enw_analyze::Severity::Warn && !show_warnings {
            continue;
        }
        println!("{f}");
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }
    let denies = analysis.deny_count();
    let warns = analysis.warn_count();
    println!(
        "enw-analyze: {} files, {} manifests; {} deny, {} warn, {} waived",
        analysis.files_scanned,
        analysis.manifests_checked,
        denies,
        warns,
        analysis.waived.len()
    );
    if warns > 0 && !show_warnings {
        println!("enw-analyze: rerun with --warnings (or read the JSON report) for warn details");
    }
    if write_report {
        let path = json.unwrap_or_else(|| root.join("analyze-report.json"));
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("enw-analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
