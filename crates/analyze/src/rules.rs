//! Source-level lint rules over the token stream.
//!
//! Rule catalogue (stable ids; severities are built in):
//!
//! | id       | severity | what it enforces |
//! |----------|----------|------------------|
//! | ENW-D001 | deny     | no `HashMap`/`HashSet` in kernel crates (iteration order would feed numeric results) |
//! | ENW-D002 | deny     | no `Instant`/`SystemTime` outside `bench`/`parallel` (ambient time in kernels breaks reproducibility) |
//! | ENW-D003 | deny     | no ambient entropy (`thread_rng`, `OsRng`, `RandomState`, …) outside `bench`/`parallel` |
//! | ENW-D004 | deny     | no `thread::spawn` outside `enw-parallel` (all parallelism goes through the deterministic runtime) |
//! | ENW-P001 | deny     | no `.unwrap()` in non-test library code |
//! | ENW-P002 | deny     | no `.expect(…)` in non-test library code |
//! | ENW-P003 | deny     | no `panic!`/`todo!`/`unimplemented!`/`unreachable!` in non-test library code |
//! | ENW-P004 | warn     | no indexing by integer literal (`xs[0]`) in non-test library code |
//! | ENW-P005 | deny     | no `thread::scope` outside `enw-parallel` (scoped spawn-join bypasses the persistent worker pool) |
//! | ENW-A002 | deny     | only `crates/bench` may name `BENCH_*` report artifacts |
//! | ENW-A004 | deny     | no public `*_unchecked`/`*unwrap*` constructors in kernel crates (validation belongs in builders / `try_*` APIs) |
//! | ENW-M001 | deny     | no heap allocation (`vec!`, `Vec::with_capacity`, `.to_vec()`, `.clone()`) inside functions annotated `// enw:hot` in kernel crates |
//!
//! Test code (bodies of `#[cfg(test)]` items and `#[test]` fns), doc
//! comments, binaries under `src/bin/`, bench targets, and integration
//! tests are exempt from the panic-freedom rules; determinism rules apply
//! per crate regardless of target kind.

use crate::lexer::{self, TokKind, Token};
use crate::report::{Finding, Severity};

/// Crates whose numeric/kernel paths must stay free of hash collections
/// (ENW-D001). `nn` and `core` may use maps for bookkeeping/reports.
/// `serve` is included: batch composition and response order feed the
/// byte-exact response stream, so no hash iteration order may touch them.
/// `trace` is included: its merged totals are part of the reproducible
/// output (TraceReport bytes), so hash iteration order may not feed them.
pub const KERNEL_CRATES: &[&str] =
    &["numerics", "crossbar", "cam", "xmann", "mann", "recsys", "serve", "trace"];

/// Crates allowed to read wall-clock time or ambient entropy
/// (ENW-D002/D003): the bench harness times things by design, and the
/// parallel runtime sizes its pool from the host.
pub const AMBIENT_ALLOWED: &[&str] = &["bench", "parallel"];

/// The only crate allowed to spawn threads (ENW-D004).
pub const SPAWN_ALLOWED: &[&str] = &["parallel"];

/// Identifiers that mean ambient entropy when they appear at all.
const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState"];

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary target (`src/bin/…`, `src/main.rs`): panic rules off.
    Bin,
    /// Test or bench target: panic rules off.
    Test,
    /// Example: panic rules off.
    Example,
}

/// Classifies a workspace-relative path into its owning crate (the
/// directory name under `crates/`) and target kind. Workspace-level
/// `tests/` and `examples/` are targets of the bench crate.
pub fn classify(rel_path: &str) -> (Option<String>, FileKind) {
    let p = rel_path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        let crate_name = rest.split('/').next().unwrap_or("").to_string();
        let kind = if rest.contains("/src/bin/") || rest.ends_with("src/main.rs") {
            FileKind::Bin
        } else if rest.contains("/tests/") || rest.contains("/benches/") {
            FileKind::Test
        } else if rest.contains("/examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        (Some(crate_name), kind)
    } else if p.starts_with("tests/") {
        (Some("bench".to_string()), FileKind::Test)
    } else if p.starts_with("examples/") {
        (Some("bench".to_string()), FileKind::Example)
    } else {
        (None, FileKind::Lib)
    }
}

/// Lints one source file; `rel_path` drives crate/target classification.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let (crate_name, kind) = classify(rel_path);
    let crate_name = crate_name.unwrap_or_default();
    let toks = lexer::tokenize(src);
    let regions = lexer::test_regions(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };
    let mut out = Vec::new();
    let mut push = |rule: &'static str, severity: Severity, line: u32, message: String| {
        out.push(Finding {
            rule,
            severity,
            path: rel_path.to_string(),
            line,
            message,
            snippet: snippet(line),
        });
    };

    let kernel = KERNEL_CRATES.contains(&crate_name.as_str());
    let ambient_ok = AMBIENT_ALLOWED.contains(&crate_name.as_str());
    let spawn_ok = SPAWN_ALLOWED.contains(&crate_name.as_str());
    let panic_rules = kind == FileKind::Lib;

    for (i, t) in toks.iter().enumerate() {
        if lexer::in_regions(&regions, i) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if kernel && (name == "HashMap" || name == "HashSet") {
                    push(
                        "ENW-D001",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}` in kernel crate `{crate_name}`: hash iteration order \
                             may feed numeric results; use BTreeMap/BTreeSet or a sorted Vec"
                        ),
                    );
                }
                if !ambient_ok && (name == "Instant" || name == "SystemTime") {
                    push(
                        "ENW-D002",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient wall-clock (`{name}`) outside bench/parallel breaks \
                             bit-reproducibility; plumb timings through the bench harness"
                        ),
                    );
                }
                if !ambient_ok && ENTROPY_IDENTS.contains(&name) {
                    push(
                        "ENW-D003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient entropy (`{name}`) outside bench/parallel; all \
                             randomness must come from a seeded `Rng64`"
                        ),
                    );
                }
                if !spawn_ok
                    && name == "thread"
                    && matches_seq(&toks, i + 1, &[":", ":"])
                    && toks.get(i + 3).map(|t| t.is_ident("spawn")) == Some(true)
                {
                    push(
                        "ENW-D004",
                        Severity::Deny,
                        t.line,
                        "raw `thread::spawn` outside `enw-parallel`; use the deterministic \
                         runtime (`enw_parallel::map_chunks` and friends)"
                            .to_string(),
                    );
                }
                if !spawn_ok
                    && name == "thread"
                    && matches_seq(&toks, i + 1, &[":", ":"])
                    && toks.get(i + 3).map(|t| t.is_ident("scope")) == Some(true)
                {
                    push(
                        "ENW-P005",
                        Severity::Deny,
                        t.line,
                        "`thread::scope` outside `enw-parallel`: scoped spawn-join pays \
                         thread start-up on every call and bypasses the persistent worker \
                         pool; use `enw_parallel::map_chunks`/`for_each_chunk_mut`"
                            .to_string(),
                    );
                }
                if panic_rules
                    && (name == "panic"
                        || name == "todo"
                        || name == "unimplemented"
                        || name == "unreachable")
                    && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true)
                {
                    push(
                        "ENW-P003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}!` in library code; return a Result, use a documented \
                             `assert!` with an invariant message, or waive in lint.toml"
                        ),
                    );
                }
                if kernel
                    && kind == FileKind::Lib
                    && name == "pub"
                    && toks.get(i + 1).map(|t| t.is_punct('(')) != Some(true)
                {
                    if let Some(fn_name) = public_fn_name(&toks, i + 1) {
                        if fn_name.ends_with("_unchecked") || fn_name.contains("unwrap") {
                            push(
                                "ENW-A004",
                                Severity::Deny,
                                t.line,
                                format!(
                                    "public `{fn_name}` in kernel crate `{crate_name}` bypasses \
                                     validated construction; expose a builder or a `try_*` \
                                     Result API instead"
                                ),
                            );
                        }
                    }
                }
                if panic_rules
                    && (name == "unwrap" || name == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
                {
                    let rule = if name == "unwrap" { "ENW-P001" } else { "ENW-P002" };
                    push(
                        rule,
                        Severity::Deny,
                        t.line,
                        format!(
                            "`.{name}(…)` in library code; restructure (match / map_or / \
                             total_cmp), return a Result, or waive in lint.toml with a \
                             justification"
                        ),
                    );
                }
            }
            // `analyze` is exempt from ENW-A002: the rule implementation and
            // its diagnostics must be able to name the artifact prefix.
            TokKind::Str
                if crate_name != "bench"
                    && crate_name != "analyze"
                    && t.text.contains("BENCH_") =>
            {
                push(
                    "ENW-A002",
                    Severity::Deny,
                    t.line,
                    "`BENCH_*` report artifacts may only be produced by `crates/bench`".to_string(),
                );
            }
            TokKind::Punct
                if panic_rules
                    && t.is_punct('[')
                    && i > 0
                    && toks.get(i + 1).map(|t| t.kind == TokKind::Int) == Some(true)
                    && toks.get(i + 2).map(|t| t.is_punct(']')) == Some(true)
                    && is_indexable(&toks[i - 1]) =>
            {
                push(
                    "ENW-P004",
                    Severity::Warn,
                    t.line,
                    "indexing by integer literal can panic; prefer `.first()`, \
                     `.get(n)`, or destructuring"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    if kernel {
        for region in hot_regions(&lines, &toks) {
            scan_hot_region(&toks, &region, &mut push);
        }
    }
    out
}

/// A `// enw:hot` function body: token range plus the function's name.
struct HotRegion {
    name: String,
    start: usize,
    end: usize,
}

/// Finds functions annotated with a `// enw:hot` marker line. The lexer
/// drops comments, so markers come from the raw source lines; the body is
/// then brace-matched over the token stream starting at the first `fn`
/// after the marker.
fn hot_regions(lines: &[&str], toks: &[Token]) -> Vec<HotRegion> {
    let mut out = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        if l.trim() != "// enw:hot" {
            continue;
        }
        let marker_line = (idx + 1) as u32;
        let Some(fn_idx) = toks.iter().position(|t| t.line > marker_line && t.is_ident("fn"))
        else {
            continue;
        };
        let name = match toks.get(fn_idx + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => continue,
        };
        let Some(open) = (fn_idx..toks.len()).find(|&k| toks[k].is_punct('{')) else {
            continue;
        };
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
            }
            k += 1;
        }
        out.push(HotRegion { name, start: open + 1, end: k });
    }
    out
}

/// Flags heap-allocating constructs inside one `// enw:hot` body
/// (ENW-M001): `vec!`, `Vec::with_capacity`, `.to_vec()`, `.clone()`.
fn scan_hot_region(
    toks: &[Token],
    region: &HotRegion,
    push: &mut impl FnMut(&'static str, Severity, u32, String),
) {
    let mut hit = |line: u32, what: &str| {
        push(
            "ENW-M001",
            Severity::Deny,
            line,
            format!(
                "`{what}` allocates inside `// enw:hot` fn `{}`; reuse a caller buffer \
                 (`_into` parameter) or checkout from `enw_parallel::scratch`",
                region.name
            ),
        );
    };
    for i in region.start..region.end.min(toks.len()) {
        let t = &toks[i];
        if t.is_ident("vec") && toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true) {
            hit(t.line, "vec!");
        }
        if t.is_ident("Vec")
            && matches_seq(toks, i + 1, &[":", ":"])
            && toks.get(i + 3).map(|n| n.is_ident("with_capacity")) == Some(true)
        {
            hit(t.line, "Vec::with_capacity");
        }
        if t.is_punct('.') {
            for method in ["to_vec", "clone", "to_owned"] {
                if toks.get(i + 1).map(|n| n.is_ident(method)) == Some(true)
                    && toks.get(i + 2).map(|n| n.is_punct('(')) == Some(true)
                {
                    hit(t.line, &format!(".{method}()"));
                }
            }
        }
    }
}

/// Name of the function declared at a `pub` item starting after token
/// `i`, skipping declaration qualifiers (`const fn`, `unsafe fn`, …).
/// `None` when the item is not a function.
fn public_fn_name(toks: &[Token], mut i: usize) -> Option<String> {
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "const" | "unsafe" | "async" | "extern" => i += 1,
            _ if t.kind == TokKind::Str => i += 1, // `extern "C"` ABI string
            "fn" => {
                let name = toks.get(i + 1)?;
                return (name.kind == TokKind::Ident).then(|| name.text.clone());
            }
            _ => return None,
        }
    }
    None
}

/// True when the previous token can be the base of an index expression.
fn is_indexable(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(t.text.as_str(), "mut" | "return" | "in" | "as" | "dyn"),
        TokKind::Punct => t.is_punct(')') || t.is_punct(']'),
        _ => false,
    }
}

/// True when tokens starting at `i` are exactly the given punct sequence.
fn matches_seq(toks: &[Token], i: usize, puncts: &[&str]) -> bool {
    puncts.iter().enumerate().all(|(k, p)| {
        toks.get(i + k).map(|t| t.kind == TokKind::Punct && t.text == *p) == Some(true)
    })
}
