//! Source-level lint rules over the token stream.
//!
//! Rule catalogue (stable ids; severities are built in):
//!
//! | id       | severity | what it enforces |
//! |----------|----------|------------------|
//! | ENW-D001 | deny     | no `HashMap`/`HashSet` in kernel crates (iteration order would feed numeric results) |
//! | ENW-D002 | deny     | no `Instant`/`SystemTime` outside `bench`/`parallel` (ambient time in kernels breaks reproducibility) |
//! | ENW-D003 | deny     | no ambient entropy (`thread_rng`, `OsRng`, `RandomState`, …) outside `bench`/`parallel` |
//! | ENW-D004 | deny     | no `thread::spawn` outside `enw-parallel` (all parallelism goes through the deterministic runtime) |
//! | ENW-P001 | deny     | no `.unwrap()` in non-test library code |
//! | ENW-P002 | deny     | no `.expect(…)` in non-test library code |
//! | ENW-P003 | deny     | no `panic!`/`todo!`/`unimplemented!`/`unreachable!` in non-test library code |
//! | ENW-P004 | warn     | no indexing by integer literal (`xs[0]`) in non-test library code |
//! | ENW-A002 | deny     | only `crates/bench` may name `BENCH_*` report artifacts |
//! | ENW-A004 | deny     | no public `*_unchecked`/`*unwrap*` constructors in kernel crates (validation belongs in builders / `try_*` APIs) |
//!
//! Test code (bodies of `#[cfg(test)]` items and `#[test]` fns), doc
//! comments, binaries under `src/bin/`, bench targets, and integration
//! tests are exempt from the panic-freedom rules; determinism rules apply
//! per crate regardless of target kind.

use crate::lexer::{self, TokKind, Token};
use crate::report::{Finding, Severity};

/// Crates whose numeric/kernel paths must stay free of hash collections
/// (ENW-D001). `nn` and `core` may use maps for bookkeeping/reports.
/// `serve` is included: batch composition and response order feed the
/// byte-exact response stream, so no hash iteration order may touch them.
/// `trace` is included: its merged totals are part of the reproducible
/// output (TraceReport bytes), so hash iteration order may not feed them.
pub const KERNEL_CRATES: &[&str] =
    &["numerics", "crossbar", "cam", "xmann", "mann", "recsys", "serve", "trace"];

/// Crates allowed to read wall-clock time or ambient entropy
/// (ENW-D002/D003): the bench harness times things by design, and the
/// parallel runtime sizes its pool from the host.
pub const AMBIENT_ALLOWED: &[&str] = &["bench", "parallel"];

/// The only crate allowed to spawn threads (ENW-D004).
pub const SPAWN_ALLOWED: &[&str] = &["parallel"];

/// Identifiers that mean ambient entropy when they appear at all.
const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState"];

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary target (`src/bin/…`, `src/main.rs`): panic rules off.
    Bin,
    /// Test or bench target: panic rules off.
    Test,
    /// Example: panic rules off.
    Example,
}

/// Classifies a workspace-relative path into its owning crate (the
/// directory name under `crates/`) and target kind. Workspace-level
/// `tests/` and `examples/` are targets of the bench crate.
pub fn classify(rel_path: &str) -> (Option<String>, FileKind) {
    let p = rel_path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        let crate_name = rest.split('/').next().unwrap_or("").to_string();
        let kind = if rest.contains("/src/bin/") || rest.ends_with("src/main.rs") {
            FileKind::Bin
        } else if rest.contains("/tests/") || rest.contains("/benches/") {
            FileKind::Test
        } else if rest.contains("/examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        (Some(crate_name), kind)
    } else if p.starts_with("tests/") {
        (Some("bench".to_string()), FileKind::Test)
    } else if p.starts_with("examples/") {
        (Some("bench".to_string()), FileKind::Example)
    } else {
        (None, FileKind::Lib)
    }
}

/// Lints one source file; `rel_path` drives crate/target classification.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let (crate_name, kind) = classify(rel_path);
    let crate_name = crate_name.unwrap_or_default();
    let toks = lexer::tokenize(src);
    let regions = lexer::test_regions(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };
    let mut out = Vec::new();
    let mut push = |rule: &'static str, severity: Severity, line: u32, message: String| {
        out.push(Finding {
            rule,
            severity,
            path: rel_path.to_string(),
            line,
            message,
            snippet: snippet(line),
        });
    };

    let kernel = KERNEL_CRATES.contains(&crate_name.as_str());
    let ambient_ok = AMBIENT_ALLOWED.contains(&crate_name.as_str());
    let spawn_ok = SPAWN_ALLOWED.contains(&crate_name.as_str());
    let panic_rules = kind == FileKind::Lib;

    for (i, t) in toks.iter().enumerate() {
        if lexer::in_regions(&regions, i) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if kernel && (name == "HashMap" || name == "HashSet") {
                    push(
                        "ENW-D001",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}` in kernel crate `{crate_name}`: hash iteration order \
                             may feed numeric results; use BTreeMap/BTreeSet or a sorted Vec"
                        ),
                    );
                }
                if !ambient_ok && (name == "Instant" || name == "SystemTime") {
                    push(
                        "ENW-D002",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient wall-clock (`{name}`) outside bench/parallel breaks \
                             bit-reproducibility; plumb timings through the bench harness"
                        ),
                    );
                }
                if !ambient_ok && ENTROPY_IDENTS.contains(&name) {
                    push(
                        "ENW-D003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient entropy (`{name}`) outside bench/parallel; all \
                             randomness must come from a seeded `Rng64`"
                        ),
                    );
                }
                if !spawn_ok
                    && name == "thread"
                    && matches_seq(&toks, i + 1, &[":", ":"])
                    && toks.get(i + 3).map(|t| t.is_ident("spawn")) == Some(true)
                {
                    push(
                        "ENW-D004",
                        Severity::Deny,
                        t.line,
                        "raw `thread::spawn` outside `enw-parallel`; use the deterministic \
                         runtime (`enw_parallel::map_chunks` and friends)"
                            .to_string(),
                    );
                }
                if panic_rules
                    && (name == "panic"
                        || name == "todo"
                        || name == "unimplemented"
                        || name == "unreachable")
                    && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true)
                {
                    push(
                        "ENW-P003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}!` in library code; return a Result, use a documented \
                             `assert!` with an invariant message, or waive in lint.toml"
                        ),
                    );
                }
                if kernel
                    && kind == FileKind::Lib
                    && name == "pub"
                    && toks.get(i + 1).map(|t| t.is_punct('(')) != Some(true)
                {
                    if let Some(fn_name) = public_fn_name(&toks, i + 1) {
                        if fn_name.ends_with("_unchecked") || fn_name.contains("unwrap") {
                            push(
                                "ENW-A004",
                                Severity::Deny,
                                t.line,
                                format!(
                                    "public `{fn_name}` in kernel crate `{crate_name}` bypasses \
                                     validated construction; expose a builder or a `try_*` \
                                     Result API instead"
                                ),
                            );
                        }
                    }
                }
                if panic_rules
                    && (name == "unwrap" || name == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
                {
                    let rule = if name == "unwrap" { "ENW-P001" } else { "ENW-P002" };
                    push(
                        rule,
                        Severity::Deny,
                        t.line,
                        format!(
                            "`.{name}(…)` in library code; restructure (match / map_or / \
                             total_cmp), return a Result, or waive in lint.toml with a \
                             justification"
                        ),
                    );
                }
            }
            // `analyze` is exempt from ENW-A002: the rule implementation and
            // its diagnostics must be able to name the artifact prefix.
            TokKind::Str
                if crate_name != "bench"
                    && crate_name != "analyze"
                    && t.text.contains("BENCH_") =>
            {
                push(
                    "ENW-A002",
                    Severity::Deny,
                    t.line,
                    "`BENCH_*` report artifacts may only be produced by `crates/bench`".to_string(),
                );
            }
            TokKind::Punct
                if panic_rules
                    && t.is_punct('[')
                    && i > 0
                    && toks.get(i + 1).map(|t| t.kind == TokKind::Int) == Some(true)
                    && toks.get(i + 2).map(|t| t.is_punct(']')) == Some(true)
                    && is_indexable(&toks[i - 1]) =>
            {
                push(
                    "ENW-P004",
                    Severity::Warn,
                    t.line,
                    "indexing by integer literal can panic; prefer `.first()`, \
                     `.get(n)`, or destructuring"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    out
}

/// Name of the function declared at a `pub` item starting after token
/// `i`, skipping declaration qualifiers (`const fn`, `unsafe fn`, …).
/// `None` when the item is not a function.
fn public_fn_name(toks: &[Token], mut i: usize) -> Option<String> {
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "const" | "unsafe" | "async" | "extern" => i += 1,
            _ if t.kind == TokKind::Str => i += 1, // `extern "C"` ABI string
            "fn" => {
                let name = toks.get(i + 1)?;
                return (name.kind == TokKind::Ident).then(|| name.text.clone());
            }
            _ => return None,
        }
    }
    None
}

/// True when the previous token can be the base of an index expression.
fn is_indexable(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(t.text.as_str(), "mut" | "return" | "in" | "as" | "dyn"),
        TokKind::Punct => t.is_punct(')') || t.is_punct(']'),
        _ => false,
    }
}

/// True when tokens starting at `i` are exactly the given punct sequence.
fn matches_seq(toks: &[Token], i: usize, puncts: &[&str]) -> bool {
    puncts.iter().enumerate().all(|(k, p)| {
        toks.get(i + k).map(|t| t.kind == TokKind::Punct && t.text == *p) == Some(true)
    })
}
