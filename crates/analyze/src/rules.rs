//! Lint rules: token-stream rules plus item-model rules over the parsed
//! [`crate::parse::SourceFile`]. The transitive graph rule (ENW-M002)
//! lives in [`crate::graph`].
//!
//! Rule catalogue (stable ids; severities are built in):
//!
//! | id       | severity | what it enforces |
//! |----------|----------|------------------|
//! | ENW-D001 | deny     | no `HashMap`/`HashSet` in kernel crates (iteration order would feed numeric results) |
//! | ENW-D002 | deny     | no `Instant`/`SystemTime` outside `bench`/`parallel` (ambient time in kernels breaks reproducibility) |
//! | ENW-D003 | deny     | no ambient entropy (`thread_rng`, `OsRng`, `RandomState`, …) outside `bench`/`parallel` |
//! | ENW-D004 | deny     | no `thread::spawn` outside `enw-parallel` (all parallelism goes through the deterministic runtime) |
//! | ENW-D006 | deny     | no `HashMap`/`HashSet` iteration feeding returned data in library crates (hash order leaks into results) |
//! | ENW-D007 | deny     | no float reductions (`sum`/`product`/`fold`/`reduce`) over unordered hash iteration — reductions run in a fixed order or through `enw_parallel`'s ordered combinators |
//! | ENW-P001 | deny     | no `.unwrap()` in non-test library code |
//! | ENW-P002 | deny     | no `.expect(…)` in non-test library code |
//! | ENW-P003 | deny     | no `panic!`/`todo!`/`unimplemented!`/`unreachable!` in non-test library code |
//! | ENW-P004 | warn     | no indexing by integer literal (`xs[0]`) in non-test library code |
//! | ENW-P005 | deny     | no `thread::scope` outside `enw-parallel` (scoped spawn-join bypasses the persistent worker pool) |
//! | ENW-A002 | deny     | only `crates/bench` may name `BENCH_*` report artifacts |
//! | ENW-A004 | deny     | no public `*_unchecked`/`*unwrap*` constructors in kernel crates (validation belongs in builders / `try_*` APIs) |
//! | ENW-A005 | deny     | `Tunable::encode` impls may not consult hash-ordered collections (axis order must be declaration-stable) |
//! | ENW-M001 | deny     | no heap allocation inside `// enw:hot` function bodies (`vec!`, `Vec::new`, `Vec::with_capacity`, `Box::new`, `format!`, `.collect()`, `.to_vec()`, `.clone()`, `.to_owned()`, `.to_string()`, `String::*`) |
//! | ENW-M002 | deny     | (in [`crate::graph`]) nothing reachable from a `// enw:hot` fn may allocate, lock, or do I/O — reported with the resolved call chain |
//!
//! The `// enw:hot` annotation is binding wherever it appears in library
//! code (the harness crates `bench` and `analyze` are out of scope);
//! ENW-D006/D007 apply to every library crate except the harnesses and
//! `enw-parallel` (whose combinators are the blessed ordered reducers).
//! Test code (bodies of `#[cfg(test)]` items and `#[test]` fns), doc
//! comments, binaries under `src/bin/`, bench targets, and integration
//! tests are exempt from the panic-freedom rules; determinism rules apply
//! per crate regardless of target kind.

use crate::lexer::{self, TokKind, Token};
use crate::parse::{self, EffectKind, FileKind, SourceFile};
use crate::report::{Finding, Severity};

pub use crate::parse::classify;

/// Crates whose numeric/kernel paths must stay free of hash collections
/// (ENW-D001). `nn` and `core` may use maps for bookkeeping/reports.
/// `serve` is included: batch composition and response order feed the
/// byte-exact response stream, so no hash iteration order may touch them.
/// `trace` is included: its merged totals are part of the reproducible
/// output (TraceReport bytes), so hash iteration order may not feed them.
/// `fleet` is included: routing, shard placement and autoscaling all feed
/// the byte-exact fleet report, so the same discipline applies.
/// `dse` is included: search trajectories, virtual-clock stamps and
/// Pareto fronts must be byte-stable across reruns, so no hash iteration
/// order may touch them.
pub const KERNEL_CRATES: &[&str] =
    &["numerics", "crossbar", "cam", "xmann", "mann", "recsys", "serve", "trace", "fleet", "dse"];

/// Crates allowed to read wall-clock time or ambient entropy
/// (ENW-D002/D003): the bench harness times things by design, and the
/// parallel runtime sizes its pool from the host.
pub const AMBIENT_ALLOWED: &[&str] = &["bench", "parallel"];

/// The only crate allowed to spawn threads (ENW-D004).
pub const SPAWN_ALLOWED: &[&str] = &["parallel"];

/// Crates exempt from the item-model rules: the analyzer and bench
/// harness are tooling, and `parallel` owns the blessed combinators the
/// determinism rules point users at.
const ITEM_RULE_EXEMPT: &[&str] = &["analyze", "bench", "parallel"];

/// Identifiers that mean ambient entropy when they appear at all.
const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState"];

/// Unordered-iteration methods on hash collections (ENW-D006/D007).
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-sensitive reduction methods (ENW-D007).
const REDUCTIONS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Lints one source file (token rules + item-model rules; the graph
/// rules need the whole workspace and run in
/// [`crate::analyze_sources`]). `rel_path` drives crate/target
/// classification.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let file = parse::parse_source(rel_path, src);
    let mut out = scan_tokens(rel_path, src);
    out.extend(scan_items(&file, src));
    out
}

/// Token-stream rules (the line-lexer families: D001–D004, P001–P005,
/// A002, A004).
pub(crate) fn scan_tokens(rel_path: &str, src: &str) -> Vec<Finding> {
    let (crate_name, kind) = classify(rel_path);
    let crate_name = crate_name.unwrap_or_default();
    let toks = lexer::tokenize(src);
    let regions = lexer::test_regions(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };
    let mut out = Vec::new();
    let mut push = |rule: &'static str, severity: Severity, line: u32, message: String| {
        out.push(Finding::new(rule, severity, rel_path, line, message, snippet(line)));
    };

    let kernel = KERNEL_CRATES.contains(&crate_name.as_str());
    let ambient_ok = AMBIENT_ALLOWED.contains(&crate_name.as_str());
    let spawn_ok = SPAWN_ALLOWED.contains(&crate_name.as_str());
    let panic_rules = kind == FileKind::Lib;

    for (i, t) in toks.iter().enumerate() {
        if lexer::in_regions(&regions, i) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if kernel && (name == "HashMap" || name == "HashSet") {
                    push(
                        "ENW-D001",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}` in kernel crate `{crate_name}`: hash iteration order \
                             may feed numeric results; use BTreeMap/BTreeSet or a sorted Vec"
                        ),
                    );
                }
                if !ambient_ok && (name == "Instant" || name == "SystemTime") {
                    push(
                        "ENW-D002",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient wall-clock (`{name}`) outside bench/parallel breaks \
                             bit-reproducibility; plumb timings through the bench harness"
                        ),
                    );
                }
                if !ambient_ok && ENTROPY_IDENTS.contains(&name) {
                    push(
                        "ENW-D003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "ambient entropy (`{name}`) outside bench/parallel; all \
                             randomness must come from a seeded `Rng64`"
                        ),
                    );
                }
                if !spawn_ok
                    && name == "thread"
                    && matches_seq(&toks, i + 1, &[":", ":"])
                    && toks.get(i + 3).map(|t| t.is_ident("spawn")) == Some(true)
                {
                    push(
                        "ENW-D004",
                        Severity::Deny,
                        t.line,
                        "raw `thread::spawn` outside `enw-parallel`; use the deterministic \
                         runtime (`enw_parallel::map_chunks` and friends)"
                            .to_string(),
                    );
                }
                if !spawn_ok
                    && name == "thread"
                    && matches_seq(&toks, i + 1, &[":", ":"])
                    && toks.get(i + 3).map(|t| t.is_ident("scope")) == Some(true)
                {
                    push(
                        "ENW-P005",
                        Severity::Deny,
                        t.line,
                        "`thread::scope` outside `enw-parallel`: scoped spawn-join pays \
                         thread start-up on every call and bypasses the persistent worker \
                         pool; use `enw_parallel::map_chunks`/`for_each_chunk_mut`"
                            .to_string(),
                    );
                }
                if panic_rules
                    && (name == "panic"
                        || name == "todo"
                        || name == "unimplemented"
                        || name == "unreachable")
                    && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true)
                {
                    push(
                        "ENW-P003",
                        Severity::Deny,
                        t.line,
                        format!(
                            "`{name}!` in library code; return a Result, use a documented \
                             `assert!` with an invariant message, or waive in lint.toml"
                        ),
                    );
                }
                if kernel
                    && kind == FileKind::Lib
                    && name == "pub"
                    && toks.get(i + 1).map(|t| t.is_punct('(')) != Some(true)
                {
                    if let Some(fn_name) = public_fn_name(&toks, i + 1) {
                        if fn_name.ends_with("_unchecked") || fn_name.contains("unwrap") {
                            push(
                                "ENW-A004",
                                Severity::Deny,
                                t.line,
                                format!(
                                    "public `{fn_name}` in kernel crate `{crate_name}` bypasses \
                                     validated construction; expose a builder or a `try_*` \
                                     Result API instead"
                                ),
                            );
                        }
                    }
                }
                if panic_rules
                    && (name == "unwrap" || name == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
                {
                    let rule = if name == "unwrap" { "ENW-P001" } else { "ENW-P002" };
                    push(
                        rule,
                        Severity::Deny,
                        t.line,
                        format!(
                            "`.{name}(…)` in library code; restructure (match / map_or / \
                             total_cmp), return a Result, or waive in lint.toml with a \
                             justification"
                        ),
                    );
                }
            }
            // `analyze` is exempt from ENW-A002: the rule implementation and
            // its diagnostics must be able to name the artifact prefix.
            TokKind::Str
                if crate_name != "bench"
                    && crate_name != "analyze"
                    && t.text.contains("BENCH_") =>
            {
                push(
                    "ENW-A002",
                    Severity::Deny,
                    t.line,
                    "`BENCH_*` report artifacts may only be produced by `crates/bench`".to_string(),
                );
            }
            TokKind::Punct
                if panic_rules
                    && t.is_punct('[')
                    && i > 0
                    && toks.get(i + 1).map(|t| t.kind == TokKind::Int) == Some(true)
                    && toks.get(i + 2).map(|t| t.is_punct(']')) == Some(true)
                    && is_indexable(&toks[i - 1]) =>
            {
                push(
                    "ENW-P004",
                    Severity::Warn,
                    t.line,
                    "indexing by integer literal can panic; prefer `.first()`, \
                     `.get(n)`, or destructuring"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    out
}

/// Item-model rules over one parsed file: ENW-M001 (direct hot-body
/// allocation) and ENW-D006/D007 (unordered hash iteration / reductions).
pub(crate) fn scan_items(file: &SourceFile, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if file.kind != FileKind::Lib
        || file.crate_name.is_empty()
        || ITEM_RULE_EXEMPT.contains(&file.crate_name.as_str())
    {
        return out;
    }
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };

    // ENW-M001: direct allocations inside `// enw:hot` bodies. The
    // annotation is an explicit opt-in and binds in any library crate.
    for f in &file.fns {
        if !f.hot || f.in_test {
            continue;
        }
        for e in &f.effects {
            if e.kind == EffectKind::Alloc {
                out.push(Finding::new(
                    "ENW-M001",
                    Severity::Deny,
                    &file.rel_path,
                    e.line,
                    format!(
                        "`{}` allocates inside `// enw:hot` fn `{}`; reuse a caller buffer \
                         (`_into` parameter) or checkout from `enw_parallel::scratch`",
                        e.what, f.name
                    ),
                    snippet(e.line),
                ));
            }
        }
    }

    // ENW-A005: `Tunable::encode` must emit axes in declaration order —
    // consulting a hash-ordered collection anywhere in the body makes the
    // encoded key order (and with it every search trajectory and Pareto
    // front) depend on hasher state.
    let has_encode = file
        .fns
        .iter()
        .any(|f| !f.in_test && f.name == "encode" && f.trait_name.as_deref() == Some("Tunable"));
    if has_encode {
        let toks = lexer::tokenize(src);
        for f in &file.fns {
            if f.in_test || f.name != "encode" || f.trait_name.as_deref() != Some("Tunable") {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            let end = end.min(toks.len());
            let owner = f.owner.as_deref().unwrap_or("<unknown>");
            for k in start..end {
                let t = &toks[k];
                let hash_type =
                    t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
                let unordered_call = t.is_punct('.')
                    && toks.get(k + 1).map(|m| {
                        m.kind == TokKind::Ident && UNORDERED_METHODS.contains(&m.text.as_str())
                    }) == Some(true)
                    && toks.get(k + 2).map(|n| n.is_punct('(')) == Some(true)
                    && receiver_name(&toks, k, start).map(|r| file.hash_bindings.contains(&r))
                        == Some(true);
                if hash_type || unordered_call {
                    out.push(Finding::new(
                        "ENW-A005",
                        Severity::Deny,
                        &file.rel_path,
                        t.line,
                        format!(
                            "`Tunable::encode` for `{owner}` consults a hash-ordered \
                             collection; encode must emit axes in a fixed declaration \
                             order (a Vec of entries in struct-field order)"
                        ),
                        snippet(t.line),
                    ));
                    break; // one finding per encode body pins the bug
                }
            }
        }
    }

    // ENW-D006/D007: unordered hash iteration. Needs token positions, so
    // re-tokenize (deterministic, cheap) and scan each body range.
    if !file.hash_bindings.is_empty() {
        let toks = lexer::tokenize(src);
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            scan_unordered(file, f, &toks, start, end, &snippet, &mut out);
        }
    }
    out
}

/// Scans one body for hash-collection iteration (`recv.iter()`,
/// `for … in &recv`) and classifies each hit as ENW-D007 (a float-style
/// reduction consumes the unordered stream) or ENW-D006 (the function
/// returns data the iteration can feed).
fn scan_unordered(
    file: &SourceFile,
    f: &parse::FnItem,
    toks: &[Token],
    start: usize,
    end: usize,
    snippet: &impl Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    let end = end.min(toks.len());
    let is_hash_recv = |name: &str| {
        file.hash_bindings.iter().any(|b| b == name) || name == "HashMap" || name == "HashSet"
    };
    let mut hit = |line: u32, recv: &str, reduction: Option<(&str, u32)>| match reduction {
        Some((red, red_line)) => out.push(Finding::new(
            "ENW-D007",
            Severity::Deny,
            &file.rel_path,
            red_line,
            format!(
                "`.{red}(…)` reduces an unordered `{recv}` iteration in `{}`: hash order \
                     makes the result non-reproducible; reduce over a BTreeMap/sorted Vec or \
                     use `enw_parallel`'s ordered combinators",
                f.name
            ),
            snippet(red_line),
        )),
        None => out.push(Finding::new(
            "ENW-D006",
            Severity::Deny,
            &file.rel_path,
            line,
            format!(
                "iteration order of hash collection `{recv}` can feed data returned by \
                     `{}`; use BTreeMap/BTreeSet or sort before returning",
                f.name
            ),
            snippet(line),
        )),
    };

    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `recv.iter()` / `self.recv.keys()` / `HashMap::from(…).iter()`.
        if t.is_punct('.') {
            let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            if !UNORDERED_METHODS.contains(&m.text.as_str())
                || toks.get(i + 2).map(|n| n.is_punct('(')) != Some(true)
            {
                i += 1;
                continue;
            }
            let Some(recv) = receiver_name(toks, i, start) else {
                i += 1;
                continue;
            };
            if !is_hash_recv(&recv) {
                i += 1;
                continue;
            }
            let after = match_paren(toks, i + 2, end);
            let reduction = chain_reduction(toks, after, end);
            match reduction {
                Some((red, line)) => hit(m.line, &recv, Some((red, line))),
                None if f.returns_value => hit(m.line, &recv, None),
                None => {}
            }
            i = after;
            continue;
        }
        // `for pat in &recv { … }` — IntoIterator without a method call.
        if t.is_ident("in") {
            let mut j = i + 1;
            while j < end && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                j += 1;
            }
            // Dotted receiver path: take the last ident before the block.
            let mut last: Option<&Token> = None;
            while j < end {
                match toks[j].kind {
                    TokKind::Ident => last = Some(&toks[j]),
                    TokKind::Punct if toks[j].is_punct('.') => {}
                    _ => break,
                }
                j += 1;
            }
            if let Some(r) = last {
                if is_hash_recv(&r.text) && f.returns_value {
                    hit(r.line, &r.text, None);
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Name of the receiver of the method call whose `.` is at `dot`:
/// the ident directly before it, or — for a chained
/// `HashMap::from(…).iter()` — the hash type behind one balanced paren
/// group. `None` when the receiver shape is not recognised.
fn receiver_name(toks: &[Token], dot: usize, floor: usize) -> Option<String> {
    if dot == 0 || dot <= floor {
        return None;
    }
    let prev = &toks[dot - 1];
    if prev.kind == TokKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.is_punct(')') {
        // Walk back over the balanced group, then over `Type::method`.
        let mut depth = 1usize;
        let mut k = dot - 1;
        while k > floor && depth > 0 {
            k -= 1;
            if toks[k].is_punct(')') {
                depth += 1;
            } else if toks[k].is_punct('(') {
                depth -= 1;
            }
        }
        if depth == 0 && k >= floor + 4 {
            let m = &toks[k - 1];
            if m.kind == TokKind::Ident
                && toks[k - 2].is_punct(':')
                && toks[k - 3].is_punct(':')
                && (toks[k - 4].is_ident("HashMap") || toks[k - 4].is_ident("HashSet"))
            {
                return Some(toks[k - 4].text.clone());
            }
        }
    }
    None
}

/// Index one past the `)` matching the `(` at `open` (clamped to `end`).
fn match_paren(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < end && depth > 0 {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
        }
        k += 1;
    }
    k
}

/// Walks a method chain starting at `i` (just after a call's closing
/// paren) and returns the first reduction method found, with its line.
fn chain_reduction(toks: &[Token], mut i: usize, end: usize) -> Option<(&'static str, u32)> {
    while i + 1 < end && toks[i].is_punct('.') && toks[i + 1].kind == TokKind::Ident {
        let name = &toks[i + 1];
        if let Some(red) = REDUCTIONS.iter().find(|r| name.is_ident(r)) {
            return Some((red, name.line));
        }
        // Advance past `name [::<…>] ( … )`.
        let mut k = i + 2;
        if toks.get(k).map(|t| t.is_punct(':')) == Some(true)
            && toks.get(k + 1).map(|t| t.is_punct(':')) == Some(true)
            && toks.get(k + 2).map(|t| t.is_punct('<')) == Some(true)
        {
            let mut depth = 1i32;
            k += 3;
            while k < end && depth > 0 {
                if toks[k].is_punct('<') {
                    depth += 1;
                } else if toks[k].is_punct('>') {
                    depth -= 1;
                }
                k += 1;
            }
        }
        if toks.get(k).map(|t| t.is_punct('(')) != Some(true) {
            return None;
        }
        i = match_paren(toks, k, end);
    }
    None
}

/// Name of the function declared at a `pub` item starting after token
/// `i`, skipping declaration qualifiers (`const fn`, `unsafe fn`, …).
/// `None` when the item is not a function.
fn public_fn_name(toks: &[Token], mut i: usize) -> Option<String> {
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "const" | "unsafe" | "async" | "extern" => i += 1,
            _ if t.kind == TokKind::Str => i += 1, // `extern "C"` ABI string
            "fn" => {
                let name = toks.get(i + 1)?;
                return (name.kind == TokKind::Ident).then(|| name.text.clone());
            }
            _ => return None,
        }
    }
    None
}

/// True when the previous token can be the base of an index expression.
fn is_indexable(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(t.text.as_str(), "mut" | "return" | "in" | "as" | "dyn"),
        TokKind::Punct => t.is_punct(')') || t.is_punct(']'),
        _ => false,
    }
}

/// True when tokens starting at `i` are exactly the given punct sequence.
fn matches_seq(toks: &[Token], i: usize, puncts: &[&str]) -> bool {
    puncts.iter().enumerate().all(|(k, p)| {
        toks.get(i + k).map(|t| t.kind == TokKind::Punct && t.text == *p) == Some(true)
    })
}
