//! Finding types, fingerprints, human-readable rendering, the
//! machine-readable `analyze-report.json` emitter, and baseline-diff
//! support. Hand-rolled JSON keeps the crate dependency-free.

use std::collections::BTreeSet;
use std::fmt;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate (non-zero exit).
    Deny,
    /// Reported, but does not fail the gate.
    Warn,
}

impl Severity {
    /// Lower-case label used in output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (e.g. `ENW-P001`).
    pub rule: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// What the rule objects to.
    pub message: String,
    /// Trimmed source line (used for allowlist matching and context).
    pub snippet: String,
    /// Resolved call chain for graph rules (`hot_fn → helper → alloc`);
    /// empty for line-level rules.
    pub chain: Vec<String>,
    /// Content-stable identity: FNV-1a over rule, path, snippet, and a
    /// same-content ordinal — but *not* the line number, so baselines
    /// survive unrelated edits that shift code up or down the file.
    pub fingerprint: String,
}

impl Finding {
    /// Constructs a line-level finding (no chain; fingerprint assigned
    /// later by [`assign_fingerprints`]).
    pub fn new(
        rule: &'static str,
        severity: Severity,
        path: &str,
        line: u32,
        message: String,
        snippet: String,
    ) -> Self {
        Finding {
            rule,
            severity,
            path: path.to_string(),
            line,
            message,
            snippet,
            chain: Vec::new(),
            fingerprint: String::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{} — {}",
            self.severity.label(),
            self.rule,
            self.path,
            self.line,
            self.message
        )
    }
}

/// Assigns content-stable fingerprints to a batch of findings. Ordinals
/// disambiguate repeated identical findings (same rule, path, snippet)
/// in encounter order, which is deterministic because files and tokens
/// are scanned in sorted order.
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for f in findings.iter_mut() {
        let mut ordinal = 0usize;
        loop {
            let key = format!("{}\u{1}{}\u{1}{}\u{1}{}", f.rule, f.path, f.snippet, ordinal);
            if seen.insert(key.clone()) {
                f.fingerprint = format!("{:016x}", fnv1a64(key.as_bytes()));
                break;
            }
            ordinal += 1;
        }
    }
}

/// FNV-1a 64-bit hash — stable across platforms and runs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts the set of fingerprints recorded in a baseline report
/// (`analyze-baseline.json`, same schema as `analyze-report.json`).
/// Only the `findings` array counts: waived findings are suppressions,
/// not accepted debt. Scanning for the key rather than fully parsing
/// keeps the reader tiny and tolerant of schema additions.
pub fn baseline_fingerprints(contents: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let stop = contents.find("\"waived\"").unwrap_or(contents.len());
    let head = &contents[..stop];
    let key = "\"fingerprint\": \"";
    let mut rest = head;
    while let Some(pos) = rest.find(key) {
        let tail = &rest[pos + key.len()..];
        if let Some(end) = tail.find('"') {
            out.insert(tail[..end].to_string());
            rest = &tail[end..];
        } else {
            break;
        }
    }
    out
}

/// A finding waived by a `lint.toml` entry, with its justification.
#[derive(Debug, Clone)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The allowlist entry's justification string.
    pub justification: String,
}

/// Full result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived the allowlist, deny first.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.toml`.
    pub waived: Vec<Waived>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crate manifests checked.
    pub manifests_checked: usize,
}

impl Analysis {
    /// Number of deny-severity findings (the gate's exit criterion).
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// Findings whose fingerprints are absent from `baseline` — the
    /// regressions a `--baseline` gate fails on.
    pub fn new_vs_baseline<'a>(&'a self, baseline: &BTreeSet<String>) -> Vec<&'a Finding> {
        self.findings.iter().filter(|f| !baseline.contains(&f.fingerprint)).collect()
    }

    /// Stale `lint.toml` entries (ENW-C001) — what `--audit-waivers`
    /// fails on.
    pub fn stale_waivers(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == "ENW-C001").collect()
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 2,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_finding_json(&mut out, f, None);
        }
        out.push_str("\n  ],\n  \"waived\": [");
        for (i, w) in self.waived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_finding_json(&mut out, &w.finding, Some(&w.justification));
        }
        out.push_str("\n  ],\n  \"summary\": {");
        out.push_str(&format!(
            "\"files_scanned\": {}, \"manifests_checked\": {}, \"deny\": {}, \"warn\": {}, \"waived\": {}",
            self.files_scanned,
            self.manifests_checked,
            self.deny_count(),
            self.warn_count(),
            self.waived.len()
        ));
        out.push_str("}\n}\n");
        out
    }
}

fn push_finding_json(out: &mut String, f: &Finding, justification: Option<&str>) {
    out.push_str(&format!(
        "{{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"fingerprint\": {}, \"message\": {}, \"snippet\": {}",
        json_str(f.rule),
        json_str(f.severity.label()),
        json_str(&f.path),
        f.line,
        json_str(&f.fingerprint),
        json_str(&f.message),
        json_str(&f.snippet)
    ));
    if !f.chain.is_empty() {
        out.push_str(", \"chain\": [");
        for (i, link) in f.chain.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(link));
        }
        out.push(']');
    }
    if let Some(j) = justification {
        out.push_str(&format!(", \"justification\": {}", json_str(j)));
    }
    out.push('}');
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
