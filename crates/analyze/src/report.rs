//! Finding types, human-readable rendering, and the machine-readable
//! `analyze-report.json` emitter. Hand-rolled JSON keeps the crate
//! dependency-free.

use std::fmt;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate (non-zero exit).
    Deny,
    /// Reported, but does not fail the gate.
    Warn,
}

impl Severity {
    /// Lower-case label used in output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (e.g. `ENW-P001`).
    pub rule: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// What the rule objects to.
    pub message: String,
    /// Trimmed source line (used for allowlist matching and context).
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{} — {}",
            self.severity.label(),
            self.rule,
            self.path,
            self.line,
            self.message
        )
    }
}

/// A finding waived by a `lint.toml` entry, with its justification.
#[derive(Debug, Clone)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The allowlist entry's justification string.
    pub justification: String,
}

/// Full result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived the allowlist, deny first.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.toml`.
    pub waived: Vec<Waived>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crate manifests checked.
    pub manifests_checked: usize,
}

impl Analysis {
    /// Number of deny-severity findings (the gate's exit criterion).
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_finding_json(&mut out, f, None);
        }
        out.push_str("\n  ],\n  \"waived\": [");
        for (i, w) in self.waived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_finding_json(&mut out, &w.finding, Some(&w.justification));
        }
        out.push_str("\n  ],\n  \"summary\": {");
        out.push_str(&format!(
            "\"files_scanned\": {}, \"manifests_checked\": {}, \"deny\": {}, \"warn\": {}, \"waived\": {}",
            self.files_scanned,
            self.manifests_checked,
            self.deny_count(),
            self.warn_count(),
            self.waived.len()
        ));
        out.push_str("}\n}\n");
        out
    }
}

fn push_finding_json(out: &mut String, f: &Finding, justification: Option<&str>) {
    out.push_str(&format!(
        "{{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}",
        json_str(f.rule),
        json_str(f.severity.label()),
        json_str(&f.path),
        f.line,
        json_str(&f.message),
        json_str(&f.snippet)
    ));
    if let Some(j) = justification {
        out.push_str(&format!(", \"justification\": {}", json_str(j)));
    }
    out.push('}');
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
