//! `enw-analyze`: std-only static analysis enforcing the workspace's
//! determinism, panic-freedom, and architectural invariants.
//!
//! PR 1's parallel runtime guarantees bit-identical outputs at any thread
//! count; this crate is the mechanical gate that keeps that property from
//! rotting. It runs three rule layers over a shared syntactic item model:
//!
//! 1. **Token rules** ([`rules`]) — per-line invariants: no hash
//!    collections or ambient time/entropy in kernel crates, no raw thread
//!    spawns outside `enw-parallel`, no panicking combinators in library
//!    code, artifact-naming and API-shape checks.
//! 2. **Item rules** ([`rules`] over [`parse`]) — function-scoped
//!    invariants: no allocation inside `// enw:hot` bodies (ENW-M001), no
//!    hash-order iteration feeding returned data or float reductions
//!    (ENW-D006/D007).
//! 3. **Graph rules** ([`graph`]) — whole-workspace invariants: the
//!    resolver links call sites to definitions across crates and
//!    ENW-M002 walks the closure of every `// enw:hot` fn, flagging any
//!    reachable callee that allocates, locks, or does I/O, with the
//!    resolved call chain in the report.
//!
//! Findings carry content-stable fingerprints; `--baseline` diffs a run
//! against a committed `analyze-baseline.json` so CI fails only on *new*
//! findings, and `--audit-waivers` fails on `lint.toml` entries that no
//! longer match anything. See the module docs of [`rules`] and [`arch`]
//! for the rule catalogue, and `lint.toml` at the workspace root for the
//! justified-waiver allowlist.
//!
//! Run the gate with `cargo run -p enw-analyze`; it prints human-readable
//! diagnostics, writes `analyze-report.json`, and exits non-zero on any
//! deny-level finding.

pub mod arch;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use report::{assign_fingerprints, baseline_fingerprints, Analysis, Finding, Severity};
pub use rules::scan_source;

/// Directories never scanned: build output and the vendored shims (the
/// shims exist to satisfy external APIs and are exempt by construction).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Runs every rule layer over a set of in-memory `(rel_path, source)`
/// pairs: token rules and item rules per file, then the call-graph rules
/// over the whole set. Fingerprints are assigned in scan order. This is
/// the core of [`analyze_workspace`], exposed so tests can analyze
/// synthetic multi-file workspaces without touching the filesystem.
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<parse::SourceFile> =
        sources.iter().map(|(rel, src)| parse::parse_source(rel, src)).collect();
    let mut out = Vec::new();
    for ((rel, src), file) in sources.iter().zip(&files) {
        out.extend(rules::scan_tokens(rel, src));
        out.extend(rules::scan_items(file, src));
    }
    let cg = graph::CallGraph::build(&files);
    out.extend(cg.check_hot_paths(|fi, line| {
        sources[fi]
            .1
            .lines()
            .nth(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }));
    report::assign_fingerprints(&mut out);
    out
}

/// Runs the full analysis over a workspace root: every `.rs` file under
/// `crates/`, `tests/`, and `examples/`, plus every `crates/*/Cargo.toml`,
/// filtered through the `lint.toml` allowlist if present.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let allow = match fs::read_to_string(root.join("lint.toml")) {
        Ok(contents) => config::parse_allowlist(&contents)?,
        Err(_) => Vec::new(),
    };
    let mut analysis = Analysis::default();

    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = rel_path(root, path);
        let src = fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        sources.push((rel, src));
        analysis.files_scanned += 1;
    }
    let mut raw = analyze_sources(&sources);

    let mut manifests: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    for path in &manifests {
        let rel = rel_path(root, path);
        let crate_dir = path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let contents = fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        raw.extend(arch::check_manifest(&crate_dir, &rel, &contents));
        analysis.manifests_checked += 1;
    }
    // Re-assigning is cheap and gives the manifest findings fingerprints
    // without disturbing the ordinals of the source findings (they come
    // first in the same order).
    report::assign_fingerprints(&mut raw);

    config::apply_allowlist(raw, &allow, &mut analysis);
    analysis.findings.sort_by(|a, b| {
        let sev = |f: &Finding| matches!(f.severity, Severity::Warn) as u8;
        (sev(a), a.path.clone(), a.line, a.rule).cmp(&(sev(b), b.path.clone(), b.line, b.rule))
    });
    Ok(analysis)
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
