//! `lint.toml` allowlist parsing and waiver application.
//!
//! The file is a sequence of `[[allow]]` entries, each waiving findings of
//! one rule at one path whose source line contains a marker substring:
//!
//! ```toml
//! [[allow]]
//! rule = "ENW-P002"
//! path = "crates/parallel/src/lib.rs"
//! contains = "chunk not computed"
//! justification = "Round-robin claim assigns every chunk exactly once."
//! ```
//!
//! Every entry must carry a non-empty justification — the point of the
//! allowlist is that waivers are written down, reviewed, and greppable.
//! Only the minimal TOML subset above is supported (string values, `#`
//! comments); the parser is std-only by design.

use crate::report::{Analysis, Finding, Waived};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the waiver applies to (e.g. `ENW-P002`).
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Substring the offending source line must contain.
    pub contains: String,
    /// Human-written reason the site is acceptable.
    pub justification: String,
}

impl AllowEntry {
    /// True when this entry waives the given finding.
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.path == f.path && f.snippet.contains(&self.contains)
    }
}

/// Parses `lint.toml` contents; returns entries or a diagnostic string.
pub fn parse_allowlist(contents: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<[Option<String>; 4]> = None;
    let finish =
        |slot: Option<[Option<String>; 4]>, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
            let Some(fields) = slot else {
                return Ok(());
            };
            let [rule, path, contains, justification] = fields;
            let entry = AllowEntry {
                rule: rule.ok_or("allow entry missing `rule`")?,
                path: path.ok_or("allow entry missing `path`")?,
                contains: contains.ok_or("allow entry missing `contains`")?,
                justification: justification.ok_or("allow entry missing `justification`")?,
            };
            if entry.justification.trim().len() < 10 {
                return Err(format!(
                    "allow entry for {} at {} needs a real justification (got {:?})",
                    entry.rule, entry.path, entry.justification
                ));
            }
            entries.push(entry);
            Ok(())
        };
    for (lineno, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries)?;
            current = Some([None, None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = \"value\"`", lineno + 1));
        };
        let key = key.trim();
        let value = value.trim();
        if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
            return Err(format!("lint.toml:{}: value for `{key}` must be a string", lineno + 1));
        }
        let value = value.trim_matches('"').to_string();
        let Some(fields) = current.as_mut() else {
            return Err(format!("lint.toml:{}: `{key}` outside an [[allow]] entry", lineno + 1));
        };
        let idx = match key {
            "rule" => 0,
            "path" => 1,
            "contains" => 2,
            "justification" => 3,
            other => {
                return Err(format!("lint.toml:{}: unknown key `{other}`", lineno + 1));
            }
        };
        if let Some(slot) = fields.get_mut(idx) {
            if slot.is_some() {
                return Err(format!("lint.toml:{}: duplicate key `{key}`", lineno + 1));
            }
            *slot = Some(value);
        }
    }
    finish(current.take(), &mut entries)?;
    Ok(entries)
}

/// Splits raw findings into surviving findings and waived ones, and flags
/// allowlist entries that no longer match anything (ENW-C001, warn) so the
/// file cannot accumulate stale waivers silently.
pub fn apply_allowlist(raw: Vec<Finding>, allow: &[AllowEntry], analysis: &mut Analysis) {
    let mut used = vec![false; allow.len()];
    for f in raw {
        let hit = allow.iter().enumerate().find(|(_, a)| a.matches(&f));
        match hit {
            Some((i, a)) => {
                if let Some(u) = used.get_mut(i) {
                    *u = true;
                }
                analysis.waived.push(Waived { finding: f, justification: a.justification.clone() });
            }
            None => analysis.findings.push(f),
        }
    }
    let first_stale = analysis.findings.len();
    for (a, was_used) in allow.iter().zip(&used) {
        if !*was_used {
            analysis.findings.push(Finding::new(
                "ENW-C001",
                crate::report::Severity::Warn,
                "lint.toml",
                0,
                format!(
                    "stale allowlist entry: {} at {} (contains {:?}) matches nothing; remove it",
                    a.rule, a.path, a.contains
                ),
                String::new(),
            ));
        }
    }
    // Stale-waiver findings are synthesized here, after the main
    // fingerprint pass; give them fingerprints of their own (the key
    // includes the rule id, so they cannot collide with source findings).
    crate::report::assign_fingerprints(&mut analysis.findings[first_stale..]);
}
