//! Workspace call graph: links the call sites extracted by
//! [`crate::parse`] to function definitions across crates, and runs the
//! transitive hot-path rule (ENW-M002) as a graph query.
//!
//! Resolution is name-based and deliberately conservative — a deny rule
//! must not fire on guesses:
//!
//! - **Free and path calls** (`helper(…)`, `scratch::take_f32(…)`,
//!   `Matrix::matvec_into(…)`) resolve through qualifiers: an `enw_x`
//!   path segment or a `use enw_x::…` import pins the crate, an
//!   upper-case segment pins the impl type, `Self::` resolves to the
//!   caller's own impl type. Unqualified names prefer the caller's file,
//!   then its crate, then its dependency closure.
//! - **Method calls** (`recv.forward_into(…)`) link to *every* impl
//!   method of that name in the caller's crate or dependency closure —
//!   without type inference the receiver is unknown, and for a
//!   transitive purity rule over-linking is the sound direction (every
//!   candidate impl must be clean). Names on
//!   [`parse::STD_METHOD_NAMES`] never resolve: they would cross-link
//!   slice/iterator/Option methods to unrelated workspace impls.
//! - Unresolved calls (std, operators, closures) produce no edge.
//!
//! The dependency closure comes from the layering table in
//! [`crate::arch`], so the resolver can never invent an edge the
//! architecture rules would forbid.

use std::collections::{BTreeMap, BTreeSet};

use crate::arch::ALLOWED_DEPS;
use crate::parse::{CallKind, EffectKind, FileKind, FnItem, SourceFile, STD_METHOD_NAMES};
use crate::report::{Finding, Severity};

/// Crates the hot-path traversal treats as trusted leaves: the
/// deterministic runtime's combinators and scratch pools are the
/// *sanctioned* way for hot code to obtain buffers and parallelism, so
/// the traversal neither descends into them nor reports their internals.
pub const TRUSTED_CRATES: &[&str] = &["parallel"];

/// One node of the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the parsed file list.
    pub file: usize,
    /// Index of the fn item within that file.
    pub item: usize,
    /// Crate directory name.
    pub crate_name: String,
    /// Display name (`Type::name` for methods, `name` for free fns).
    pub display: String,
}

/// The resolved workspace call graph.
pub struct CallGraph<'a> {
    files: &'a [SourceFile],
    /// Graph nodes, one per library fn item, in deterministic order.
    pub nodes: Vec<FnNode>,
    /// `edges[n]` = resolved callees of node `n` as (node index, call
    /// line in the caller).
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Nodes whose fn carries a `// enw:hot` annotation.
    pub hot_roots: Vec<usize>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every parsed library file. Test-region fns,
    /// non-`Lib` targets, and the analyzer itself are excluded: the graph
    /// models the shipped library surface.
    pub fn build(files: &'a [SourceFile]) -> CallGraph<'a> {
        let mut nodes: Vec<FnNode> = Vec::new();
        // (crate, name) → node indices, plus name → node indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            if file.kind != FileKind::Lib || file.crate_name.is_empty() {
                continue;
            }
            if file.crate_name == "analyze" || file.crate_name == "bench" {
                continue;
            }
            for (ii, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let display = match &f.owner {
                    Some(t) => format!("{t}::{}", f.name),
                    None => f.name.clone(),
                };
                let idx = nodes.len();
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    crate_name: file.crate_name.clone(),
                    display,
                });
                by_name.entry(file.fns[ii].name.as_str()).or_default().push(idx);
            }
        }

        let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
        for (n, node) in nodes.iter().enumerate() {
            let file = &files[node.file];
            let item = &file.fns[node.item];
            let deps = dep_closure(&node.crate_name);
            for call in &item.calls {
                let mut targets = resolve(call, node, file, &nodes, &by_name, &deps);
                targets.sort_unstable();
                targets.dedup();
                for t in targets {
                    edges[n].push((t, call.line));
                }
            }
        }

        let hot_roots = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| files[n.file].fns[n.item].hot)
            .map(|(i, _)| i)
            .collect();
        CallGraph { files, nodes, edges, hot_roots }
    }

    /// The fn item behind a node.
    pub fn item(&self, n: usize) -> &FnItem {
        &self.files[self.nodes[n].file].fns[self.nodes[n].item]
    }

    /// The file behind a node.
    pub fn file(&self, n: usize) -> &SourceFile {
        &self.files[self.nodes[n].file]
    }

    /// ENW-M002: transitive hot-path purity. From every `// enw:hot`
    /// root, walk resolved callees; any reachable fn that allocates,
    /// locks, or does I/O is a finding carrying the resolved call chain.
    /// Direct-body *allocations* of the root are ENW-M001's job and are
    /// not re-reported here; direct-body locks and I/O are (M001 is
    /// allocation-specific). Trusted crates are skipped entirely, and a
    /// given effect site is reported once even when several hot roots
    /// reach it.
    pub fn check_hot_paths(&self, lines_of: impl Fn(usize, u32) -> String) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut reported: BTreeSet<(usize, u32, &str)> = BTreeSet::new();
        for &root in &self.hot_roots {
            // BFS recording the predecessor chain for diagnostics —
            // breadth-first so reported chains are shortest.
            let mut prev: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut queue = vec![root];
            let mut head = 0usize;
            seen.insert(root);
            while head < queue.len() {
                let n = queue[head];
                head += 1;
                let depth0 = n == root;
                let node = &self.nodes[n];
                if TRUSTED_CRATES.contains(&node.crate_name.as_str()) {
                    continue;
                }
                let item = self.item(n);
                for e in &item.effects {
                    // Root allocations belong to ENW-M001; everything
                    // else (root locks/IO, all callee effects) is M002.
                    if depth0 && e.kind == EffectKind::Alloc {
                        continue;
                    }
                    // Hot callees' own allocations are also M001 findings
                    // (their own body scan) — skip the duplicate.
                    if !depth0 && item.hot && e.kind == EffectKind::Alloc {
                        continue;
                    }
                    if !reported.insert((n, e.line, &e.what)) {
                        continue;
                    }
                    let chain = self.chain(root, n, &prev);
                    out.push(Finding {
                        rule: "ENW-M002",
                        severity: Severity::Deny,
                        path: self.file(n).rel_path.clone(),
                        line: e.line,
                        message: format!(
                            "`{}` {} on the hot path: reachable from `// enw:hot` `{}` via {}; \
                             use caller buffers / `enw_parallel::scratch`, or waive with a \
                             justification in lint.toml",
                            e.what,
                            e.kind.label(),
                            self.nodes[root].display,
                            chain.join(" → "),
                        ),
                        snippet: lines_of(self.nodes[n].file, e.line),
                        chain,
                        fingerprint: String::new(),
                    });
                }
                for &(callee, line) in &self.edges[n] {
                    if seen.insert(callee) {
                        prev.insert(callee, (n, line));
                        queue.push(callee);
                    }
                }
            }
        }
        out
    }

    /// Display chain `root → … → n` recovered from BFS predecessors.
    fn chain(&self, root: usize, n: usize, prev: &BTreeMap<usize, (usize, u32)>) -> Vec<String> {
        let mut rev = vec![self.nodes[n].display.clone()];
        let mut cur = n;
        while cur != root {
            let Some(&(p, _)) = prev.get(&cur) else {
                break;
            };
            rev.push(self.nodes[p].display.clone());
            cur = p;
        }
        rev.reverse();
        rev
    }
}

/// Transitive dependency closure of a crate (itself included), from the
/// layering table.
pub fn dep_closure(crate_name: &str) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = BTreeSet::new();
    let mut frontier = vec![crate_name.to_string()];
    while let Some(c) = frontier.pop() {
        if !out.insert(c.clone()) {
            continue;
        }
        if let Some((_, deps)) = ALLOWED_DEPS.iter().find(|(name, _)| *name == c) {
            for d in *deps {
                frontier.push((*d).to_string());
            }
        }
    }
    out
}

/// Resolves one call site to candidate node indices.
fn resolve(
    call: &crate::parse::CallSite,
    caller: &FnNode,
    caller_file: &SourceFile,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &BTreeSet<String>,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    match call.kind {
        CallKind::Method => {
            if STD_METHOD_NAMES.contains(&call.name.as_str()) {
                return Vec::new();
            }
            // Every impl method of this name in the dependency closure.
            candidates
                .iter()
                .copied()
                .filter(|&i| {
                    let n = &nodes[i];
                    deps.contains(&n.crate_name) && n.display.contains("::")
                })
                .collect()
        }
        CallKind::Free => {
            // Qualifier analysis: crate pin, type pin, or none.
            let mut crate_pin: Option<String> = None;
            let mut type_pin: Option<String> = None;
            for seg in &call.path {
                if let Some(c) = seg.strip_prefix("enw_") {
                    crate_pin = Some(c.to_string());
                } else if seg == "Self" {
                    type_pin = caller
                        .display
                        .split("::")
                        .next()
                        .map(str::to_string)
                        .filter(|_| caller.display.contains("::"));
                } else if seg == "self" || seg == "crate" || seg == "super" {
                    crate_pin = Some(caller.crate_name.clone());
                } else if seg.chars().next().is_some_and(char::is_uppercase) {
                    type_pin = Some(seg.clone());
                } else if let Some(u) = caller_file.uses.iter().find(|u| &u.name == seg) {
                    crate_pin = Some(u.from_crate.clone());
                }
            }
            // An unqualified name may also be a direct `use` import.
            if call.path.is_empty() {
                if let Some(u) = caller_file.uses.iter().find(|u| u.name == call.name) {
                    crate_pin = Some(u.from_crate.clone());
                }
            }
            let matches_type = |i: usize| -> bool {
                match &type_pin {
                    Some(t) => nodes[i].display.starts_with(&format!("{t}::")),
                    // No type qualifier: only free fns and `Self`-less
                    // associated calls via imports; restrict to free fns
                    // to avoid linking same-named methods.
                    None => !nodes[i].display.contains("::"),
                }
            };
            let in_crate = |i: usize, c: &str| nodes[i].crate_name == c;
            if let Some(c) = &crate_pin {
                return candidates
                    .iter()
                    .copied()
                    .filter(|&i| in_crate(i, c) && (type_pin.is_none() || matches_type(i)))
                    .collect();
            }
            if type_pin.is_some() {
                // `Type::name(…)`: any crate in the closure with that impl.
                return candidates
                    .iter()
                    .copied()
                    .filter(|&i| deps.contains(&nodes[i].crate_name) && matches_type(i))
                    .collect();
            }
            // Bare name: same file first, then same crate, then closure.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| nodes[i].file == caller.file && matches_type(i))
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| in_crate(i, &caller.crate_name) && matches_type(i))
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            candidates
                .iter()
                .copied()
                .filter(|&i| deps.contains(&nodes[i].crate_name) && matches_type(i))
                .collect()
        }
    }
}
