//! A small hand-written token scanner for Rust source.
//!
//! The analyzer does not need a full parser: every rule it enforces is
//! expressible over a comment- and string-aware token stream plus a map of
//! which token ranges sit inside test-only code (`#[cfg(test)]` modules and
//! `#[test]` functions). Doc comments and doc-test examples are comments at
//! this level, so `/// foo.unwrap()` never trips a lint.

/// Token kinds. Punctuation is emitted one character at a time; the rules
/// only ever match short fixed sequences, so multi-character operators do
/// not need to be glued back together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (digits/underscores only, after prefix handling).
    Int,
    /// Any other numeric literal (floats, hex, suffixed forms).
    Num,
    /// String literal (normal, raw, or byte); `text` holds the body.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Single punctuation character; `text` holds it.
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Identifier/literal text, or the punctuation character.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`, skipping comments (line, nested block) and tracking
/// line numbers. String/char bodies are preserved so rules can inspect
/// literal contents (e.g. `BENCH_*` report names).
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();
    let bump = |c: char, line: &mut u32| {
        if c == '\n' {
            *line += 1;
        }
    };
    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump(c, &mut line);
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump(chars[i], &mut line);
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings r"..." / r#"..."# and byte-string prefixes.
        if (c == 'r' || c == 'b') && i + 1 < n {
            if let Some((tok, next)) = scan_prefixed_literal(&chars, i, line) {
                for ch in chars[i..next].iter() {
                    bump(*ch, &mut line);
                }
                toks.push(tok);
                i = next;
                continue;
            }
        }
        // Normal strings.
        if c == '"' {
            let start_line = line;
            let (body, next) = scan_string(&chars, i + 1, &mut line);
            toks.push(Token { kind: TokKind::Str, text: body, line: start_line });
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start_line = line;
            let (tok, next) = scan_quote(&chars, i, start_line);
            for ch in chars[i..next].iter() {
                bump(*ch, &mut line);
            }
            toks.push(tok);
            i = next;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // Fractional part, but not a `..` range.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let kind = if text.chars().all(|d| d.is_ascii_digit() || d == '_') {
                TokKind::Int
            } else {
                TokKind::Num
            };
            toks.push(Token { kind, text, line: start_line });
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Everything else: one punctuation character.
        toks.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

/// Scans `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, or `b'…'` starting at `i`
/// (which points at the `r`/`b`). Returns the token and the index one
/// past the literal, or `None` if this is a plain identifier.
fn scan_prefixed_literal(chars: &[char], i: usize, line: u32) -> Option<(Token, usize)> {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            raw = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    if j >= n {
        return None;
    }
    if raw {
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None; // `r#foo` raw identifier or plain ident
        }
        j += 1;
        let start = j;
        // Find `"` followed by `hashes` hash marks.
        while j < n {
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && chars[k] == '#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    let body: String = chars[start..j].iter().collect();
                    return Some((Token { kind: TokKind::Str, text: body, line }, k));
                }
            }
            j += 1;
        }
        let body: String = chars[start..].iter().collect();
        Some((Token { kind: TokKind::Str, text: body, line }, n))
    } else if chars[j] == '"' {
        // b"…": scan with escapes.
        j += 1;
        let start = j;
        while j < n {
            if chars[j] == '\\' {
                j += 2;
                continue;
            }
            if chars[j] == '"' {
                let body: String = chars[start..j].iter().collect();
                return Some((Token { kind: TokKind::Str, text: body, line }, j + 1));
            }
            j += 1;
        }
        Some((Token { kind: TokKind::Str, text: chars[start..].iter().collect(), line }, n))
    } else if chars[i] == 'b' && chars[j] == '\'' {
        // b'…' byte literal.
        let (tok, next) = scan_quote(chars, j, line);
        Some((tok, next))
    } else {
        None
    }
}

/// Scans a normal string body starting just after the opening quote.
fn scan_string(chars: &[char], mut i: usize, line: &mut u32) -> (String, usize) {
    let n = chars.len();
    let start = i;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                let body: String = chars[start..i].iter().collect();
                for c in body.chars() {
                    if c == '\n' {
                        *line += 1;
                    }
                }
                return (body, i + 1);
            }
            _ => i += 1,
        }
    }
    let body: String = chars[start..].iter().collect();
    (body, n)
}

/// Scans from a `'`: either a char literal (`'a'`, `'\n'`, `'0'`) or a
/// lifetime (`'a`, `'static`). Returns the token and the next index.
fn scan_quote(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let mut j = i + 1;
    if j >= n {
        return (Token { kind: TokKind::Punct, text: "'".into(), line }, j);
    }
    if chars[j] == '\\' {
        // Escaped char literal: skip escape, find closing quote.
        j += 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return (Token { kind: TokKind::Char, text: String::new(), line }, (j + 1).min(n));
    }
    if is_ident_continue(chars[j]) {
        let start = j;
        j += 1;
        while j < n && is_ident_continue(chars[j]) {
            j += 1;
        }
        if j < n && chars[j] == '\'' {
            let body: String = chars[start..j].iter().collect();
            return (Token { kind: TokKind::Char, text: body, line }, j + 1);
        }
        let body: String = chars[start..j].iter().collect();
        return (Token { kind: TokKind::Lifetime, text: body, line }, j);
    }
    // `' '` and other single-char literals.
    if j + 1 < n && chars[j + 1] == '\'' {
        return (Token { kind: TokKind::Char, text: chars[j].to_string(), line }, j + 2);
    }
    (Token { kind: TokKind::Punct, text: "'".into(), line }, j)
}

/// Token-index ranges (half-open) that sit inside test-only code: bodies of
/// `#[cfg(test)]` items and `#[test]` functions.
pub fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if !(toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens (balanced square brackets).
        let attr_start = i + 2;
        let mut depth = 1usize;
        let mut j = attr_start;
        while j < n && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        let attr = &toks[attr_start..j.saturating_sub(1)];
        if !is_test_attr(attr) {
            i = j;
            continue;
        }
        // Skip any further attributes (e.g. `#[should_panic]`), then find
        // the item's body brace; a `;` first means no body (e.g. a
        // `#[cfg(test)] use …;` — nothing to mark).
        let mut k = j;
        loop {
            if k >= n {
                break;
            }
            if toks[k].is_punct('#') && k + 1 < n && toks[k + 1].is_punct('[') {
                let mut d = 1usize;
                k += 2;
                while k < n && d > 0 {
                    if toks[k].is_punct('[') {
                        d += 1;
                    } else if toks[k].is_punct(']') {
                        d -= 1;
                    }
                    k += 1;
                }
                continue;
            }
            if toks[k].is_punct(';') {
                k = n; // no body
                break;
            }
            if toks[k].is_punct('{') {
                break;
            }
            k += 1;
        }
        if k >= n {
            i = j;
            continue;
        }
        // Mark the balanced brace block as a test region.
        let body_start = k;
        let mut d = 1usize;
        k += 1;
        while k < n && d > 0 {
            if toks[k].is_punct('{') {
                d += 1;
            } else if toks[k].is_punct('}') {
                d -= 1;
            }
            k += 1;
        }
        regions.push((body_start, k));
        i = k;
    }
    regions
}

/// True for `#[test]` and `#[cfg(test)]`-style attributes. `cfg(not(test))`
/// guards *non*-test code and must not match.
fn is_test_attr(attr: &[Token]) -> bool {
    if attr.len() == 1 && attr.first().map(|t| t.is_ident("test")) == Some(true) {
        return true;
    }
    if attr.first().map(|t| t.is_ident("cfg")) == Some(true) {
        let has_test = attr.iter().any(|t| t.is_ident("test"));
        let has_not = attr.iter().any(|t| t.is_ident("not"));
        return has_test && !has_not;
    }
    false
}

/// True when token index `idx` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx < b)
}
