//! Syntactic item model: a std-only parser pass over the token stream.
//!
//! The line-lexer rules in [`crate::rules`] can only see one line at a
//! time; the item model gives the analyzer *shape*: which functions exist
//! (free fns, inherent and trait-impl methods), which of them carry a
//! `// enw:hot` annotation, what each body *calls* (free-fn, path, and
//! method call sites), what each body *does* (heap allocation, locking,
//! I/O — the effect classes the hot-path and determinism rules care
//! about), and which names a file imports from which workspace crate.
//! [`crate::graph`] links the call sites to definitions across the
//! workspace and runs the transitive rules on top.
//!
//! The parser is deliberately syntactic: brace matching over the
//! comment-stripped token stream, no type inference. Rules built on it
//! are written to under-approximate (skip what cannot be resolved) so a
//! deny finding is always actionable.

use crate::lexer::{self, TokKind, Token};

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary target (`src/bin/…`, `src/main.rs`): panic rules off.
    Bin,
    /// Test or bench target: panic rules off.
    Test,
    /// Example: panic rules off.
    Example,
}

/// Classifies a workspace-relative path into its owning crate (the
/// directory name under `crates/`) and target kind. Workspace-level
/// `tests/` and `examples/` are targets of the bench crate.
pub fn classify(rel_path: &str) -> (Option<String>, FileKind) {
    let p = rel_path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        let crate_name = rest.split('/').next().unwrap_or("").to_string();
        let kind = if rest.contains("/src/bin/") || rest.ends_with("src/main.rs") {
            FileKind::Bin
        } else if rest.contains("/tests/") || rest.contains("/benches/") {
            FileKind::Test
        } else if rest.contains("/examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        (Some(crate_name), kind)
    } else if p.starts_with("tests/") {
        (Some("bench".to_string()), FileKind::Test)
    } else if p.starts_with("examples/") {
        (Some("bench".to_string()), FileKind::Example)
    } else {
        (None, FileKind::Lib)
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` or `path::to::foo(…)`.
    Free,
    /// `receiver.foo(…)`.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Qualifying path segments before the name (`["enw_parallel",
    /// "scratch"]` for `enw_parallel::scratch::take_f32(…)`, `["Self"]`
    /// for `Self::helper(…)`); empty for bare and method calls.
    pub path: Vec<String>,
    /// Free/path call or method call.
    pub kind: CallKind,
    /// 1-indexed source line of the callee name.
    pub line: u32,
}

/// Effect classes the hot-path rules deny transitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Heap allocation (`vec!`, `Vec::new`, `Box::new`, `format!`,
    /// `.collect()`, `.clone()`, …).
    Alloc,
    /// Lock acquisition or lock-type mention (`Mutex`, `RwLock`,
    /// `.lock()`).
    Lock,
    /// I/O (`println!`, `std::fs`, `File`, stdio handles).
    Io,
}

impl EffectKind {
    /// Human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            EffectKind::Alloc => "allocates",
            EffectKind::Lock => "locks",
            EffectKind::Io => "does I/O",
        }
    }
}

/// One effect found in a function body.
#[derive(Debug, Clone)]
pub struct Effect {
    /// Which class of effect.
    pub kind: EffectKind,
    /// The construct that triggered it (`"vec!"`, `".clone()"`, …).
    pub what: String,
    /// 1-indexed source line.
    pub line: u32,
}

/// One function item (free fn, inherent method, or trait-impl method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Impl type name when the fn lives in an `impl` block.
    pub owner: Option<String>,
    /// Trait name when the fn lives in an `impl Trait for Type` block.
    pub trait_name: Option<String>,
    /// `pub` (any visibility restriction counts as non-pub-external).
    pub is_pub: bool,
    /// 1-indexed line of the `fn` token.
    pub line: u32,
    /// Annotated with a `// enw:hot` marker line.
    pub hot: bool,
    /// Declared inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// Signature has a `->` return type.
    pub returns_value: bool,
    /// Body token range (half-open, inside the braces); `None` for
    /// bodyless trait method declarations. Indices are valid for a
    /// fresh [`lexer::tokenize`] of the same source.
    pub body: Option<(usize, usize)>,
    /// Call sites extracted from the body (empty for bodyless trait
    /// method declarations).
    pub calls: Vec<CallSite>,
    /// Effects extracted from the body.
    pub effects: Vec<Effect>,
}

/// A `use` import: the local name it binds and the workspace crate it
/// comes from (`use enw_parallel::scratch;` binds `scratch` → crate
/// `parallel`). Non-workspace imports are not recorded.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Local name the import binds (respecting `as` aliases).
    pub name: String,
    /// Workspace crate directory name (`parallel`, `numerics`, …).
    pub from_crate: String,
}

/// The parsed item model of one source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Owning crate directory name (empty when outside `crates/`).
    pub crate_name: String,
    /// Target kind from the path.
    pub kind: FileKind,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// Workspace-crate imports.
    pub uses: Vec<UseDecl>,
    /// Names bound to `HashMap`/`HashSet` values anywhere in the file
    /// (let bindings and struct fields) — receivers for the
    /// unordered-iteration rules.
    pub hash_bindings: Vec<String>,
}

/// Method names too common in std to resolve by name alone: a call to
/// one of these is never linked to a workspace definition (it would
/// cross-link slice/option/iterator methods to unrelated impls).
pub const STD_METHOD_NAMES: &[&str] = &[
    "abs",
    "and_then",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chars",
    "chunks",
    "chunks_exact",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "copied",
    "copy_from_slice",
    "count",
    "default",
    "drain",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fill",
    "filter",
    "first",
    "flat_map",
    "floor",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "map",
    "max",
    "min",
    "ne",
    "next",
    "partial_cmp",
    "pop",
    "powi",
    "push",
    "push_str",
    "remove",
    "rev",
    "round",
    "skip",
    "sort",
    "split",
    "sqrt",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "values",
    "windows",
    "zip",
];

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "fn", "impl", "where",
    "let", "else", "break", "continue", "ref", "mut", "dyn",
];

/// Parses one file into its item model.
pub fn parse_source(rel_path: &str, src: &str) -> SourceFile {
    let (crate_name, kind) = classify(rel_path);
    let toks = lexer::tokenize(src);
    let test_regions = lexer::test_regions(&toks);
    let hot_lines: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim() == "// enw:hot")
        .map(|(i, _)| (i + 1) as u32)
        .collect();

    let mut file = SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.unwrap_or_default(),
        kind,
        fns: Vec::new(),
        uses: Vec::new(),
        hash_bindings: Vec::new(),
    };
    collect_uses(&toks, &mut file.uses);
    collect_hash_bindings(&toks, &mut file.hash_bindings);
    collect_fns(&toks, 0, toks.len(), None, &test_regions, &mut file.fns);

    // Attach `// enw:hot` markers: each marker annotates the first fn
    // whose `fn` token sits on a later line. Items arrive in source
    // order, so a linear pass suffices.
    for &marker in &hot_lines {
        if let Some(f) = file.fns.iter_mut().find(|f| f.line > marker && !f.hot) {
            f.hot = true;
        }
    }
    file
}

/// The impl context a fn was found under.
#[derive(Clone)]
struct ImplCtx {
    type_name: String,
    trait_name: Option<String>,
}

/// Recursively collects fn items in `toks[start..end)`, descending into
/// `impl`/`mod`/`trait` blocks. Nested fns inside fn bodies are *not*
/// split out: their calls and effects belong to the enclosing item.
fn collect_fns(
    toks: &[Token],
    start: usize,
    end: usize,
    ctx: Option<&ImplCtx>,
    test_regions: &[(usize, usize)],
    out: &mut Vec<FnItem>,
) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            let is_trait_decl = t.is_ident("trait");
            // Header runs to the block `{` (or `;` for `impl Trait for T;`
            // style never used here). Collect angle-depth-0 idents to find
            // the trait/type names.
            let Some(open) = (i + 1..end).find(|&k| toks[k].is_punct('{') || toks[k].is_punct(';'))
            else {
                i += 1;
                continue;
            };
            if toks[open].is_punct(';') {
                i = open + 1;
                continue;
            }
            let close = match_brace(toks, open, end);
            let header = impl_header(&toks[i + 1..open]);
            let new_ctx = if is_trait_decl {
                // Trait declarations: default method bodies belong to the
                // trait name; there is no concrete owner type, but method
                // calls still resolve by name, so record the trait as the
                // owner for display purposes.
                header.first().map(|n| ImplCtx { type_name: n.clone(), trait_name: None })
            } else {
                match header.iter().position(|s| s == "for") {
                    Some(pos) => {
                        let trait_name = header.get(pos.wrapping_sub(1)).cloned();
                        let type_name = header.last().filter(|_| pos + 1 < header.len()).cloned();
                        type_name.map(|type_name| ImplCtx { type_name, trait_name })
                    }
                    None => {
                        header.last().map(|n| ImplCtx { type_name: n.clone(), trait_name: None })
                    }
                }
            };
            collect_fns(toks, open + 1, close, new_ctx.as_ref(), test_regions, out);
            i = close + 1;
            continue;
        }
        if t.is_ident("mod") {
            // `mod name { … }`: descend with the same (no-impl) context;
            // `mod name;` declarations have no body.
            if let Some(open) = (i + 1..(i + 4).min(end)).find(|&k| toks[k].is_punct('{')) {
                let close = match_brace(toks, open, end);
                collect_fns(toks, open + 1, close, None, test_regions, out);
                i = close + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if t.is_ident("fn") {
            let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let sig_end = (i + 2..end)
                .find(|&k| toks[k].is_punct('{') || toks[k].is_punct(';'))
                .unwrap_or(end.min(toks.len()));
            let returns_value = (i + 2..sig_end.min(toks.len())).any(|k| {
                toks[k].is_punct('-') && toks.get(k + 1).map(|n| n.is_punct('>')) == Some(true)
            });
            let mut item = FnItem {
                name: name_tok.text.clone(),
                owner: ctx.map(|c| c.type_name.clone()),
                trait_name: ctx.and_then(|c| c.trait_name.clone()),
                is_pub: is_pub_before(toks, i),
                line: t.line,
                hot: false,
                in_test: lexer::in_regions(test_regions, i),
                returns_value,
                body: None,
                calls: Vec::new(),
                effects: Vec::new(),
            };
            if sig_end < end && toks[sig_end].is_punct('{') {
                let close = match_brace(toks, sig_end, end);
                item.body = Some((sig_end + 1, close));
                scan_calls(toks, sig_end + 1, close, &mut item.calls);
                scan_effects(toks, sig_end + 1, close, &mut item.effects);
                out.push(item);
                i = close + 1;
            } else {
                out.push(item); // bodyless trait method declaration
                i = sig_end + 1;
            }
            continue;
        }
        i += 1;
    }
}

/// Angle-depth-0 idents of an impl/trait header (generic parameters and
/// bounds inside `<…>` are skipped; `where` clauses end the scan).
fn impl_header(toks: &[Token]) -> Vec<String> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    for t in toks {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.kind == TokKind::Ident {
            if t.text == "where" {
                break;
            }
            out.push(t.text.clone());
        }
    }
    out
}

/// Index one past the `}` matching the `{` at `open` (clamped to `end`).
fn match_brace(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < end && depth > 0 {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    k.min(end)
}

/// True when the item whose first keyword token is at `i` is `pub`:
/// walks back over declaration qualifiers and a possible `(crate)`
/// visibility group.
fn is_pub_before(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "const" | "unsafe" | "async" | "extern" => continue,
                "pub" => return true,
                _ => return false,
            },
            TokKind::Str => continue, // `extern "C"` ABI string
            TokKind::Punct if t.is_punct(')') => {
                // Visibility group `pub(crate)`/`pub(super)`: restricted
                // visibility is not the public surface.
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// Extracts call sites from a body token range.
fn scan_calls(toks: &[Token], start: usize, end: usize, out: &mut Vec<CallSite>) {
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_IDENTS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Macro invocation (`name!(`): not a call site.
        if toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true) {
            i += 2;
            continue;
        }
        // A call is `name [::<turbofish>] (`.
        let after = skip_turbofish(toks, i + 1, end);
        if toks.get(after).map(|n| n.is_punct('(')) != Some(true) {
            i += 1;
            continue;
        }
        // `fn name(` is a declaration, not a call (nested fns).
        if i > 0 && toks[i - 1].is_ident("fn") {
            i = after + 1;
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let path = if is_method { Vec::new() } else { leading_path(toks, i) };
        out.push(CallSite {
            name: t.text.clone(),
            path,
            kind: if is_method { CallKind::Method } else { CallKind::Free },
            line: t.line,
        });
        i = after + 1;
    }
}

/// Skips a `::<…>` turbofish starting at `i`; returns the index after it
/// (or `i` unchanged when there is none).
fn skip_turbofish(toks: &[Token], i: usize, end: usize) -> usize {
    if !(toks.get(i).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 2).map(|t| t.is_punct('<')) == Some(true))
    {
        return i;
    }
    let mut depth = 1i32;
    let mut k = i + 3;
    while k < end.min(toks.len()) && depth > 0 {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') {
            depth -= 1;
        }
        k += 1;
    }
    k
}

/// Path segments qualifying the callee name at `i` (`a::b::name` →
/// `["a", "b"]`), walking `ident ::` pairs backwards.
fn leading_path(toks: &[Token], i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 3
        && toks[j - 1].is_punct(':')
        && toks[j - 2].is_punct(':')
        && toks[j - 3].kind == TokKind::Ident
    {
        // `>::name` (qualified generic) would put a '>' at j-3; the ident
        // check above already excludes it.
        segs.push(toks[j - 3].text.clone());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Allocating method names for the effect scan (`.name(` forms).
const ALLOC_METHODS: &[&str] = &["to_vec", "clone", "to_owned", "to_string", "collect"];

/// Allocating `Type::assoc` forms.
const ALLOC_ASSOC: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
];

/// Extracts alloc/lock/io effects from a body token range.
fn scan_effects(toks: &[Token], start: usize, end: usize, out: &mut Vec<Effect>) {
    let end = end.min(toks.len());
    let mut push = |kind: EffectKind, what: &str, line: u32| {
        out.push(Effect { kind, what: what.to_string(), line });
    };
    for i in start..end {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let bang = toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true);
                match t.text.as_str() {
                    "vec" if bang => push(EffectKind::Alloc, "vec!", t.line),
                    "format" if bang => push(EffectKind::Alloc, "format!", t.line),
                    "println" | "eprintln" | "print" | "eprint" if bang => {
                        push(EffectKind::Io, &format!("{}!", t.text), t.line);
                    }
                    "Mutex" | "RwLock" | "Condvar" => {
                        push(EffectKind::Lock, &t.text.clone(), t.line);
                    }
                    "File" | "OpenOptions" | "stdin" | "stdout" | "stderr" => {
                        push(EffectKind::Io, &t.text.clone(), t.line);
                    }
                    "fs" if i > 0
                        && toks[i - 1].is_punct(':')
                        && toks.get(i + 1).map(|n| n.is_punct(':')) == Some(true) =>
                    {
                        push(EffectKind::Io, "std::fs", t.line);
                    }
                    name => {
                        for (ty, methods) in ALLOC_ASSOC {
                            if name == *ty
                                && toks.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
                                && toks.get(i + 2).map(|n| n.is_punct(':')) == Some(true)
                            {
                                if let Some(m) = toks.get(i + 3) {
                                    if methods.iter().any(|s| m.is_ident(s)) {
                                        push(
                                            EffectKind::Alloc,
                                            &format!("{ty}::{}", m.text),
                                            t.line,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            TokKind::Punct if t.is_punct('.') => {
                let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) else {
                    continue;
                };
                let after = skip_turbofish(toks, i + 2, end);
                if toks.get(after).map(|n| n.is_punct('(')) != Some(true) {
                    continue;
                }
                if ALLOC_METHODS.contains(&m.text.as_str()) {
                    push(EffectKind::Alloc, &format!(".{}()", m.text), m.line);
                } else if m.text == "lock" {
                    push(EffectKind::Lock, ".lock()", m.line);
                }
            }
            _ => {}
        }
    }
}

/// Records workspace-crate imports: `use enw_x::…` binds each leaf name
/// (respecting `as` aliases and `{…}` groups) to crate `x`; intermediate
/// module imports (`use enw_parallel::scratch;`) bind the module name.
fn collect_uses(toks: &[Token], out: &mut Vec<UseDecl>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        let Some(stop) = (i + 1..toks.len()).find(|&k| toks[k].is_punct(';')) else {
            break;
        };
        let decl = &toks[i + 1..stop];
        if let Some(first) = decl.first() {
            if let Some(crate_name) = first.text.strip_prefix("enw_") {
                // Leaf names: idents not followed by `::`, skipping the
                // `as` keyword itself but keeping its alias.
                let mut k = 1;
                while k < decl.len() {
                    let t = &decl[k];
                    if t.kind == TokKind::Ident && t.text != "as" {
                        let followed_by_path = decl.get(k + 1).map(|n| n.is_punct(':'))
                            == Some(true)
                            && decl.get(k + 2).map(|n| n.is_punct(':')) == Some(true);
                        let aliased = decl.get(k + 1).map(|n| n.is_ident("as")) == Some(true);
                        if !followed_by_path && !aliased && t.text != "self" {
                            out.push(UseDecl {
                                name: t.text.clone(),
                                from_crate: crate_name.to_string(),
                            });
                        }
                    }
                    k += 1;
                }
                // `use enw_x;` alone binds the crate name itself.
                if decl.len() == 1 {
                    out.push(UseDecl {
                        name: first.text.clone(),
                        from_crate: crate_name.to_string(),
                    });
                }
            }
        }
        i = stop + 1;
    }
}

/// Records names bound to hash-ordered collections anywhere in the file:
/// `let x: HashMap<…>`, `x = HashMap::new()`, struct fields
/// `x: HashMap<…>`. The unordered-iteration rules treat these names as
/// hash receivers.
fn collect_hash_bindings(toks: &[Token], out: &mut Vec<String>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // Skip reference sigils and lifetimes (`&'a mut HashMap<…>`).
        while j > 0
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        let Some(prev) = j.checked_sub(1).map(|k| &toks[k]) else {
            continue;
        };
        // `name : HashMap` (type ascription / struct field / parameter)
        // or `name = HashMap::…` (initialiser).
        let bound = if prev.is_punct(':') || prev.is_punct('=') {
            // `::` path separators were consumed above, so a single ':'
            // here is a genuine ascription.
            j.checked_sub(2).map(|k| &toks[k])
        } else {
            None
        };
        if let Some(b) = bound {
            if b.kind == TokKind::Ident && !out.contains(&b.text) {
                out.push(b.text.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_free_fns_impls_and_trait_impls() {
        let src = "pub fn free(x: u32) -> u32 { helper(x) }\n\
                   fn helper(x: u32) -> u32 { x }\n\
                   struct T { n: usize }\n\
                   impl T {\n    pub fn method(&self) -> usize { self.n }\n}\n\
                   trait Tr { fn required(&self); fn provided(&self) {} }\n\
                   impl Tr for T {\n    fn required(&self) { self.method(); }\n}\n";
        let f = parse_source("crates/numerics/src/x.rs", src);
        let names: Vec<(&str, Option<&str>, Option<&str>)> = f
            .fns
            .iter()
            .map(|i| (i.name.as_str(), i.owner.as_deref(), i.trait_name.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, None),
                ("helper", None, None),
                ("method", Some("T"), None),
                ("required", Some("Tr"), None),
                ("provided", Some("Tr"), None),
                ("required", Some("T"), Some("Tr")),
            ]
        );
        let free = &f.fns[0];
        assert!(free.is_pub && free.returns_value);
        assert_eq!(free.calls.len(), 1);
        assert_eq!(free.calls[0].name, "helper");
        assert_eq!(free.calls[0].kind, CallKind::Free);
        let required_impl = f.fns.last().expect("trait impl parsed");
        assert_eq!(required_impl.calls[0].kind, CallKind::Method);
    }

    #[test]
    fn hot_marker_attaches_to_next_fn() {
        let src = "// enw:hot\n#[inline]\npub fn hot_one() {}\n\npub fn cold_one() {}\n";
        let f = parse_source("crates/numerics/src/x.rs", src);
        assert_eq!(
            f.fns.iter().map(|i| (i.name.as_str(), i.hot)).collect::<Vec<_>>(),
            vec![("hot_one", true), ("cold_one", false)]
        );
    }

    #[test]
    fn extracts_paths_effects_and_uses() {
        let src = "use enw_parallel::scratch;\nuse enw_mann::{episode, Memory as Mem};\n\
                   fn f(xs: &[f32]) -> Vec<f32> {\n\
                       let mut buf = scratch::take_f32(xs.len());\n\
                       let v: Vec<f32> = xs.iter().copied().collect::<Vec<f32>>();\n\
                       let b = Box::new(1u32);\n\
                       let s = format!(\"{}\", 1);\n\
                       v\n\
                   }\n";
        let f = parse_source("crates/xmann/src/x.rs", src);
        let calls: Vec<(&str, Vec<&str>)> = f.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.path.iter().map(String::as_str).collect()))
            .collect();
        assert!(calls.contains(&("take_f32", vec!["scratch"])));
        let effects: Vec<&str> = f.fns[0].effects.iter().map(|e| e.what.as_str()).collect();
        assert!(effects.contains(&".collect()"), "{effects:?}");
        assert!(effects.contains(&"Box::new"), "{effects:?}");
        assert!(effects.contains(&"format!"), "{effects:?}");
        let uses: Vec<(&str, &str)> =
            f.uses.iter().map(|u| (u.name.as_str(), u.from_crate.as_str())).collect();
        assert_eq!(uses, vec![("scratch", "parallel"), ("episode", "mann"), ("Mem", "mann")]);
    }

    #[test]
    fn hash_bindings_cover_lets_and_fields() {
        let src = "struct S { index: std::collections::HashMap<u32, u32> }\n\
                   fn f() {\n    let seen = HashSet::new();\n    let other: Vec<u32> = Vec::new();\n}\n";
        let f = parse_source("crates/core/src/x.rs", src);
        assert_eq!(f.hash_bindings, vec!["index".to_string(), "seen".to_string()]);
    }
}
