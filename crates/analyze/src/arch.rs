//! Architectural rules over crate manifests.
//!
//! | id       | severity | what it enforces |
//! |----------|----------|------------------|
//! | ENW-A001 | deny     | internal dependency edges must follow the declared layering |
//! | ENW-A003 | deny     | `proptest`/`criterion` in `[dependencies]` must be `optional` (feature-gated vendored shims) |
//!
//! The layering table below is the single source of truth for who may
//! depend on whom. A crate that is not listed is itself a deny finding:
//! adding a crate to the workspace requires declaring its place in the
//! architecture here.

use crate::report::{Finding, Severity};

/// Allowed internal (`enw-*`) dependencies per crate directory, bottom of
/// the stack first. `dev-dependencies` are exempt (tests may reach
/// anywhere below them in the build graph anyway).
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("trace", &[]),
    // The persistent pool flushes worker-thread trace recorders after
    // every job, so the runtime sits one rung above trace.
    ("parallel", &["trace"]),
    ("numerics", &["parallel", "trace"]),
    ("nn", &["numerics", "parallel"]),
    ("crossbar", &["numerics", "nn", "parallel", "trace"]),
    ("mann", &["numerics", "nn", "parallel", "trace"]),
    ("xmann", &["numerics", "mann", "parallel", "trace"]),
    ("cam", &["numerics", "mann", "xmann", "parallel", "trace"]),
    ("recsys", &["numerics", "nn", "parallel", "trace"]),
    ("serve", &["numerics", "nn", "crossbar", "mann", "cam", "recsys", "parallel", "trace"]),
    // The cluster layer sits on top of the single-node serving runtime:
    // it reuses serve's clock/metrics/load-shape surface and shards the
    // recsys embedding store, but never reaches into the other lanes'
    // hardware models directly.
    ("fleet", &["numerics", "recsys", "serve", "parallel", "trace"]),
    (
        "core",
        &[
            "numerics", "nn", "crossbar", "mann", "xmann", "cam", "recsys", "serve", "fleet",
            "parallel", "trace",
        ],
    ),
    // The design-space explorer drives every simulator through the
    // `Tunable` surface that `core` re-exports, and fans evaluations out
    // through the deterministic runtime; it never reaches into a lane
    // crate directly.
    ("dse", &["core", "parallel"]),
    ("bench", &["core", "dse"]),
    ("analyze", &[]),
];

/// Vendored shims that must stay behind an explicit feature when they are
/// a build (not dev) dependency.
const GATED_SHIMS: &[&str] = &["proptest", "criterion"];

/// Lints one crate manifest. `crate_dir` is the directory name under
/// `crates/`, `rel_path` the manifest path used in findings.
pub fn check_manifest(crate_dir: &str, rel_path: &str, contents: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let allowed = ALLOWED_DEPS.iter().find(|(c, _)| *c == crate_dir).map(|(_, deps)| *deps);
    let mut section = String::new();
    for (lineno, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno as u32 + 1;
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if section != "dependencies" || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name = …`, `name.workspace = true`, or `name = { … }`.
        let Some(dep) = line.split(['=', '.', ' ']).next().map(str::trim) else {
            continue;
        };
        if dep.is_empty() {
            continue;
        }
        if GATED_SHIMS.contains(&dep) && !line.contains("optional = true") {
            out.push(Finding::new(
                "ENW-A003",
                Severity::Deny,
                rel_path,
                lineno,
                format!(
                    "vendored shim `{dep}` must be `optional = true` behind a feature so \
                     tier-1 builds never compile it"
                ),
                line.to_string(),
            ));
        }
        if let Some(internal) = dep.strip_prefix("enw-") {
            match allowed {
                None => {
                    out.push(Finding::new(
                        "ENW-A001",
                        Severity::Deny,
                        rel_path,
                        lineno,
                        format!(
                            "crate `{crate_dir}` has no entry in the layering table \
                             (crates/analyze/src/arch.rs); declare its allowed dependencies"
                        ),
                        line.to_string(),
                    ));
                }
                Some(deps) if !deps.contains(&internal) => {
                    out.push(Finding::new(
                        "ENW-A001",
                        Severity::Deny,
                        rel_path,
                        lineno,
                        format!(
                            "`{crate_dir}` may not depend on `enw-{internal}` \
                             (allowed: {})",
                            if deps.is_empty() { "none".to_string() } else { deps.join(", ") }
                        ),
                        line.to_string(),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    out
}
