//! Workspace self-check: the tree at HEAD must be lint-clean, i.e.
//! `cargo run -p enw-analyze` exits 0. Running the same library entry
//! point the binary uses keeps this inside plain `cargo test` (no nested
//! cargo invocation needed).

use std::path::Path;

#[test]
fn workspace_has_no_deny_findings_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    let denies: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.severity == enw_analyze::Severity::Deny)
        .map(|f| format!("{f}"))
        .collect();
    assert!(
        denies.is_empty(),
        "deny-level lint findings at HEAD (fix them or waive in lint.toml):\n{}",
        denies.join("\n")
    );
    assert!(
        analysis.files_scanned > 50,
        "scanned only {} files — walker broken?",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_checked >= 12,
        "checked only {} manifests",
        analysis.manifests_checked
    );
}

#[test]
fn workspace_waivers_are_all_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    let stale: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "ENW-C001")
        .map(|f| f.message.clone())
        .collect();
    assert!(stale.is_empty(), "stale lint.toml entries:\n{}", stale.join("\n"));
}
