//! Workspace self-check: the tree at HEAD must be lint-clean, i.e.
//! `cargo run -p enw-analyze` exits 0. Running the same library entry
//! point the binary uses keeps this inside plain `cargo test` (no nested
//! cargo invocation needed). Also asserts the call-graph invariants the
//! transitive rules depend on: every `// enw:hot` marker attaches to a
//! function that lands in the graph as a hot root, and the report JSON
//! (fingerprints included) is byte-identical across reruns.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use enw_analyze::graph::CallGraph;
use enw_analyze::parse::{parse_source, FileKind};

/// Workspace-relative `(path, contents)` pairs for every `.rs` file under
/// `crates/`, mirroring the walker in `analyze_workspace`.
fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !["target", "vendor", ".git", ".github"].contains(&name.as_ref()) {
                    walk(&path, out);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            let src = fs::read_to_string(&p).unwrap_or_default();
            (rel, src)
        })
        .collect()
}

#[test]
fn workspace_has_no_deny_findings_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    let denies: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.severity == enw_analyze::Severity::Deny)
        .map(|f| format!("{f}"))
        .collect();
    assert!(
        denies.is_empty(),
        "deny-level lint findings at HEAD (fix them or waive in lint.toml):\n{}",
        denies.join("\n")
    );
    assert!(
        analysis.files_scanned > 50,
        "scanned only {} files — walker broken?",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_checked >= 12,
        "checked only {} manifests",
        analysis.manifests_checked
    );
}

#[test]
fn workspace_waivers_are_all_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    let stale: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "ENW-C001")
        .map(|f| f.message.clone())
        .collect();
    assert!(stale.is_empty(), "stale lint.toml entries:\n{}", stale.join("\n"));
}

#[test]
fn every_hot_marker_resolves_into_the_call_graph() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = workspace_sources(&root);
    let files: Vec<_> = sources.iter().map(|(p, s)| parse_source(p, s)).collect();

    // Count raw `// enw:hot` marker lines in graph-eligible library files
    // (the graph models the shipped surface: Lib targets outside the
    // analyze/bench tooling, non-test fns).
    let mut markers = 0usize;
    for ((_, src), file) in sources.iter().zip(&files) {
        if file.kind != FileKind::Lib
            || file.crate_name.is_empty()
            || file.crate_name == "analyze"
            || file.crate_name == "bench"
        {
            continue;
        }
        markers += src.lines().filter(|l| l.trim() == "// enw:hot").count();
        // Marker attachment: every annotation must have latched onto a
        // function item — an orphaned marker silently disables both M001
        // and M002 for the kernel it meant to protect.
        let attached = file.fns.iter().filter(|f| f.hot).count();
        assert_eq!(
            src.lines().filter(|l| l.trim() == "// enw:hot").count(),
            attached,
            "orphaned `// enw:hot` marker in {}",
            file.rel_path
        );
    }
    assert!(markers >= 30, "only {markers} hot markers found — tree changed unexpectedly?");

    let graph = CallGraph::build(&files);
    assert_eq!(
        graph.hot_roots.len(),
        markers,
        "every `// enw:hot` fn must land in the graph as a hot root"
    );
    // And the graph is not degenerate: hot kernels call other functions.
    let resolved_edges: usize = graph.hot_roots.iter().map(|&n| graph.edges[n].len()).sum();
    assert!(resolved_edges > 0, "no calls resolved out of any hot root — resolver broken?");
}

#[test]
fn report_json_is_deterministic_across_reruns() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    let b = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    assert_eq!(a.to_json(), b.to_json(), "report must be byte-identical across reruns");
}

#[test]
fn baseline_round_trips_through_the_report_json() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = enw_analyze::analyze_workspace(&root).expect("analysis runs");
    // A baseline snapshot of HEAD accepts HEAD: the gate only fires on
    // findings introduced after the snapshot.
    let accepted = enw_analyze::baseline_fingerprints(&analysis.to_json());
    assert!(analysis.new_vs_baseline(&accepted).is_empty());
    // Fingerprints are unique within the run, so the diff is well-defined.
    let unique: BTreeSet<&str> = analysis.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    assert_eq!(unique.len(), analysis.findings.len());
}
