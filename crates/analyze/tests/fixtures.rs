//! Golden-fixture tests: one small source snippet per rule, asserting the
//! exact rule id and line, plus clean negatives proving the rules do not
//! fire on comments, doc examples, test modules, or allowed crates.

use enw_analyze::arch::check_manifest;
use enw_analyze::config::{apply_allowlist, parse_allowlist};
use enw_analyze::report::{Analysis, Severity};
use enw_analyze::scan_source;

/// Rule/line pairs from a scan, for compact assertions.
fn hits(path: &str, src: &str) -> Vec<(String, u32)> {
    scan_source(path, src).into_iter().map(|f| (f.rule.to_string(), f.line)).collect()
}

#[test]
fn d001_hashmap_in_kernel_crate() {
    let src = "use std::collections::HashMap;\n\nfn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    let got = hits("crates/numerics/src/foo.rs", src);
    assert_eq!(
        got,
        vec![("ENW-D001".to_string(), 1), ("ENW-D001".to_string(), 4), ("ENW-D001".to_string(), 4)]
    );
}

#[test]
fn d001_hashset_in_recsys() {
    let got = hits("crates/recsys/src/foo.rs", "use std::collections::HashSet;\n");
    assert_eq!(got, vec![("ENW-D001".to_string(), 1)]);
}

#[test]
fn d001_silent_in_non_kernel_crate() {
    assert!(hits("crates/core/src/foo.rs", "use std::collections::HashMap;\n").is_empty());
    assert!(hits("crates/nn/src/foo.rs", "use std::collections::HashMap;\n").is_empty());
}

#[test]
fn d001_silent_in_kernel_test_module() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
}

#[test]
fn d002_instant_outside_bench() {
    let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
    let got = hits("crates/crossbar/src/foo.rs", src);
    assert_eq!(got, vec![("ENW-D002".to_string(), 1), ("ENW-D002".to_string(), 2)]);
}

#[test]
fn d002_system_time_is_also_denied() {
    let got = hits("crates/core/src/foo.rs", "fn f() -> std::time::SystemTime { todo() }\n");
    assert_eq!(got, vec![("ENW-D002".to_string(), 1)]);
}

#[test]
fn d002_silent_in_bench_and_parallel() {
    let src = "use std::time::Instant;\n";
    assert!(hits("crates/bench/src/foo.rs", src).is_empty());
    assert!(hits("crates/parallel/src/foo.rs", src).is_empty());
}

#[test]
fn d003_ambient_entropy() {
    let src = "fn f() { let mut r = thread_rng(); }\n";
    assert_eq!(hits("crates/mann/src/foo.rs", src), vec![("ENW-D003".to_string(), 1)]);
    let src = "use std::collections::hash_map::RandomState;\n";
    assert_eq!(hits("crates/core/src/foo.rs", src), vec![("ENW-D003".to_string(), 1)]);
}

#[test]
fn d004_thread_spawn_outside_parallel() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(hits("crates/recsys/src/foo.rs", src), vec![("ENW-D004".to_string(), 2)]);
    assert!(hits("crates/parallel/src/foo.rs", src).is_empty());
}

#[test]
fn p005_thread_scope_outside_parallel() {
    let src = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
    assert_eq!(hits("crates/numerics/src/foo.rs", src), vec![("ENW-P005".to_string(), 2)]);
    let bare = "use std::thread;\nfn f() {\n    thread::scope(|s| { let _ = s; });\n}\n";
    assert_eq!(hits("crates/cam/src/foo.rs", bare), vec![("ENW-P005".to_string(), 3)]);
}

#[test]
fn p005_silent_in_parallel_and_test_code() {
    let src = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
    assert!(hits("crates/parallel/src/foo.rs", src).is_empty());
    let test_src =
        "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::scope(|s| { let _ = s; }); }\n}\n";
    assert!(hits("crates/serve/src/foo.rs", test_src).is_empty());
}

#[test]
fn p001_unwrap_in_lib_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(hits("crates/cam/src/foo.rs", src), vec![("ENW-P001".to_string(), 2)]);
}

#[test]
fn p001_unwrap_or_is_fine() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0).max(x.unwrap_or_default())\n}\n";
    assert!(hits("crates/cam/src/foo.rs", src).is_empty());
}

#[test]
fn p002_expect_in_lib_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
    assert_eq!(hits("crates/xmann/src/foo.rs", src), vec![("ENW-P002".to_string(), 2)]);
}

#[test]
fn p003_panic_macros() {
    let src = "fn f(n: u32) {\n    panic!(\"boom\");\n    todo!();\n    unimplemented!();\n    unreachable!();\n}\n";
    let got = hits("crates/nn/src/foo.rs", src);
    assert_eq!(
        got,
        vec![
            ("ENW-P003".to_string(), 2),
            ("ENW-P003".to_string(), 3),
            ("ENW-P003".to_string(), 4),
            ("ENW-P003".to_string(), 5),
        ]
    );
}

#[test]
fn p003_assert_is_not_flagged() {
    let src = "fn f(n: usize) {\n    assert!(n > 0, \"n must be positive\");\n    assert_eq!(n % 2, 0);\n}\n";
    assert!(hits("crates/nn/src/foo.rs", src).is_empty());
}

#[test]
fn p004_literal_indexing_is_warn_severity() {
    let src = "fn f(xs: &[u32]) -> u32 {\n    xs[0]\n}\n";
    let findings = scan_source("crates/numerics/src/foo.rs", src);
    assert_eq!(findings.len(), 1);
    let f = findings.first().expect("one finding");
    assert_eq!(f.rule, "ENW-P004");
    assert_eq!(f.line, 2);
    assert_eq!(f.severity, Severity::Warn);
}

#[test]
fn p004_variable_indexing_and_array_types_are_fine() {
    let src = "fn f(xs: &[u32], i: usize) -> u32 {\n    let a: [u32; 4] = [0, 1, 2, 3];\n    xs[i] + a[i]\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
}

#[test]
fn panic_rules_skip_tests_bins_and_examples() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(hits("crates/cam/tests/foo.rs", src).is_empty());
    assert!(hits("crates/cam/benches/foo.rs", src).is_empty());
    assert!(hits("crates/bench/src/bin/exp99.rs", src).is_empty());
    assert!(hits("examples/demo.rs", src).is_empty());
    assert!(hits("tests/integration.rs", src).is_empty());
    // …but determinism rules still apply outside test targets of kernel
    // crates' lib code.
    assert!(!hits("crates/cam/src/foo.rs", src).is_empty());
}

#[test]
fn test_function_bodies_are_exempt() {
    let src = "fn lib_fn(x: Option<u32>) -> u32 {\n    x.unwrap_or(1)\n}\n\n#[test]\nfn check() {\n    let v: Option<u32> = None;\n    v.unwrap();\n}\n";
    assert!(hits("crates/mann/src/foo.rs", src).is_empty());
}

#[test]
fn cfg_not_test_is_not_exempt() {
    let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(hits("crates/mann/src/foo.rs", src), vec![("ENW-P001".to_string(), 3)]);
}

#[test]
fn doc_comments_and_strings_do_not_trip_rules() {
    let src = "/// Call `xs.first()` — never `xs.unwrap()` — like this:\n///\n/// ```\n/// let v = HashMap::new();\n/// std::thread::spawn(|| {});\n/// ```\nfn f() {\n    let _msg = \"don't panic!(now) or .unwrap() anything\";\n    // panic!(\"in a comment\")\n    /* nested /* block */ with .expect(\"x\") */\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
}

#[test]
fn raw_strings_and_lifetimes_lex_cleanly() {
    let src = "fn f<'a>(s: &'a str) -> &'a str {\n    let _raw = r#\"panic!(\"quoted\")\"#;\n    let _c = 'x';\n    let _esc = '\\n';\n    s\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
}

#[test]
fn a002_bench_artifact_prefix_outside_bench() {
    let src = "fn f() {\n    let path = \"BENCH_foo.json\";\n}\n";
    assert_eq!(hits("crates/recsys/src/foo.rs", src), vec![("ENW-A002".to_string(), 2)]);
    assert!(hits("crates/bench/src/bin/exp15.rs", src).is_empty());
}

#[test]
fn serve_is_a_kernel_crate_for_determinism_rules() {
    // The serving runtime's response stream is a pure function of the
    // trace, so hash iteration order (D001) and ambient clocks/entropy
    // (D002/D003) are denied in `crates/serve` library code — virtual
    // time only; real clocks stay in bench/parallel.
    let got = hits("crates/serve/src/scheduler.rs", "use std::collections::HashMap;\n");
    assert_eq!(got, vec![("ENW-D001".to_string(), 1)]);
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(hits("crates/serve/src/clock.rs", src), vec![("ENW-D002".to_string(), 1)]);
    let src = "fn f() { let mut r = thread_rng(); }\n";
    assert_eq!(hits("crates/serve/src/loadgen.rs", src), vec![("ENW-D003".to_string(), 1)]);
    // Emitting report artifacts from serve is also denied (A002): the
    // JSON writer lives in the exp16 bench binary.
    let src = "fn f() { let _p = \"BENCH_serving.json\"; }\n";
    assert_eq!(hits("crates/serve/src/metrics.rs", src), vec![("ENW-A002".to_string(), 1)]);
}

#[test]
fn fleet_is_a_kernel_crate_for_determinism_rules() {
    // The fleet report is a pure function of (spec, trace) — routing,
    // shard placement and autoscaling all feed the byte-exact render —
    // so the fleet crate gets the same determinism discipline as serve.
    let got = hits("crates/fleet/src/ring.rs", "use std::collections::HashMap;\n");
    assert_eq!(got, vec![("ENW-D001".to_string(), 1)]);
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(hits("crates/fleet/src/sim.rs", src), vec![("ENW-D002".to_string(), 1)]);
    let src = "fn f() { let mut r = thread_rng(); }\n";
    assert_eq!(hits("crates/fleet/src/shape.rs", src), vec![("ENW-D003".to_string(), 1)]);
    // The JSON writer lives in the exp19 bench binary, not the library.
    let src = "fn f() { let _p = \"BENCH_fleet.json\"; }\n";
    assert_eq!(hits("crates/fleet/src/sim.rs", src), vec![("ENW-A002".to_string(), 1)]);
}

#[test]
fn fleet_layering_allows_serving_stack_but_not_core() {
    let good = "[dependencies]\nenw-numerics.workspace = true\nenw-recsys.workspace = true\nenw-serve.workspace = true\nenw-parallel.workspace = true\nenw-trace.workspace = true\n";
    assert!(check_manifest("fleet", "crates/fleet/Cargo.toml", good).is_empty());
    // fleet sits below core like every workload crate; depending upward
    // is a layering violation, as is reaching for another workload lane.
    let bad = "[dependencies]\nenw-core.workspace = true\nenw-cam.workspace = true\n";
    let got = check_manifest("fleet", "crates/fleet/Cargo.toml", bad);
    let lines: Vec<_> = got.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(lines, vec![("ENW-A001", 2), ("ENW-A001", 3)]);
}

#[test]
fn trace_is_a_kernel_crate_for_determinism_rules() {
    // TraceReport bytes are part of the reproducible output, so the trace
    // crate gets the full determinism treatment: no hash iteration order
    // (D001) and no ambient clocks (D002) — spans run on virtual time or
    // an installed time source only.
    let got = hits("crates/trace/src/recorder.rs", "use std::collections::HashMap;\n");
    assert_eq!(got, vec![("ENW-D001".to_string(), 1)]);
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(hits("crates/trace/src/lib.rs", src), vec![("ENW-D002".to_string(), 1)]);
}

#[test]
fn a004_unchecked_constructor_in_kernel_crate() {
    let src =
        "impl Tile {\n    pub fn new_unchecked(n: usize) -> Self {\n        Tile { n }\n    }\n}\n";
    assert_eq!(hits("crates/crossbar/src/foo.rs", src), vec![("ENW-A004".to_string(), 2)]);
    let src = "pub fn from_parts_unchecked(a: u32) -> u32 { a }\n";
    assert_eq!(hits("crates/trace/src/foo.rs", src), vec![("ENW-A004".to_string(), 1)]);
    let src = "pub const fn unwrap_config(c: Option<u32>) -> u32 { 0 }\n";
    assert_eq!(hits("crates/serve/src/foo.rs", src), vec![("ENW-A004".to_string(), 1)]);
}

#[test]
fn a004_spares_validated_and_private_apis() {
    // Plain constructors, try_* APIs, and builders are the sanctioned
    // surface.
    let src = "pub fn new(n: usize) -> Self { Self { n } }\npub fn try_new(n: usize) -> Result<Self, E> { Ok(Self { n }) }\npub fn builder() -> Builder { Builder::default() }\n";
    assert!(hits("crates/crossbar/src/foo.rs", src).is_empty());
    // Crate-private helpers may do what they like.
    let src = "pub(crate) fn new_unchecked(n: usize) -> usize { n }\nfn also_unchecked() {}\n";
    assert!(hits("crates/crossbar/src/foo.rs", src).is_empty());
    // Non-kernel crates (reports, bookkeeping) are out of scope.
    let src = "pub fn new_unchecked(n: usize) -> usize { n }\n";
    assert!(hits("crates/core/src/foo.rs", src).is_empty());
    // Test modules inside kernel crates are exempt.
    let src = "#[cfg(test)]\nmod tests {\n    pub fn new_unchecked() {}\n}\n";
    assert!(hits("crates/crossbar/src/foo.rs", src).is_empty());
}

#[test]
fn m001_allocations_in_hot_function() {
    let src = "// enw:hot\npub fn kernel_into(xs: &[f32], out: &mut [f32]) {\n    let tmp = vec![0.0; xs.len()];\n    let copy = xs.to_vec();\n    let mut buf = Vec::with_capacity(xs.len());\n    let again = copy.clone();\n}\n";
    let got = hits("crates/numerics/src/foo.rs", src);
    let m001: Vec<u32> =
        got.iter().filter(|(r, _)| r == "ENW-M001").map(|&(_, line)| line).collect();
    assert_eq!(m001, vec![3, 4, 5, 6]);
}

#[test]
fn m001_spares_unannotated_code_but_binds_in_every_library_crate() {
    // The same body without the marker is fine: allocating wrappers stay.
    let src = "pub fn kernel(xs: &[f32]) -> Vec<f32> {\n    xs.to_vec()\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
    // The annotation is an explicit opt-in and binds wherever it appears
    // in library code — including non-kernel crates like core and nn.
    let src = "// enw:hot\nfn helper(xs: &[f32]) -> Vec<f32> {\n    xs.to_vec()\n}\n";
    assert_eq!(hits("crates/core/src/foo.rs", src), vec![("ENW-M001".to_string(), 3)]);
    assert_eq!(hits("crates/nn/src/foo.rs", src), vec![("ENW-M001".to_string(), 3)]);
    // The tooling crates are out of scope (the analyzer must be able to
    // write fixtures; the bench harness allocates by design), and
    // enw-parallel owns the sanctioned scratch/combinator machinery.
    assert!(hits("crates/analyze/src/foo.rs", src).is_empty());
    assert!(hits("crates/bench/src/foo.rs", src).is_empty());
    assert!(hits("crates/parallel/src/foo.rs", src).is_empty());
}

#[test]
fn m001_catches_vec_new_format_collect_and_box() {
    // The gaps the line-scanner missed: `Vec::new()` + push, `format!`,
    // `.collect()`, `Box::new`, and `String` constructors.
    let src = "// enw:hot\npub fn hot(xs: &[f32], out: &mut [f32]) {\n    let mut v = Vec::new();\n    v.push(1.0);\n    let s = format!(\"{}\", xs.len());\n    let c: Vec<f32> = xs.iter().copied().collect();\n    let b = Box::new(xs.len());\n    let t = String::new();\n    let u = String::from(\"x\");\n}\n";
    let got = hits("crates/numerics/src/foo.rs", src);
    let m001: Vec<u32> =
        got.iter().filter(|(r, _)| r == "ENW-M001").map(|&(_, line)| line).collect();
    assert_eq!(m001, vec![3, 5, 6, 7, 8, 9]);
}

#[test]
fn m001_marker_binds_to_the_next_fn_only() {
    // The fn after the annotated one may allocate freely.
    let src = "// enw:hot\nfn hot(out: &mut [f32]) {\n    out.fill(0.0);\n}\n\nfn cold(xs: &[f32]) -> Vec<f32> {\n    xs.to_vec()\n}\n";
    assert!(hits("crates/mann/src/foo.rs", src).is_empty());
    // Doc comments between marker and fn do not detach the marker.
    let src = "// enw:hot\n/// Docs mentioning .clone() stay exempt.\nfn hot(xs: &[f32], out: &mut [f32]) {\n    let v = xs.to_vec();\n}\n";
    assert_eq!(hits("crates/mann/src/foo.rs", src), vec![("ENW-M001".to_string(), 4)]);
}

#[test]
fn m001_allows_scratch_and_into_idioms() {
    let src = "// enw:hot\npub fn matvec_into(m: &[f32], x: &[f32], out: &mut [f32]) {\n    let mut acc = enw_parallel::scratch::take_f32(x.len());\n    for (o, row) in out.iter_mut().zip(m.chunks(x.len())) {\n        *o = row.iter().zip(x).map(|(a, b)| a * b).sum();\n    }\n}\n";
    assert!(hits("crates/numerics/src/foo.rs", src).is_empty());
}

#[test]
fn serve_layering_allows_workloads_but_not_core() {
    let good = "[dependencies]\nenw-crossbar.workspace = true\nenw-cam.workspace = true\nenw-recsys.workspace = true\nenw-parallel.workspace = true\n";
    assert!(check_manifest("serve", "crates/serve/Cargo.toml", good).is_empty());
    // serve sits below core; depending upward is a layering violation.
    let bad = "[dependencies]\nenw-core.workspace = true\n";
    let got = check_manifest("serve", "crates/serve/Cargo.toml", bad);
    assert_eq!(got.first().map(|f| (f.rule, f.line)), Some(("ENW-A001", 2)));
}

#[test]
fn a001_illegal_dependency_direction() {
    let manifest = "[package]\nname = \"enw-numerics\"\n\n[dependencies]\nenw-parallel.workspace = true\nenw-recsys.workspace = true\n";
    let got = check_manifest("numerics", "crates/numerics/Cargo.toml", manifest);
    assert_eq!(got.len(), 1);
    let f = got.first().expect("one finding");
    assert_eq!((f.rule, f.line), ("ENW-A001", 6));
    assert!(f.message.contains("enw-recsys"));
}

#[test]
fn a001_unknown_crate_must_declare_layering() {
    let manifest = "[dependencies]\nenw-core.workspace = true\n";
    let got = check_manifest("shiny-new", "crates/shiny-new/Cargo.toml", manifest);
    assert_eq!(got.len(), 1);
    assert_eq!(got.first().map(|f| f.rule), Some("ENW-A001"));
}

#[test]
fn a003_unguarded_shim_dependency() {
    let bad = "[dependencies]\ncriterion = { workspace = true }\n";
    let got = check_manifest("bench", "crates/bench/Cargo.toml", bad);
    assert_eq!(got.first().map(|f| (f.rule, f.line)), Some(("ENW-A003", 2)));
    let good = "[dependencies]\ncriterion = { workspace = true, optional = true }\n\n[dev-dependencies]\nproptest.workspace = true\n";
    assert!(check_manifest("bench", "crates/bench/Cargo.toml", good).is_empty());
}

#[test]
fn allowlist_waives_matching_findings_and_flags_stale_entries() {
    let toml = "[[allow]]\nrule = \"ENW-P001\"\npath = \"crates/cam/src/foo.rs\"\ncontains = \"x.unwrap()\"\njustification = \"fixture: invariant documented elsewhere\"\n\n[[allow]]\nrule = \"ENW-P001\"\npath = \"crates/cam/src/gone.rs\"\ncontains = \"never matches\"\njustification = \"fixture: stale entry should be reported\"\n";
    let allow = parse_allowlist(toml).expect("valid allowlist");
    let raw = scan_source("crates/cam/src/foo.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let mut analysis = Analysis::default();
    apply_allowlist(raw, &allow, &mut analysis);
    assert_eq!(analysis.waived.len(), 1);
    assert_eq!(analysis.deny_count(), 0);
    // The stale second entry surfaces as a warn so lint.toml cannot rot.
    assert_eq!(analysis.findings.iter().map(|f| f.rule).collect::<Vec<_>>(), vec!["ENW-C001"]);
}

#[test]
fn allowlist_requires_a_real_justification() {
    let toml = "[[allow]]\nrule = \"ENW-P001\"\npath = \"x.rs\"\ncontains = \"y\"\njustification = \"ok\"\n";
    assert!(parse_allowlist(toml).is_err());
    let toml = "[[allow]]\nrule = \"ENW-P001\"\npath = \"x.rs\"\ncontains = \"y\"\n";
    assert!(parse_allowlist(toml).is_err(), "missing justification must be rejected");
}

#[test]
fn json_report_is_well_formed_enough_to_round_trip_keys() {
    let raw = scan_source("crates/cam/src/foo.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let mut analysis = Analysis::default();
    apply_allowlist(raw, &[], &mut analysis);
    analysis.files_scanned = 1;
    let json = analysis.to_json();
    for key in
        ["\"schema\"", "\"findings\"", "\"waived\"", "\"summary\"", "\"ENW-P001\"", "\"deny\""]
    {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Quotes in snippets must be escaped: the source line
    // `x.expect("msg")` must appear with `\"msg\"` in the JSON.
    let raw =
        scan_source("crates/cam/src/foo.rs", "fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n");
    let mut analysis = Analysis::default();
    apply_allowlist(raw, &[], &mut analysis);
    let json = analysis.to_json();
    assert!(json.contains("x.expect(\\\"msg\\\")"), "escaping broken: {json}");
}

#[test]
fn a005_encode_building_a_hash_map() {
    // A hash map materialized inside `Tunable::encode` is an ordering
    // bug even before anything iterates it.
    let src = "use std::collections::HashMap;\nimpl Tunable for Foo {\n    fn encode(&self) -> Point {\n        let m: HashMap<&str, i64> = HashMap::new();\n        point_from(m)\n    }\n}\n";
    let got = hits("crates/core/src/foo.rs", src);
    assert_eq!(got, vec![("ENW-A005".to_string(), 4)]);
}

#[test]
fn a005_encode_iterating_a_hash_field() {
    // Iterating a hash-typed field hits both the encode-specific rule
    // and the general returned-data rule (ENW-D006).
    let src = "use std::collections::HashMap;\nstruct Foo {\n    m: HashMap<&'static str, i64>,\n}\nimpl Tunable for Foo {\n    fn encode(&self) -> Point {\n        Point::new(self.m.iter().map(|(k, v)| (k, v)).collect())\n    }\n}\n";
    let got = hits("crates/core/src/foo.rs", src);
    assert_eq!(got, vec![("ENW-A005".to_string(), 7), ("ENW-D006".to_string(), 7)]);
}

#[test]
fn a005_silent_on_ordered_encode_and_other_traits() {
    // The workspace convention — a Vec of entries in struct-field
    // declaration order — is clean.
    let src = "impl Tunable for Foo {\n    fn encode(&self) -> Point {\n        Point::new(vec![(\"a\", AxisValue::Int(self.a))])\n    }\n}\n";
    assert!(hits("crates/core/src/foo.rs", src).is_empty());
    // `encode` methods of other traits are out of scope for A005 (the
    // determinism D-rules still apply on their own terms).
    let src = "use std::collections::HashMap;\nimpl Codec for Foo {\n    fn encode(&self) -> Vec<u8> {\n        let m: HashMap<u8, u8> = HashMap::new();\n        walk(m)\n    }\n}\n";
    assert!(hits("crates/core/src/foo.rs", src).is_empty());
}

#[test]
fn d001_dse_is_a_kernel_crate() {
    // Search trajectories and fronts are byte-stable outputs, so the
    // explorer lives under the hash-collection ban like the lanes do.
    let got = hits("crates/dse/src/foo.rs", "use std::collections::HashMap;\n");
    assert_eq!(got, vec![("ENW-D001".to_string(), 1)]);
}

#[test]
fn dse_layering_allows_core_but_not_lanes() {
    let good = "[dependencies]\nenw-core.workspace = true\nenw-parallel.workspace = true\n";
    assert!(check_manifest("dse", "crates/dse/Cargo.toml", good).is_empty());
    // The explorer drives lanes through core's Tunable surface only.
    let bad = "[dependencies]\nenw-crossbar.workspace = true\n";
    let got = check_manifest("dse", "crates/dse/Cargo.toml", bad);
    assert_eq!(got.first().map(|f| (f.rule, f.line)), Some(("ENW-A001", 2)));
}
