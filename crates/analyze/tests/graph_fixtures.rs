//! Golden fixtures for the workspace call graph: cross-crate resolution
//! (free-fn and trait-method calls), the transitive hot-path rule
//! (ENW-M002), the determinism rules (ENW-D006/D007), and the
//! fingerprint/baseline machinery. Each fixture is a tiny synthetic
//! multi-file workspace fed through [`enw_analyze::analyze_sources`].

use std::collections::BTreeSet;

use enw_analyze::analyze_sources;
use enw_analyze::graph::CallGraph;
use enw_analyze::parse::parse_source;
use enw_analyze::report::baseline_fingerprints;

/// Runs the full pipeline and keeps only rule/path/line triples.
fn run(sources: &[(&str, &str)]) -> Vec<(String, String, u32)> {
    let owned: Vec<(String, String)> =
        sources.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    analyze_sources(&owned)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect()
}

fn rules_of(findings: &[(String, String, u32)], rule: &str) -> Vec<(String, u32)> {
    findings.iter().filter(|(r, _, _)| r == rule).map(|(_, p, l)| (p.clone(), *l)).collect()
}

#[test]
fn m002_catches_transitive_allocation_that_m001_misses() {
    // The hot body itself is clean — ENW-M001 has nothing to say — but a
    // same-crate callee two frames down allocates. Only the call-graph
    // pass can see that.
    let src = "\
// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    stage_one(out);
}

fn stage_one(out: &mut [f32]) {
    stage_two(out.len());
}

fn stage_two(n: usize) -> usize {
    let scratch = vec![0u8; n];
    scratch.len()
}
";
    let findings = run(&[("crates/numerics/src/fix.rs", src)]);
    assert!(rules_of(&findings, "ENW-M001").is_empty(), "body is clean: {findings:?}");
    assert_eq!(
        rules_of(&findings, "ENW-M002"),
        vec![("crates/numerics/src/fix.rs".to_string(), 11)],
        "transitive vec! must be flagged: {findings:?}"
    );
}

#[test]
fn m002_reports_the_resolved_call_chain() {
    let src = "\
// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    helper(out);
}

fn helper(out: &mut [f32]) {
    let _copy = out.to_vec();
}
";
    let owned = vec![("crates/numerics/src/fix.rs".to_string(), src.to_string())];
    let findings = analyze_sources(&owned);
    let m002 = findings.iter().find(|f| f.rule == "ENW-M002").expect("one finding");
    assert_eq!(m002.chain, vec!["hot_entry".to_string(), "helper".to_string()]);
    assert!(m002.message.contains("hot_entry"), "chain in message: {}", m002.message);
}

#[test]
fn cross_crate_free_fn_calls_resolve_through_qualified_paths() {
    // crossbar depends on numerics in the layering table; a
    // `enw_numerics::`-qualified call pins the target crate.
    let caller = "\
// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    enw_numerics::util::fill_slow(out);
}
";
    let callee = "\
pub fn fill_slow(out: &mut [f32]) {
    let staged = vec![0.0f32; out.len()];
    out.copy_from_slice(&staged);
}
";
    let findings =
        run(&[("crates/crossbar/src/fix.rs", caller), ("crates/numerics/src/util.rs", callee)]);
    assert_eq!(
        rules_of(&findings, "ENW-M002"),
        vec![("crates/numerics/src/util.rs".to_string(), 2)],
        "cross-crate vec! must be flagged: {findings:?}"
    );
}

#[test]
fn cross_crate_use_imported_free_fn_calls_resolve() {
    let caller = "\
use enw_numerics::util::fill_slow;

// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    fill_slow(out);
}
";
    let callee = "\
pub fn fill_slow(out: &mut [f32]) {
    let staged = vec![0.0f32; out.len()];
    out.copy_from_slice(&staged);
}
";
    let findings =
        run(&[("crates/crossbar/src/fix.rs", caller), ("crates/numerics/src/util.rs", callee)]);
    assert_eq!(rules_of(&findings, "ENW-M002").len(), 1, "{findings:?}");
}

#[test]
fn cross_crate_trait_method_calls_link_to_impls() {
    // Without type inference a `.step_into(…)` call links to every impl
    // method of that name in the dependency closure — over-linking is the
    // sound direction for a purity rule.
    let caller = "\
use enw_numerics::engine::Engine;

// enw:hot
pub fn hot_entry(e: &mut enw_numerics::engine::Impl, out: &mut [f32]) {
    e.step_into(out);
}
";
    let callee = "\
pub trait Engine {
    fn step_into(&mut self, out: &mut [f32]);
}

pub struct Impl;

impl Engine for Impl {
    fn step_into(&mut self, out: &mut [f32]) {
        let staged = out.to_vec();
        out.copy_from_slice(&staged);
    }
}
";
    let findings =
        run(&[("crates/crossbar/src/fix.rs", caller), ("crates/numerics/src/engine.rs", callee)]);
    assert_eq!(
        rules_of(&findings, "ENW-M002"),
        vec![("crates/numerics/src/engine.rs".to_string(), 9)],
        "trait impl .to_vec() must be flagged: {findings:?}"
    );
}

#[test]
fn calls_into_enw_parallel_are_trusted() {
    // scratch-pool checkout allocates internally on pool miss — that is
    // the sanctioned mechanism, so the traversal stops at the crate edge.
    let caller = "\
// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    let tmp = enw_parallel::scratch::take_f32(out.len());
    out.copy_from_slice(&tmp);
}
";
    let pool = "\
pub fn take_f32(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}
";
    let findings =
        run(&[("crates/numerics/src/fix.rs", caller), ("crates/parallel/src/scratch.rs", pool)]);
    assert!(rules_of(&findings, "ENW-M002").is_empty(), "{findings:?}");
    assert!(rules_of(&findings, "ENW-M001").is_empty(), "{findings:?}");
}

#[test]
fn m002_flags_locks_and_io_even_in_the_hot_body_itself() {
    // Direct-body allocations are M001's job, but locks and I/O have no
    // body-local rule — M002 reports them at depth zero too.
    let src = "\
// enw:hot
pub fn hot_entry(out: &mut [f32]) {
    println!(\"entered kernel\");
    out.fill(0.0);
}
";
    let findings = run(&[("crates/numerics/src/fix.rs", src)]);
    assert_eq!(
        rules_of(&findings, "ENW-M002"),
        vec![("crates/numerics/src/fix.rs".to_string(), 3)],
        "{findings:?}"
    );
}

#[test]
fn d006_hash_iteration_feeding_returned_data() {
    // `core` is not a kernel crate, so D001 stays silent and D006 is
    // isolated: hash iteration order leaks into the returned Vec.
    let src = "\
use std::collections::HashMap;

pub fn summarize(m: &HashMap<u64, f32>) -> Vec<f32> {
    m.values().copied().collect()
}
";
    let findings = run(&[("crates/core/src/fix.rs", src)]);
    assert_eq!(
        rules_of(&findings, "ENW-D006"),
        vec![("crates/core/src/fix.rs".to_string(), 4)],
        "{findings:?}"
    );
    assert!(rules_of(&findings, "ENW-D001").is_empty(), "{findings:?}");
}

#[test]
fn d007_float_reduction_over_unordered_iteration() {
    let src = "\
use std::collections::HashMap;

pub fn total(m: &HashMap<u64, f32>) -> f32 {
    m.values().sum()
}
";
    let findings = run(&[("crates/core/src/fix.rs", src)]);
    assert_eq!(
        rules_of(&findings, "ENW-D007"),
        vec![("crates/core/src/fix.rs".to_string(), 4)],
        "{findings:?}"
    );
    // D007 subsumes D006 at the same site: one finding, not two.
    assert!(rules_of(&findings, "ENW-D006").is_empty(), "{findings:?}");
}

#[test]
fn d006_for_loop_over_hash_collection_feeding_return() {
    let src = "\
use std::collections::HashSet;

pub fn collect_sorted(s: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for v in s {
        out.push(*v);
    }
    out
}
";
    let findings = run(&[("crates/core/src/fix.rs", src)]);
    assert_eq!(rules_of(&findings, "ENW-D006").len(), 1, "{findings:?}");
}

#[test]
fn d006_spares_btreemap_and_side_effect_free_cases() {
    // Ordered collections are the sanctioned alternative.
    let src = "\
use std::collections::BTreeMap;

pub fn summarize(m: &BTreeMap<u64, f32>) -> Vec<f32> {
    m.values().copied().collect()
}
";
    assert!(run(&[("crates/core/src/fix.rs", src)]).is_empty());
    // Iteration that cannot feed a return value (no `->`) is fine.
    let src = "\
use std::collections::HashMap;

pub fn count_all(m: &HashMap<u64, f32>, sink: &mut usize) {
    for _v in m.values() {
        *sink += 1;
    }
}
";
    assert!(run(&[("crates/core/src/fix.rs", src)]).is_empty());
    // enw-parallel owns the blessed combinators and is exempt.
    let src = "\
use std::collections::HashMap;

pub fn pool_stats(m: &HashMap<u64, f32>) -> f32 {
    m.values().sum()
}
";
    assert!(run(&[("crates/parallel/src/fix.rs", src)]).is_empty());
}

#[test]
fn hot_fns_resolve_as_graph_roots() {
    let src = "\
// enw:hot
pub fn hot_a(out: &mut [f32]) {
    out.fill(0.0);
}

pub fn cold(out: &mut [f32]) {
    out.fill(1.0);
}

// enw:hot
pub fn hot_b(out: &mut [f32]) {
    out.fill(2.0);
}
";
    let files = vec![parse_source("crates/numerics/src/fix.rs", src)];
    let graph = CallGraph::build(&files);
    let roots: Vec<&str> =
        graph.hot_roots.iter().map(|&n| graph.nodes[n].display.as_str()).collect();
    assert_eq!(roots, vec!["hot_a", "hot_b"]);
}

#[test]
fn fingerprints_are_stable_across_reruns_and_unique_within_a_run() {
    let sources = vec![(
        "crates/numerics/src/fix.rs".to_string(),
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n"
            .to_string(),
    )];
    let a = analyze_sources(&sources);
    let b = analyze_sources(&sources);
    let fp = |fs: &[enw_analyze::Finding]| -> Vec<String> {
        fs.iter().map(|f| f.fingerprint.clone()).collect()
    };
    assert_eq!(fp(&a), fp(&b), "fingerprints must be deterministic");
    let unique: BTreeSet<String> = fp(&a).into_iter().collect();
    assert_eq!(unique.len(), a.len(), "identical findings must get distinct ordinals");
    for f in &a {
        assert_eq!(f.fingerprint.len(), 16, "16 hex chars: {}", f.fingerprint);
    }
}

#[test]
fn fingerprints_survive_line_drift() {
    // Moving the offending line down the file must not change its
    // fingerprint — that is what makes committed baselines durable.
    let before = vec![(
        "crates/numerics/src/fix.rs".to_string(),
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
    )];
    let after = vec![(
        "crates/numerics/src/fix.rs".to_string(),
        "fn pad() {}\n\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
    )];
    let a = analyze_sources(&before);
    let b = analyze_sources(&after);
    assert_eq!(a.len(), 1);
    assert_eq!(b.len(), 1);
    assert_ne!(a[0].line, b[0].line, "the finding did move");
    assert_eq!(a[0].fingerprint, b[0].fingerprint, "fingerprint must not track the line");
}

#[test]
fn baseline_diff_flags_only_new_findings() {
    let sources = vec![(
        "crates/numerics/src/fix.rs".to_string(),
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
    )];
    let analysis =
        enw_analyze::Analysis { findings: analyze_sources(&sources), ..Default::default() };
    // A baseline built from this very report accepts everything.
    let accepted = baseline_fingerprints(&analysis.to_json());
    assert!(analysis.new_vs_baseline(&accepted).is_empty());
    // An empty baseline accepts nothing.
    assert_eq!(analysis.new_vs_baseline(&BTreeSet::new()).len(), analysis.findings.len());
}
