//! Zero-allocation integration tests, run under a counting global
//! allocator (the same [`enw_bench::alloc_audit::CountingAlloc`] the E18
//! binary installs). These pin the memory-discipline contract so a
//! regression that re-introduces per-request heap traffic fails CI, not
//! just the benchmark narrative.
//!
//! The counters are process-global, so every test serializes on one lock
//! and asserts *marginal* allocation rates with a small tolerance for
//! harness bookkeeping on other threads.

use enw_bench::alloc_audit::{self, CountingAlloc};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::numerics::rng::Rng64;
use enw_core::parallel::scratch;
use enw_core::serve::backend::{Backend, ServiceModel};
use enw_core::serve::policy::{BatchPolicy, StationSpec};
use enw_core::serve::request::{Output, Payload, Request};
use enw_core::serve::scheduler::Server;
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static LOCK: Mutex<()> = Mutex::new(());

/// Constant-output backend: isolates the scheduler event loop from
/// backend output allocation (labels are plain enum payloads).
struct ConstLabel;

impl Backend for ConstLabel {
    fn name(&self) -> &str {
        "const_label"
    }
    fn service_ns(&self, batch: usize) -> u64 {
        ServiceModel { setup_ns: 200, per_item_ns: 50 }.ns(batch)
    }
    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }
    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        out.clear();
        out.extend(batch.iter().map(|_| Output::Label(Some(1))));
    }
    fn make_payload(&self, _rng: &mut Rng64) -> Payload {
        Payload::Features(Vec::new())
    }
}

fn serve_run_allocs(n: usize) -> u64 {
    let reqs: Vec<Request> = (0..n)
        .map(|k| Request {
            id: k as u64,
            station: 0,
            payload: Payload::Features(Vec::new()),
            arrival_ns: 1_000 * k as u64,
            deadline_ns: u64::MAX,
        })
        .collect();
    let server = Server::try_new(vec![StationSpec::simple(
        Box::new(ConstLabel),
        BatchPolicy::new(8, 500, 64),
    )])
    .expect("one valid station");
    let s0 = alloc_audit::snapshot();
    let report = server.try_run_owned(reqs).expect("trace is valid");
    let allocs = alloc_audit::snapshot().since(s0).allocs;
    assert_eq!(report.responses.len(), n);
    allocs
}

#[test]
fn serve_loop_allocates_nothing_per_request_after_warm_up() {
    let _guard = LOCK.lock().expect("alloc test lock");
    let _ = serve_run_allocs(128); // warm-up: lazy statics, code paths
    let small = serve_run_allocs(256);
    let large = serve_run_allocs(2048);
    let marginal = large.saturating_sub(small) as f64 / (2048 - 256) as f64;
    assert!(
        marginal < 0.01,
        "serve loop leaked {marginal:.4} allocations per extra request ({small} -> {large})"
    );
}

#[test]
fn mann_into_kernels_run_allocation_free_once_pools_are_warm() {
    let _guard = LOCK.lock().expect("alloc test lock");
    let mut rng = Rng64::new(18);
    let mem = DifferentiableMemory::random(128, 32, &mut rng);
    let q: Vec<f32> = (0..32).map(|_| rng.uniform_f32() - 0.5).collect();
    let mut w = vec![0.0f32; 128];
    let mut r = vec![0.0f32; 32];
    for _ in 0..8 {
        mem.content_address_into(&q, Similarity::Cosine, 2.0, &mut w);
        mem.soft_read_into(&w, &mut r);
    }
    let iters = 256;
    let s0 = alloc_audit::snapshot();
    for _ in 0..iters {
        mem.content_address_into(&q, Similarity::Cosine, 2.0, &mut w);
        mem.soft_read_into(&w, &mut r);
    }
    let allocs = alloc_audit::snapshot().since(s0).allocs;
    assert!(
        (allocs as f64) < 0.01 * iters as f64,
        "warm _into kernels made {allocs} allocations over {iters} iterations"
    );
    assert!(r.iter().all(|x| x.is_finite()));
}

#[test]
fn scratch_checkout_reuses_buffers_instead_of_allocating() {
    let _guard = LOCK.lock().expect("alloc test lock");
    {
        let _warm = scratch::take_f32(1000); // provisions the size class
    }
    let iters = 256;
    let s0 = alloc_audit::snapshot();
    for _ in 0..iters {
        let buf = scratch::take_f32(1000);
        assert_eq!(buf.len(), 1000);
    }
    let allocs = alloc_audit::snapshot().since(s0).allocs;
    assert!(
        (allocs as f64) < 0.01 * iters as f64,
        "warm scratch checkouts made {allocs} allocations over {iters} iterations"
    );
}
