//! TraceReport determinism across thread counts.
//!
//! The recorder merges thread-local sinks on join, and every recorded
//! quantity (element counts, pulses, virtual-clock spans) is independent
//! of how work was chunked — so the drained report must serialize to the
//! same bytes at any `ENW_THREADS` setting. This is the property the E17
//! stage-breakdown attribution rests on.
//!
//! Single test function: the recorder is process-global and `cargo test`
//! runs tests in one binary concurrently, so all thread-count sweeps live
//! in one sequential body.

use enw_core::parallel::with_threads;
use enw_core::serve::presets::{saturation_qps, traffic_classes, try_fleet};
use enw_core::serve::{generate_trace, LoadSpec};
use enw_core::trace::{self, TraceMode};

/// One serving smoke run (the E16 fleet slightly over saturation, short
/// virtual horizon) under a fresh recording; returns the report bytes.
fn serve_smoke_report_json() -> String {
    trace::reset();
    let server = try_fleet(99).expect("preset fleet");
    let classes = traffic_classes();
    let qps = 1.2 * saturation_qps(&server, &classes);
    let spec = LoadSpec { qps, duration_ns: 4_000_000, seed: 99 };
    let arrivals = generate_trace(&server, &spec, &classes);
    server.try_run(&arrivals).expect("generated trace is valid");
    trace::take_report().to_json()
}

#[test]
fn serve_trace_report_is_bit_identical_across_thread_counts() {
    trace::set_mode(TraceMode::Summary);
    let t1 = with_threads(1, serve_smoke_report_json);
    let t2 = with_threads(2, serve_smoke_report_json);
    let t8 = with_threads(8, serve_smoke_report_json);
    trace::set_mode(TraceMode::Off);

    assert!(t1.contains("serve/backend_execute"), "serving spans missing:\n{t1}");
    assert!(t1.contains("serve/queue_wait"), "queue spans missing:\n{t1}");
    assert_eq!(t1, t2, "trace report diverged between 1 and 2 threads");
    assert_eq!(t1, t8, "trace report diverged between 1 and 8 threads");
}
