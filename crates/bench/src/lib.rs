//! Shared helpers for the experiment binaries (`src/bin/expXX_*`), the
//! Criterion benches and the workspace-level integration tests.
//!
//! Each binary regenerates one table or figure of the paper; run them all
//! with:
//!
//! ```text
//! for exp in $(cargo run -q --bin list_experiments); do
//!     cargo run --release --bin $exp
//! done
//! ```

pub mod alloc_audit;

use enw_core::report::Table;

/// Prints an experiment header (id, anchor, claim) before its table and
/// returns the resolved entry.
///
/// # Errors
///
/// Returns [`enw_core::EnwError::UnknownExperiment`] when `id` is not in
/// the registry; nothing is printed in that case.
pub fn try_banner(id: &str) -> Result<enw_core::Experiment, enw_core::EnwError> {
    let exp = enw_core::registry::find(id)?;
    println!("== {} [{}] ==", exp.id, exp.paper_anchor);
    println!("claim: {}", exp.claim);
    println!("binary: {}", exp.binary);
    println!();
    Ok(exp)
}

/// Prints an experiment header (id, anchor, claim) before its table.
///
/// # Panics
///
/// Panics if `id` is not in the registry — experiment binaries are
/// fail-fast CLI tools; library callers wanting a `Result` use
/// [`try_banner`] (or [`enw_core::registry::find`]) instead.
pub fn banner(id: &str) {
    if let Err(e) = try_banner(id) {
        panic!("unknown experiment id {id}: {e}");
    }
}

/// Prints a rendered table with a trailing blank line.
pub fn emit(table: &Table) {
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_knows_all_registered_ids() {
        for e in enw_core::experiments() {
            // Must not panic for any registered id.
            super::banner(e.id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn banner_rejects_unknown_id() {
        super::banner("E99");
    }

    #[test]
    fn try_banner_returns_the_entry_or_a_typed_error() {
        let exp = super::try_banner("E20").expect("E20 is registered");
        assert_eq!(exp.binary, "exp20_dse");
        assert!(super::try_banner("E99").is_err());
    }
}
