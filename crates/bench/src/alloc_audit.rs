//! Process-wide allocation accounting for the E18 memory-discipline
//! experiment and the zero-allocation integration tests.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and requested byte) with relaxed atomics. It is installed
//! as the `#[global_allocator]` **only** in the targets that measure
//! allocation behaviour — the `exp18_alloc_audit` binary and the
//! `alloc_discipline` integration test — so ordinary builds and every
//! other experiment run on the plain system allocator.
//!
//! The counters are monotone totals since process start; callers diff
//! [`snapshot`]s around the region of interest. [`counters`] has the
//! exact shape `enw_trace::install_alloc_source` expects, which is how
//! `ENW_TRACE=summary` output gains its allocator line in E18.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` shim over [`System`] that counts allocations.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow on the hot path costs what a fresh allocation costs, so
        // it counts as one.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Counter values at one instant (monotone since process start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Heap allocations (including zeroed allocations and reallocations).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl Snapshot {
    /// Counters accumulated between `earlier` and `self`.
    pub fn since(self, earlier: Snapshot) -> Snapshot {
        Snapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Current counter values. Both stay zero unless [`CountingAlloc`] is
/// installed as the global allocator.
pub fn snapshot() -> Snapshot {
    Snapshot { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

/// Raw `(allocs, bytes)` totals — the signature
/// `enw_trace::install_alloc_source` takes.
pub fn counters() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}
