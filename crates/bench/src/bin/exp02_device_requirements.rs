//! E2 — Device-requirement sweep for analog SGD training (paper Sec. II-A,
//! the RPU specification study of ref. \[14\]).
//!
//! Trains the same MLP classification task with plain stochastic-pulse SGD
//! on device populations that vary one property at a time:
//!
//! * **granularity** — states over the weight range (the paper's spec:
//!   a single coincidence should move ~0.1 % of the range → 1000 states);
//! * **asymmetry** — up/down step imbalance (spec: matched to within a
//!   few percent);
//! * **noise** — cycle-to-cycle write noise and device-to-device spread.
//!
//! The table shows accuracy holding near the FP32 baseline while specs are
//! met and collapsing beyond them.

use enw_bench::{banner, emit};
use enw_core::crossbar::device::{DeviceSpec, PulsedDevice};
use enw_core::crossbar::devices;
use enw_core::crossbar::tile::TileConfig;
use enw_core::crossbar::train::{analog_mlp, train_and_evaluate};
use enw_core::nn::activation::Activation;
use enw_core::nn::data::{Split, SyntheticImages};
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const DIMS: [usize; 3] = [64, 32, 10];

fn task(seed: u64) -> Split {
    SyntheticImages::builder()
        .classes(10)
        .dim(64)
        .train_per_class(50)
        .test_per_class(25)
        .noise(1.3)
        .build(&mut Rng64::new(seed))
}

fn train_cfg() -> SgdConfig {
    SgdConfig { epochs: 5, learning_rate: 0.05 }
}

fn run_analog(spec: &DeviceSpec, split: &Split, seed: u64) -> f64 {
    let mut rng = Rng64::new(seed);
    let mut mlp = analog_mlp(&DIMS, spec, TileConfig::ideal(), Activation::Tanh, &mut rng);
    train_and_evaluate(&mut mlp, split, &train_cfg(), &mut rng).test_accuracy
}

fn asymmetric(states: u32, asymmetry: f32) -> DeviceSpec {
    // Keep the mean step fixed while skewing up vs down; a moderate
    // soft-bound nonlinearity gives the skew a state dependence (pure
    // constant-step skew would just rail every weight at a bound).
    let dw = 2.0 / states as f32;
    DeviceSpec::uniform(PulsedDevice {
        dw_up: dw * (1.0 + asymmetry),
        dw_down: dw * (1.0 - asymmetry),
        gamma_up: 0.5,
        gamma_down: 0.5,
        ..PulsedDevice::ideal(states)
    })
}

fn main() {
    banner("E2");
    let split = task(7);
    let mut rng = Rng64::new(1);
    let mut fp = Mlp::digital(&DIMS, Activation::Tanh, &mut rng);
    let fp_acc = train_and_evaluate(&mut fp, &split, &train_cfg(), &mut rng).test_accuracy;
    println!("FP32 baseline accuracy: {}\n", percent(fp_acc));

    let mut g = Table::new(&["states (granularity)", "dw / range", "test accuracy", "vs FP32"]);
    for &states in &[20u32, 100, 400, 1000, 4000] {
        let acc = run_analog(&devices::ideal(states), &split, 11);
        g.row_owned(vec![
            format!("{states}"),
            format!("{:.3}%", 100.0 / states as f64 * 2.0 / 2.0),
            percent(acc),
            format!("{:+.1} pts", 100.0 * (acc - fp_acc)),
        ]);
    }
    println!("-- granularity sweep (ideal symmetric devices) --");
    emit(&g);

    let mut a = Table::new(&["up/down asymmetry", "test accuracy", "vs FP32"]);
    for &asym in &[0.0f32, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let acc = run_analog(&asymmetric(1000, asym), &split, 13);
        a.row_owned(vec![
            format!("{:.0}%", asym * 100.0),
            percent(acc),
            format!("{:+.1} pts", 100.0 * (acc - fp_acc)),
        ]);
    }
    println!("-- asymmetry sweep (1000 states, soft bounds, plain SGD) --");
    emit(&a);

    let mut n = Table::new(&["write noise (c2c)", "d2d spread", "test accuracy", "vs FP32"]);
    for &(c2c, d2d) in &[(0.0f32, 0.0f32), (0.3, 0.1), (0.6, 0.3), (1.5, 0.5)] {
        let acc = run_analog(&devices::noisy_ideal(1000, c2c, d2d), &split, 17);
        n.row_owned(vec![
            format!("{:.0}%", c2c * 100.0),
            format!("{:.0}%", d2d * 100.0),
            percent(acc),
            format!("{:+.1} pts", 100.0 * (acc - fp_acc)),
        ]);
    }
    println!("-- stochasticity sweep (1000 states, symmetric) --");
    emit(&n);

    println!("Reading: ~1000 states (0.1% granularity) and few-% asymmetry keep analog SGD near");
    println!("the FP32 baseline; coarse, strongly asymmetric or very noisy devices collapse it —");
    println!("the RPU device specification of ref. [14].");
}
