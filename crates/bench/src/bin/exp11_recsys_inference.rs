//! E11 — End-to-end execution of the DLRM-style recommendation model
//! (paper Fig. 6, Sec. V-A): dense stack + embedding pooling + feature
//! interaction + predictor stack, on representative configurations.

use enw_bench::{banner, emit};
use enw_core::numerics::rng::Rng64;
use enw_core::numerics::stats::OnlineStats;
use enw_core::recsys::model::{Interaction, RecModel, RecModelConfig};
use enw_core::recsys::trace::TraceGenerator;
use enw_core::report::Table;

fn configs() -> Vec<(&'static str, RecModelConfig)> {
    let mut memory_small = RecModelConfig::memory_bound();
    // Shrink catalogue rows (not structure) so the binary runs in seconds.
    memory_small.tables = vec![(100_000, 32); 16];
    vec![
        ("RM-compute (MLP-heavy)", RecModelConfig::compute_bound()),
        ("RM-memory (embedding-heavy)", memory_small),
        (
            "RM-dlrm (pairwise interaction)",
            RecModelConfig {
                dense_features: 64,
                bottom_mlp: vec![128, 64, 32],
                tables: vec![(50_000, 4); 8],
                embedding_dim: 32,
                top_mlp: vec![128, 64],
                interaction: Interaction::DotPairwise,
            },
        ),
    ]
}

fn main() {
    banner("E11");
    let mut table = Table::new(&[
        "model",
        "tables",
        "lookups/query",
        "model size (MB)",
        "mean CTR",
        "CTR spread [min, max]",
    ]);
    for (name, cfg) in configs() {
        let mut rng = Rng64::new(11);
        let mut model = RecModel::new(&cfg, &mut rng);
        let gen = TraceGenerator::new(&cfg, 1.0);
        let mut stats = OnlineStats::new();
        for q in gen.batch(200, &mut rng) {
            let ctr = model.predict_query(&q);
            assert!((0.0..=1.0).contains(&ctr), "CTR must be a probability");
            stats.push(ctr as f64);
        }
        let lookups: usize = cfg.tables.iter().map(|&(_, l)| l).sum();
        table.row_owned(vec![
            name.to_string(),
            format!("{}", cfg.tables.len()),
            format!("{lookups}"),
            format!("{:.1}", model.bytes() as f64 / 1e6),
            format!("{:.3}", stats.mean()),
            format!("[{:.3}, {:.3}]", stats.min(), stats.max()),
        ]);
    }
    emit(&table);
    println!("Reading: the same model skeleton spans MLP-dominated and embedding-dominated");
    println!("configurations; outputs are valid click-through probabilities that vary with the");
    println!("sparse inputs, and table storage dwarfs the MLP parameters — Fig. 6 realized.");
}
