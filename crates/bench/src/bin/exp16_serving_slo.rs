//! E16 — serving SLOs across the paper's workloads (Sec. V-B, lifted to
//! the whole fleet): one deterministic micro-batching runtime fronts the
//! analog crossbar, digital MLP, TCAM few-shot, and recsys lanes, and a
//! reproducible open-loop load generator sweeps the aggregate QPS from
//! under- to over-saturation. Reported per lane and level: latency
//! percentiles, shed/reject/miss rates, and degradation-ladder activity.
//!
//! The simulation itself runs on virtual time, so the response stream and
//! every percentile are a pure function of the seed; the only wall-clock
//! reading here times how fast the simulator chews through the trace.
//!
//! Emits `BENCH_serving.json` in the working directory so CI can track
//! tail latencies and shed rates over time. Pass `--smoke` for a short
//! trace (CI-sized); full runs use a 10x longer horizon.

use enw_bench::{banner, emit};
use enw_core::report::Table;
use enw_core::serve::presets::{saturation_qps, traffic_classes, try_fleet};
use enw_core::serve::{generate_trace, LoadSpec, RunReport};
use std::time::Instant;

const SEED: u64 = 16;
/// Fractions of the fleet's saturation QPS swept by the experiment:
/// comfortably under, near the knee, and twice over.
const LEVELS: [f64; 4] = [0.4, 0.9, 1.5, 2.5];
const SMOKE_HORIZON_NS: u64 = 20_000_000; // 20 ms of virtual time
const FULL_HORIZON_NS: u64 = 200_000_000; // 200 ms of virtual time

struct LevelResult {
    qps_frac: f64,
    qps: f64,
    arrivals: usize,
    sim_seconds: f64,
    report: RunReport,
}

/// One simulated run at `frac` times saturation; returns the report and
/// how long the simulator took in wall time (telemetry only).
fn run_level(frac: f64, horizon_ns: u64) -> LevelResult {
    let server = try_fleet(SEED).expect("preset fleet");
    let classes = traffic_classes();
    let qps = frac * saturation_qps(&server, &classes);
    let spec = LoadSpec { qps, duration_ns: horizon_ns, seed: SEED ^ (frac.to_bits()) };
    let trace = generate_trace(&server, &spec, &classes);
    let arrivals = trace.len();
    let t = Instant::now();
    let report = server.try_run(&trace).expect("generated trace is valid");
    LevelResult { qps_frac: frac, qps, arrivals, sim_seconds: t.elapsed().as_secs_f64(), report }
}

/// Std-only JSON rendering of the sweep (no serde in the workspace).
fn to_json(levels: &[LevelResult], deterministic: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"serving_slo\",\n  \"seed\": {SEED},\n  \"deterministic_rerun\": {deterministic},\n  \"levels\": [\n"
    );
    for (i, l) in levels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"qps_frac\": {:.2},\n      \"qps\": {:.1},\n      \"arrivals\": {},\n      \"sim_seconds\": {:.4},\n      \"stations\": [\n",
            l.qps_frac, l.qps, l.arrivals, l.sim_seconds
        ));
        for (j, m) in l.report.stations.iter().enumerate() {
            let p = m.summary();
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"arrived\": {}, \"completed\": {}, \"deadline_misses\": {}, \"shed\": {}, \"rejected\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"shed_rate\": {:.6}, \"reject_rate\": {:.6}, \"miss_rate\": {:.6}, \"goodput_qps\": {:.1}, \"fallback_switches\": {}, \"recoveries\": {}, \"degraded_batches\": {}}}{}\n",
                m.name,
                m.arrived,
                m.completed,
                m.deadline_misses,
                m.shed,
                m.rejected,
                p.p50_ns,
                p.p95_ns,
                p.p99_ns,
                m.shed_rate(),
                m.reject_rate(),
                m.miss_rate(),
                m.goodput_qps(l.report.duration_ns),
                m.fallback_switches,
                m.recoveries,
                m.degraded_batches,
                if j + 1 < l.report.stations.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < levels.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    banner("E16");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon_ns = if smoke { SMOKE_HORIZON_NS } else { FULL_HORIZON_NS };
    println!(
        "mode: {} ({} ms virtual horizon per level); levels are fractions of the fleet's saturation QPS\n",
        if smoke { "smoke" } else { "full" },
        horizon_ns / 1_000_000
    );

    // Determinism spot-check: the whole point of the virtual clock is that
    // a rerun of the same (seed, spec) yields the same bytes.
    let deterministic = {
        let a = run_level(LEVELS[0], SMOKE_HORIZON_NS).report.render();
        let b = run_level(LEVELS[0], SMOKE_HORIZON_NS).report.render();
        a == b
    };
    assert!(deterministic, "rerun of the same seed/spec diverged");

    let levels: Vec<LevelResult> = LEVELS.iter().map(|&f| run_level(f, horizon_ns)).collect();

    let mut table = Table::new(&[
        "load", "lane", "arrived", "p50 (us)", "p95 (us)", "p99 (us)", "shed", "rejected", "late",
        "fallback",
    ]);
    for l in &levels {
        for m in &l.report.stations {
            let p = m.summary();
            table.row_owned(vec![
                format!("{:.1}x sat", l.qps_frac),
                m.name.clone(),
                format!("{}", m.arrived),
                format!("{:.1}", p.p50_ns as f64 / 1e3),
                format!("{:.1}", p.p95_ns as f64 / 1e3),
                format!("{:.1}", p.p99_ns as f64 / 1e3),
                format!("{:.1}%", 100.0 * m.shed_rate()),
                format!("{:.1}%", 100.0 * m.reject_rate()),
                format!("{:.1}%", 100.0 * m.miss_rate()),
                format!("{}x/{}r", m.fallback_switches, m.recoveries),
            ]);
        }
    }
    emit(&table);

    let json = to_json(&levels, deterministic);
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    let under = levels.first().expect("levels is non-empty");
    let over = levels.last().expect("levels is non-empty");
    let under_dropped: u64 = under.report.stations.iter().map(|m| m.shed + m.rejected).sum();
    let over_dropped: u64 = over.report.stations.iter().map(|m| m.shed + m.rejected).sum();
    println!();
    println!(
        "Reading: at {:.1}x saturation the fleet serves essentially everything on time",
        under.qps_frac
    );
    println!(
        "({} of {} arrivals dropped); at {:.1}x it sheds/rejects {} of {} and the analog",
        under_dropped, under.arrivals, over.qps_frac, over_dropped, over.arrivals
    );
    println!("crossbar lane leans on its digital fallback, exactly the graceful-degradation");
    println!("ladder DESIGN.md specifies. Percentiles are nearest-rank reads of enw-trace's");
    println!("fixed-bucket histograms on virtual time (exact below 64 ns, <=3% quantization");
    println!("above, exact min/max), so this table is byte-reproducible at any ENW_THREADS.");
}
