//! E9 — Memory-search cost: 16T CMOS TCAM vs cosine on GPU + DRAM (paper
//! Sec. IV-B2: "24X and 2,582X reductions in energy and latency,
//! respectively, for memory search operation").

use enw_bench::{banner, emit};
use enw_core::cam::array::TcamConfig;
use enw_core::cam::baseline::compare_search;
use enw_core::cam::cells;
use enw_core::numerics::rng::Rng64;
use enw_core::report::{energy, latency, ratio, Table};
use enw_core::xmann::cost::GpuCostParams;

fn main() {
    banner("E9");
    let mut rng = Rng64::new(9);
    let gpu = GpuCostParams::default();

    let mut table = Table::new(&[
        "entries",
        "signature bits",
        "GPU energy",
        "TCAM energy",
        "energy reduction",
        "GPU latency",
        "TCAM latency",
        "latency reduction",
    ]);
    for &entries in &[512usize, 4096, 65_536] {
        let cmp =
            compare_search(entries, 64, cells::cmos_16t(), TcamConfig::default(), &gpu, &mut rng);
        table.row_owned(vec![
            format!("{entries}"),
            "64".into(),
            energy(cmp.gpu.energy_pj),
            energy(cmp.tcam.energy_pj),
            ratio(cmp.energy_reduction()),
            latency(cmp.gpu.latency_ns),
            latency(cmp.tcam.latency_ns),
            ratio(cmp.latency_reduction()),
        ]);
    }
    emit(&table);

    // Match-line segmentation ablation at the paper's configuration.
    let mut seg = Table::new(&["ML segments", "TCAM energy", "TCAM latency"]);
    for &segments in &[1usize, 2, 4, 8] {
        let cmp =
            compare_search(512, 64, cells::cmos_16t(), TcamConfig { segments }, &gpu, &mut rng);
        seg.row_owned(vec![
            format!("{segments}"),
            energy(cmp.tcam.energy_pj),
            latency(cmp.tcam.latency_ns),
        ]);
    }
    println!("-- ablation: match-line segmentation (selective precharge) --");
    emit(&seg);
    println!("paper reference (512 entries): 24x energy, 2582x latency reduction");
    println!("Reading: a single parallel search replaces a full DRAM stream + two GPU kernels;");
    println!("the latency gap is dominated by kernel-launch overheads the TCAM simply never pays,");
    println!("and it widens with memory size (the TCAM search latency is row-independent).");
}
