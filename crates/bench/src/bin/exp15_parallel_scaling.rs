//! E15 — simulation-throughput methodology: the cache-blocked matmul
//! kernel and the unrolled/prefetching embedding gather must beat the
//! naive serial baselines by >= 2x while staying bit-identical at every
//! thread count (the determinism contract of `enw_core::parallel`).
//!
//! Timing protocol: each round times the naive baseline and the optimized
//! kernel back to back, and the reported speedup is the median of the
//! per-round ratios. Pairing cancels the slow frequency/load drift of
//! shared hosts that best-of-N timing is blind to.
//!
//! Emits `BENCH_parallel_kernels.json` in the working directory so CI can
//! track kernel throughput over time.

use enw_bench::{banner, emit};
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::parallel;
use enw_core::recsys::model::EmbeddingTable;
use enw_core::report::Table;
use std::time::Instant;

const MATMUL_N: usize = 1024;
const TABLES: usize = 8;
const TABLE_ROWS: usize = 200_000;
const EMBED_DIM: usize = 64;
const LOOKUPS_PER_TABLE: usize = 128;
const GATHER_QUERIES: usize = 300;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 9;

/// Median of a list of paired-run timings or ratios.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    values[values.len() / 2]
}

/// The pre-optimization matmul: plain i-k-j accumulation with the same
/// ascending-k order and zero-skip rule as the blocked kernel, so its
/// output is the bitwise reference.
fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let coeff = a.at(i, kk);
            if coeff == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (o, &bv) in out.row_mut(i).iter_mut().zip(brow) {
                *o += coeff * bv;
            }
        }
    }
    out
}

/// The pre-optimization gather: one row at a time, no unrolling, no
/// prefetch.
fn gather_naive(table: &EmbeddingTable, indices: &[usize]) -> Vec<f32> {
    let mut pooled = vec![0.0f32; table.dim()];
    for &i in indices {
        for (p, v) in pooled.iter_mut().zip(table.row(i)) {
            *p += v;
        }
    }
    pooled
}

struct Run {
    threads: usize,
    seconds: f64,
    speedup: f64,
    peak_speedup: f64,
    bit_identical: bool,
}

struct KernelResult {
    name: &'static str,
    baseline_seconds: f64,
    runs: Vec<Run>,
}

/// Runs `ROUNDS` paired rounds of (baseline, then one optimized variant
/// per thread count) and reduces to median times and median per-round
/// speedup ratios.
fn bench_paired<R: PartialEq>(
    name: &'static str,
    mut baseline: impl FnMut() -> R,
    mut optimized: impl FnMut(usize) -> R,
    identical: impl Fn(&R, &R) -> bool,
) -> KernelResult {
    // Warm-up: first touches fault pages in and populate caches.
    let reference = baseline();
    let mut base_times = Vec::with_capacity(ROUNDS);
    let mut opt_times = vec![Vec::with_capacity(ROUNDS); THREADS.len()];
    let mut ratios = vec![Vec::with_capacity(ROUNDS); THREADS.len()];
    let mut bit_identical = vec![true; THREADS.len()];
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let base_out = baseline();
        let base_s = t.elapsed().as_secs_f64();
        base_times.push(base_s);
        assert!(identical(&base_out, &reference), "baseline must be deterministic");
        for (ti, &threads) in THREADS.iter().enumerate() {
            let (opt_s, out) = parallel::with_threads(threads, || {
                let t = Instant::now();
                let out = optimized(threads);
                (t.elapsed().as_secs_f64(), out)
            });
            opt_times[ti].push(opt_s);
            ratios[ti].push(base_s / opt_s);
            bit_identical[ti] &= identical(&out, &reference);
        }
    }
    let baseline_seconds = median(&mut base_times);
    let runs = THREADS
        .iter()
        .enumerate()
        .map(|(ti, &threads)| Run {
            threads,
            seconds: median(&mut opt_times[ti]),
            speedup: median(&mut ratios[ti]),
            peak_speedup: *ratios[ti].last().expect("sorted by median()"),
            bit_identical: bit_identical[ti],
        })
        .collect();
    KernelResult { name, baseline_seconds, runs }
}

fn bench_matmul() -> KernelResult {
    let mut rng = Rng64::new(15);
    let a = Matrix::random_uniform(MATMUL_N, MATMUL_N, -1.0, 1.0, &mut rng);
    let b = Matrix::random_uniform(MATMUL_N, MATMUL_N, -1.0, 1.0, &mut rng);
    bench_paired(
        "matmul_1024x1024",
        || matmul_naive(&a, &b),
        |_| a.par_matmul(&b),
        |x, y| x.as_slice().iter().zip(y.as_slice()).all(|(u, v)| u.to_bits() == v.to_bits()),
    )
}

fn bench_gather() -> KernelResult {
    let mut rng = Rng64::new(16);
    let tables: Vec<EmbeddingTable> =
        (0..TABLES).map(|_| EmbeddingTable::random(TABLE_ROWS, EMBED_DIM, &mut rng)).collect();
    let queries: Vec<Vec<Vec<usize>>> = (0..GATHER_QUERIES)
        .map(|_| {
            (0..TABLES)
                .map(|_| (0..LOOKUPS_PER_TABLE).map(|_| rng.below(TABLE_ROWS)).collect())
                .collect()
        })
        .collect();
    let eq = |x: &Vec<Vec<Vec<f32>>>, y: &Vec<Vec<Vec<f32>>>| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(qa, qb)| {
                qa.iter()
                    .zip(qb)
                    .all(|(va, vb)| va.iter().zip(vb).all(|(u, v)| u.to_bits() == v.to_bits()))
            })
    };
    bench_paired(
        "embedding_gather_8table",
        || {
            queries
                .iter()
                .map(|q| {
                    tables.iter().zip(q).map(|(t, idx)| gather_naive(t, idx)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        |_| {
            // Queries fan out across workers in fixed chunks; every table
            // inside a query is pooled by the unrolled+prefetching kernel.
            parallel::map_chunks(queries.len(), 16, |r| {
                r.map(|qi| {
                    tables
                        .iter()
                        .zip(&queries[qi])
                        .map(|(t, idx)| t.lookup_pool(idx))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
        },
        eq,
    )
}

/// Std-only JSON rendering of the report (no serde in the workspace).
fn to_json(kernels: &[KernelResult]) -> String {
    let mut s = String::from("{\n  \"bench\": \"parallel_kernels\",\n  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"baseline_seconds\": {:.6},\n      \"runs\": [\n",
            k.name, k.baseline_seconds
        ));
        for (j, r) in k.runs.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"seconds\": {:.6}, \"speedup\": {:.3}, \"peak_speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
                r.threads,
                r.seconds,
                r.speedup,
                r.peak_speedup,
                r.bit_identical,
                if j + 1 < k.runs.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < kernels.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    banner("E15");
    println!(
        "host threads: {} (ENW_THREADS overrides); speedups are medians of {ROUNDS} paired rounds\n",
        parallel::max_threads()
    );

    let kernels = vec![bench_matmul(), bench_gather()];

    let mut table = Table::new(&[
        "kernel",
        "baseline (ms)",
        "threads",
        "time (ms)",
        "speedup (median)",
        "speedup (peak)",
        "bit-identical",
    ]);
    for k in &kernels {
        for r in &k.runs {
            table.row_owned(vec![
                k.name.to_string(),
                format!("{:.1}", k.baseline_seconds * 1e3),
                format!("{}", r.threads),
                format!("{:.1}", r.seconds * 1e3),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.peak_speedup),
                format!("{}", r.bit_identical),
            ]);
        }
    }
    emit(&table);

    let json = to_json(&kernels);
    let path = "BENCH_parallel_kernels.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    for k in &kernels {
        let at4 = k.runs.iter().find(|r| r.threads == 4).expect("4-thread run");
        let identical = k.runs.iter().all(|r| r.bit_identical);
        println!(
            "{}: {:.2}x median ({:.2}x peak) at 4 threads vs naive serial, bit-identical {} -> {}",
            k.name,
            at4.speedup,
            at4.peak_speedup,
            identical,
            if at4.speedup >= 2.0 && identical { "PASS" } else { "BELOW TARGET (host noise?)" }
        );
    }
    println!();
    println!("Reading: the blocked matmul and unrolled+prefetching gather supply a >=2x");
    println!("single-core win and the thread fan-out multiplies it on multi-core hosts (this");
    println!("reference host exposes one core, so thread counts mostly coincide). Chunk");
    println!("boundaries are fixed and accumulators keep ascending-index order, so outputs");
    println!("are bit-identical at any thread count and parallel runs need no tolerances.");
}
