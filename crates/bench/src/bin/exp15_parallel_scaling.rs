//! E15 — simulation-throughput methodology: every parallel lane
//! (register-tiled matmul, crossbar MVM, TCAM nearest search, embedding
//! gather) is timed against its naive serial baseline across 1/2/4/8
//! threads, and every run must stay bit-identical to the baseline (the
//! determinism contract of `enw_core::parallel`).
//!
//! Timing protocol: each round times the naive baseline and the optimized
//! kernel back to back, and the reported speedup is the median of the
//! per-round ratios. Pairing cancels the slow frequency/load drift of
//! shared hosts that best-of-N timing is blind to.
//!
//! Pass `--smoke` for CI-sized inputs plus a hard gate: the run exits
//! nonzero if any kernel's 2-thread speedup falls below 1.0x (i.e. the
//! optimized kernels must never lose to the naive baselines).
//!
//! Emits `BENCH_parallel_kernels.json` in the working directory so CI can
//! track kernel throughput over time.

use enw_bench::{banner, emit};
use enw_core::cam::array::NearestHit;
use enw_core::cam::array::TcamConfig;
use enw_core::cam::bank::TcamBank;
use enw_core::cam::cells;
use enw_core::crossbar::array::AnalogArray;
use enw_core::crossbar::devices;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::parallel;
use enw_core::recsys::model::EmbeddingTable;
use enw_core::report::Table;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Problem sizes: full for the recorded experiment, smoke for CI.
struct Sizes {
    rounds: usize,
    matmul_n: usize,
    tables: usize,
    table_rows: usize,
    embed_dim: usize,
    lookups_per_table: usize,
    gather_queries: usize,
    xbar_n: usize,
    xbar_queries: usize,
    tcam_words: usize,
    tcam_width: usize,
    tcam_queries: usize,
}

const FULL: Sizes = Sizes {
    rounds: 9,
    matmul_n: 1024,
    tables: 8,
    table_rows: 200_000,
    embed_dim: 64,
    lookups_per_table: 128,
    gather_queries: 300,
    xbar_n: 1024,
    xbar_queries: 64,
    tcam_words: 20_000,
    tcam_width: 256,
    tcam_queries: 32,
};

const SMOKE: Sizes = Sizes {
    rounds: 5,
    matmul_n: 512,
    tables: 4,
    table_rows: 20_000,
    embed_dim: 64,
    lookups_per_table: 64,
    gather_queries: 40,
    xbar_n: 256,
    xbar_queries: 16,
    tcam_words: 2_000,
    tcam_width: 256,
    tcam_queries: 8,
};

/// Median of a list of paired-run timings or ratios.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    values[values.len() / 2]
}

/// The pre-optimization matmul: plain i-k-j accumulation with the same
/// ascending-k order and zero-skip rule as the tiled kernel, so its
/// output is the bitwise reference.
fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let coeff = a.at(i, kk);
            if coeff == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (o, &bv) in out.row_mut(i).iter_mut().zip(brow) {
                *o += coeff * bv;
            }
        }
    }
    out
}

/// The pre-optimization gather: one row at a time, no unrolling, no
/// prefetch.
fn gather_naive(table: &EmbeddingTable, indices: &[usize]) -> Vec<f32> {
    let mut pooled = vec![0.0f32; table.dim()];
    for &i in indices {
        for (p, v) in pooled.iter_mut().zip(table.row(i)) {
            *p += v;
        }
    }
    pooled
}

/// The pre-optimization crossbar read: one output current at a time,
/// ascending columns (the same fold `matvec_into` computes).
fn xbar_mvm_naive(weights: &Matrix, x: &[f32]) -> Vec<f32> {
    (0..weights.rows())
        .map(|r| {
            let mut acc = 0.0f32;
            for (c, xv) in x.iter().enumerate() {
                acc += weights.at(r, c) * xv;
            }
            acc
        })
        .collect()
}

/// The pre-optimization CAM scan: per-bit Hamming distance over unpacked
/// words — the straightforward software model of a match line, with the
/// same lowest-index tie rule as the limb-packed search.
fn tcam_naive(words: &[Vec<bool>], query: &[bool]) -> Option<NearestHit> {
    let mut best: Option<NearestHit> = None;
    for (i, w) in words.iter().enumerate() {
        let distance = w.iter().zip(query).filter(|(a, b)| a != b).count();
        if best.is_none_or(|b| distance < b.distance) {
            best = Some(NearestHit { index: i, distance });
        }
    }
    best
}

struct Run {
    threads: usize,
    seconds: f64,
    speedup: f64,
    peak_speedup: f64,
    bit_identical: bool,
}

struct KernelResult {
    name: &'static str,
    baseline_seconds: f64,
    runs: Vec<Run>,
}

/// Runs `rounds` paired rounds of (baseline, then one optimized variant
/// per thread count) and reduces to median times and median per-round
/// speedup ratios.
fn bench_paired<R: PartialEq>(
    name: &'static str,
    rounds: usize,
    mut baseline: impl FnMut() -> R,
    mut optimized: impl FnMut(usize) -> R,
    identical: impl Fn(&R, &R) -> bool,
) -> KernelResult {
    // Warm-up: first touches fault pages in and populate caches.
    let reference = baseline();
    let mut base_times = Vec::with_capacity(rounds);
    let mut opt_times = vec![Vec::with_capacity(rounds); THREADS.len()];
    let mut ratios = vec![Vec::with_capacity(rounds); THREADS.len()];
    let mut bit_identical = vec![true; THREADS.len()];
    for _ in 0..rounds {
        let t = Instant::now();
        let base_out = baseline();
        let base_s = t.elapsed().as_secs_f64();
        base_times.push(base_s);
        assert!(identical(&base_out, &reference), "baseline must be deterministic");
        for (ti, &threads) in THREADS.iter().enumerate() {
            let (opt_s, out) = parallel::with_threads(threads, || {
                let t = Instant::now();
                let out = optimized(threads);
                (t.elapsed().as_secs_f64(), out)
            });
            opt_times[ti].push(opt_s);
            ratios[ti].push(base_s / opt_s);
            bit_identical[ti] &= identical(&out, &reference);
        }
    }
    let baseline_seconds = median(&mut base_times);
    let runs = THREADS
        .iter()
        .enumerate()
        .map(|(ti, &threads)| Run {
            threads,
            seconds: median(&mut opt_times[ti]),
            speedup: median(&mut ratios[ti]),
            peak_speedup: *ratios[ti].last().expect("sorted by median()"),
            bit_identical: bit_identical[ti],
        })
        .collect();
    KernelResult { name, baseline_seconds, runs }
}

fn bench_matmul(s: &Sizes) -> KernelResult {
    let mut rng = Rng64::new(15);
    let a = Matrix::random_uniform(s.matmul_n, s.matmul_n, -1.0, 1.0, &mut rng);
    let b = Matrix::random_uniform(s.matmul_n, s.matmul_n, -1.0, 1.0, &mut rng);
    bench_paired(
        if s.matmul_n == 1024 { "matmul_1024x1024" } else { "matmul" },
        s.rounds,
        || matmul_naive(&a, &b),
        |_| a.par_matmul(&b),
        |x, y| x.as_slice().iter().zip(y.as_slice()).all(|(u, v)| u.to_bits() == v.to_bits()),
    )
}

fn bench_xbar_mvm(s: &Sizes) -> KernelResult {
    let mut rng = Rng64::new(17);
    let spec = devices::ideal(4000);
    let mut array = AnalogArray::new(s.xbar_n, s.xbar_n, &spec, &mut rng);
    for r in 0..s.xbar_n {
        for c in 0..s.xbar_n {
            array.set_weight(r, c, rng.range(-0.2, 0.2) as f32);
        }
    }
    let weights = array.read_matrix();
    let xs: Vec<Vec<f32>> = (0..s.xbar_queries)
        .map(|_| (0..s.xbar_n).map(|_| rng.range(-1.0, 1.0) as f32).collect())
        .collect();
    let eq = |a: &Vec<Vec<f32>>, b: &Vec<Vec<f32>>| {
        a.iter().zip(b).all(|(u, v)| u.iter().zip(v).all(|(x, y)| x.to_bits() == y.to_bits()))
    };
    bench_paired(
        "crossbar_mvm",
        s.rounds,
        || xs.iter().map(|x| xbar_mvm_naive(&weights, x)).collect::<Vec<_>>(),
        |_| xs.iter().map(|x| array.par_matvec(x, 0.0)).collect::<Vec<_>>(),
        eq,
    )
}

fn bench_tcam(s: &Sizes) -> KernelResult {
    let mut rng = Rng64::new(18);
    let mut bank = TcamBank::new(s.tcam_width, 128, cells::fefet_2t(), TcamConfig::default());
    let mut words_naive: Vec<Vec<bool>> = Vec::with_capacity(s.tcam_words);
    for _ in 0..s.tcam_words {
        let bools: Vec<bool> = (0..s.tcam_width).map(|_| rng.below(2) == 1).collect();
        bank.write(BitVec::from_bools(&bools));
        words_naive.push(bools);
    }
    let queries: Vec<Vec<bool>> = (0..s.tcam_queries)
        .map(|_| (0..s.tcam_width).map(|_| rng.below(2) == 1).collect())
        .collect();
    let queries_packed: Vec<BitVec> = queries.iter().map(|q| BitVec::from_bools(q)).collect();
    bench_paired(
        "tcam_search",
        s.rounds,
        || queries.iter().map(|q| tcam_naive(&words_naive, q)).collect::<Vec<_>>(),
        |_| {
            // Cost bookkeeping mutates the bank, so each timed pass works
            // on a clone; the copy is tiny next to the searches.
            let mut b = bank.clone();
            queries_packed.iter().map(|q| b.search_nearest(q).0).collect::<Vec<_>>()
        },
        |a, b| a == b,
    )
}

fn bench_gather(s: &Sizes) -> KernelResult {
    let mut rng = Rng64::new(16);
    let tables: Vec<EmbeddingTable> = (0..s.tables)
        .map(|_| EmbeddingTable::random(s.table_rows, s.embed_dim, &mut rng))
        .collect();
    let queries: Vec<Vec<Vec<usize>>> = (0..s.gather_queries)
        .map(|_| {
            (0..s.tables)
                .map(|_| (0..s.lookups_per_table).map(|_| rng.below(s.table_rows)).collect())
                .collect()
        })
        .collect();
    let eq = |x: &Vec<Vec<Vec<f32>>>, y: &Vec<Vec<Vec<f32>>>| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(qa, qb)| {
                qa.iter()
                    .zip(qb)
                    .all(|(va, vb)| va.iter().zip(vb).all(|(u, v)| u.to_bits() == v.to_bits()))
            })
    };
    bench_paired(
        "embedding_gather",
        s.rounds,
        || {
            queries
                .iter()
                .map(|q| {
                    tables.iter().zip(q).map(|(t, idx)| gather_naive(t, idx)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        |_| {
            // Queries fan out across workers in fixed chunks; every table
            // inside a query is pooled by the unrolled+prefetching kernel.
            parallel::map_chunks(queries.len(), 16, |r| {
                r.map(|qi| {
                    tables
                        .iter()
                        .zip(&queries[qi])
                        .map(|(t, idx)| t.lookup_pool(idx))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
        },
        eq,
    )
}

/// Std-only JSON rendering of the report (no serde in the workspace).
fn to_json(kernels: &[KernelResult], smoke: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"parallel_kernels\",\n  \"smoke\": {smoke},\n  \"kernels\": [\n"
    );
    for (i, k) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"baseline_seconds\": {:.6},\n      \"runs\": [\n",
            k.name, k.baseline_seconds
        ));
        for (j, r) in k.runs.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"seconds\": {:.6}, \"speedup\": {:.3}, \"peak_speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
                r.threads,
                r.seconds,
                r.speedup,
                r.peak_speedup,
                r.bit_identical,
                if j + 1 < k.runs.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < kernels.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = if smoke { &SMOKE } else { &FULL };
    banner("E15");
    println!(
        "host threads: {} (ENW_THREADS overrides); speedups are medians of {} paired rounds{}\n",
        parallel::max_threads(),
        s.rounds,
        if smoke { " [smoke]" } else { "" }
    );
    parallel::prewarm(*THREADS.iter().max().unwrap_or(&1));

    let kernels = vec![bench_matmul(s), bench_xbar_mvm(s), bench_tcam(s), bench_gather(s)];

    let mut table = Table::new(&[
        "kernel",
        "baseline (ms)",
        "threads",
        "time (ms)",
        "speedup (median)",
        "speedup (peak)",
        "bit-identical",
    ]);
    for k in &kernels {
        for r in &k.runs {
            table.row_owned(vec![
                k.name.to_string(),
                format!("{:.1}", k.baseline_seconds * 1e3),
                format!("{}", r.threads),
                format!("{:.1}", r.seconds * 1e3),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.peak_speedup),
                format!("{}", r.bit_identical),
            ]);
        }
    }
    emit(&table);

    let json = to_json(&kernels, smoke);
    let path = "BENCH_parallel_kernels.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    let mut gate_ok = true;
    for k in &kernels {
        let at2 = k.runs.iter().find(|r| r.threads == 2).expect("2-thread run");
        let identical = k.runs.iter().all(|r| r.bit_identical);
        gate_ok &= at2.speedup >= 1.0 && identical;
        println!(
            "{}: {:.2}x median ({:.2}x peak) at 2 threads vs naive serial, bit-identical {} -> {}",
            k.name,
            at2.speedup,
            at2.peak_speedup,
            identical,
            if at2.speedup >= 1.0 && identical { "PASS" } else { "FAIL" }
        );
    }
    // Plateau guard: per-worker B-panel packing must keep the matmul
    // scaling past 4 workers — an 8-thread run that falls more than 10%
    // below the 4-thread one means shared-panel contention is back.
    {
        let matmul = kernels.first().expect("matmul is the first kernel");
        let at4 = matmul.runs.iter().find(|r| r.threads == 4).expect("4-thread run");
        let at8 = matmul.runs.iter().find(|r| r.threads == 8).expect("8-thread run");
        let holds = at8.speedup >= 0.9 * at4.speedup;
        gate_ok &= holds;
        println!(
            "{}: {:.2}x at 8 threads vs {:.2}x at 4 (floor 0.9x) -> {}",
            matmul.name,
            at8.speedup,
            at4.speedup,
            if holds { "PASS" } else { "FAIL (8-thread plateau)" }
        );
    }
    println!();
    println!("Reading: the register-tiled matmul, streaming crossbar read, limb-packed TCAM");
    println!("scan and unrolled+prefetching gather supply the single-core win, and the");
    println!("persistent-pool fan-out multiplies it on multi-core hosts (this reference host");
    println!("exposes one core, so thread counts mostly coincide). Chunk boundaries are fixed");
    println!("and accumulators keep ascending-index order, so outputs are bit-identical at");
    println!("any thread count and parallel runs need no tolerances.");
    if smoke && !gate_ok {
        println!();
        println!("SCALING GATE FAILED: a kernel lost to its naive baseline at 2 threads.");
        std::process::exit(1);
    }
}
