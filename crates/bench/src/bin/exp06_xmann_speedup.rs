//! E6 — X-MANN vs GPU across the MANN benchmark suite (paper Sec. III-B:
//! "23.7×–45.7× speedup and 75.1×–267.1× reduction in energy over a
//! state-of-the-art GPU").

use enw_bench::{banner, emit};
use enw_core::numerics::rng::Rng64;
use enw_core::numerics::stats::geometric_mean;
use enw_core::report::{energy, latency, ratio, Table};
use enw_core::xmann::arch::XmannConfig;
use enw_core::xmann::cost::{GpuCostParams, XmannCostParams};
use enw_core::xmann::workloads::{run_benchmark, run_suite, MannBenchmark};

fn main() {
    banner("E6");
    let mut rng = Rng64::new(6);
    let results = run_suite(&mut rng);

    let mut table = Table::new(&[
        "benchmark",
        "memory slots",
        "GPU latency",
        "X-MANN latency",
        "speedup",
        "GPU energy",
        "X-MANN energy",
        "energy reduction",
    ]);
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    for r in &results {
        speedups.push(r.speedup());
        energies.push(r.energy_reduction());
        table.row_owned(vec![
            r.name.to_string(),
            format!("{}", r.slots),
            latency(r.gpu.latency_ns),
            latency(r.xmann.latency_ns),
            ratio(r.speedup()),
            energy(r.gpu.energy_pj),
            energy(r.xmann.energy_pj),
            ratio(r.energy_reduction()),
        ]);
    }
    emit(&table);
    println!(
        "speedup range {:.1}x - {:.1}x (geomean {:.1}x); paper reports 23.7x - 45.7x",
        speedups.iter().cloned().fold(f64::INFINITY, f64::min),
        speedups.iter().cloned().fold(0.0, f64::max),
        geometric_mean(&speedups)
    );
    println!(
        "energy reduction range {:.1}x - {:.1}x (geomean {:.1}x); paper reports 75.1x - 267.1x",
        energies.iter().cloned().fold(f64::INFINITY, f64::min),
        energies.iter().cloned().fold(0.0, f64::max),
        geometric_mean(&energies)
    );
    // Ablation: TCPT tile geometry on a mid-size benchmark. Taller tiles
    // amortize converters over more rows but serialize more ADC rounds.
    let mut ab = Table::new(&["tile (rows x cols)", "speedup", "energy reduction"]);
    let bench = MannBenchmark { name: "ablation", slots: 65_536, dim: 64, queries: 8 };
    for &(tr, tc) in &[(64usize, 64usize), (256, 64), (1024, 64), (256, 32)] {
        let cfg = XmannConfig { tile_rows: tr, tile_cols: tc, ..XmannConfig::default() };
        let cmp = run_benchmark(
            &bench,
            cfg,
            XmannCostParams::default(),
            GpuCostParams::default(),
            &mut rng,
        );
        ab.row_owned(vec![
            format!("{tr} x {tc}"),
            ratio(cmp.speedup()),
            ratio(cmp.energy_reduction()),
        ]);
    }
    println!("-- ablation: TCPT tile geometry (65536 x 64 memory) --");
    emit(&ab);
    println!("Reading: who wins (X-MANN, on every benchmark) and the trend (the advantage grows");
    println!("with memory capacity until the fixed tile budget forces serial passes) match the");
    println!("paper; absolute ratios depend on the substituted cost constants (DESIGN.md).");
}
