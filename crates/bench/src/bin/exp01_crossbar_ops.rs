//! E1 — Crossbar VMM and parallel rank-1 stochastic update (paper Fig. 1,
//! Sec. II-A).
//!
//! Demonstrates that forward, backward and update each take a *constant*
//! number of crossbar operations regardless of array size (the O(1)
//! property), that the analog forward pass matches a digital reference,
//! and that the stochastic pulse update realizes the intended rank-1
//! gradient step in expectation.

use enw_bench::{banner, emit};
use enw_core::crossbar::devices;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::nn::backend::LinearBackend;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::report::Table;

fn main() {
    banner("E1");
    let mut rng = Rng64::new(42);
    let mut table = Table::new(&[
        "array (out x in)",
        "fwd xbar ops",
        "bwd xbar ops",
        "upd xbar ops",
        "pulses/device/update",
        "max |analog - digital| fwd",
        "update rel. error",
    ]);
    for &n in &[64usize, 128, 256, 512, 1024] {
        let spec = devices::ideal(4000);
        let mut tile = AnalogTile::new(n, n, &spec, TileConfig::ideal(), &mut rng);
        let target = Matrix::random_uniform(n, n + 1, -0.2, 0.2, &mut rng);
        tile.program_effective(&target);

        // Forward fidelity against the digital reference.
        let x: Vec<f32> = (0..n).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let y = tile.forward(&x);
        let mut xa = x.clone();
        xa.push(1.0);
        let y_ref = target.matvec(&xa);
        let max_err = y.iter().zip(&y_ref).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);

        // One backward, then repeated identical updates to measure the
        // realized mean step against the intended -lr*d*x.
        let d: Vec<f32> = (0..n).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let _ = tile.backward(&d);
        let before = tile.weights();
        let lr = 0.001;
        let reps = 50u64;
        for _ in 0..reps {
            tile.update(&d, &x, lr);
        }
        let after = tile.weights();
        // Compare realized vs intended change on a sample of entries.
        let mut err_num = 0.0f64;
        let mut err_den = 0.0f64;
        for i in (0..n).step_by(n / 16) {
            for j in (0..n).step_by(n / 16) {
                let realized = (after.at(i, j) - before.at(i, j)) as f64;
                let intended = -(lr as f64) * d[i] as f64 * x[j] as f64 * reps as f64;
                err_num += (realized - intended).powi(2);
                err_den += intended.powi(2);
            }
        }
        let rel_err = (err_num / err_den.max(1e-30)).sqrt();

        let s = tile.stats();
        let pulses_per_device = s.pulses as f64 / (n as f64 * (n + 1) as f64) / s.update_ops as f64;
        table.row_owned(vec![
            format!("{n} x {n}"),
            format!("{}", s.forward_ops),       // 1: single parallel op
            format!("{}", s.backward_ops),      // 1: transposed op
            format!("{}", s.update_ops / reps), // 1 per update call
            format!("{pulses_per_device:.2}"),
            format!("{max_err:.4}"),
            format!("{rel_err:.3}"),
        ]);
    }
    emit(&table);

    // Ablation: pulse-train length vs update fidelity. Longer trains
    // average out coincidence noise at linear cost in update latency.
    let mut ab = Table::new(&["BL (pulse train)", "update rel. error", "pulses/device/update"]);
    for &bl in &[1u32, 7, 31, 127] {
        let spec = devices::ideal(4000);
        let cfg = TileConfig {
            update: enw_core::crossbar::tile::UpdateScheme::StochasticPulse { bl },
            ..TileConfig::ideal()
        };
        let n = 128;
        let mut tile = AnalogTile::new(n, n, &spec, cfg, &mut rng);
        let x: Vec<f32> = (0..n).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let d: Vec<f32> = (0..n).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let before = tile.weights();
        let lr = 0.001;
        let reps = 50u64;
        for _ in 0..reps {
            tile.update(&d, &x, lr);
        }
        let after = tile.weights();
        let mut err_num = 0.0f64;
        let mut err_den = 0.0f64;
        for i in (0..n).step_by(8) {
            for j in (0..n).step_by(8) {
                let realized = (after.at(i, j) - before.at(i, j)) as f64;
                let intended = -(lr as f64) * d[i] as f64 * x[j] as f64 * reps as f64;
                err_num += (realized - intended).powi(2);
                err_den += intended.powi(2);
            }
        }
        let s = tile.stats();
        ab.row_owned(vec![
            format!("{bl}"),
            format!("{:.3}", (err_num / err_den.max(1e-30)).sqrt()),
            format!("{:.2}", s.pulses as f64 / (n as f64 * (n + 1) as f64) / s.update_ops as f64),
        ]);
    }
    println!("-- ablation: pulse-train length BL vs update fidelity --");
    emit(&ab);
    println!("Reading: fwd/bwd/upd crossbar-op counts stay at 1 per cycle at every size (O(1));");
    println!("pulses per device per update stay O(BL), independent of array dimensions; longer");
    println!("pulse trains trade update latency for lower stochastic-update error.");
}
