//! E14 — Embedding caching opportunity (paper Sec. V-B, ref. \[66\]):
//! Zipf-skewed lookups let a small cache capture most traffic, motivating
//! caching/prefetching/near-memory co-design for the memory-bound regime.

use enw_bench::{banner, emit};
use enw_core::numerics::rng::{Rng64, ZipfSampler};
use enw_core::recsys::cache::{EmbeddingCache, MemoryEnergy};
use enw_core::report::{percent, Table};

const CATALOGUE: usize = 1_000_000;
const LOOKUPS: usize = 200_000;

fn main() {
    banner("E14");
    let energy = MemoryEnergy::default();
    println!(
        "catalogue {CATALOGUE} rows, {LOOKUPS} lookups; DRAM {} pJ/B vs cache {} pJ/B\n",
        energy.dram_byte_pj, energy.cache_byte_pj
    );

    let mut table = Table::new(&[
        "zipf alpha",
        "cache capacity",
        "capacity (% of rows)",
        "hit rate",
        "effective pJ/B",
        "DRAM traffic saved",
    ]);
    for &alpha in &[0.6f64, 0.8, 1.0, 1.2] {
        let zipf = ZipfSampler::new(CATALOGUE, alpha);
        for &capacity in &[1_000usize, 10_000, 100_000] {
            let mut rng = Rng64::new(14);
            let mut cache = EmbeddingCache::new(capacity);
            // Warm up on 10% of the trace, then measure.
            for _ in 0..LOOKUPS / 10 {
                cache.access(0, zipf.sample(&mut rng));
            }
            cache.reset_stats();
            for _ in 0..LOOKUPS {
                cache.access(0, zipf.sample(&mut rng));
            }
            let hr = cache.stats().hit_rate();
            table.row_owned(vec![
                format!("{alpha:.1}"),
                format!("{capacity}"),
                format!("{:.1}%", 100.0 * capacity as f64 / CATALOGUE as f64),
                percent(hr),
                format!("{:.2}", energy.effective_byte_pj(hr)),
                percent(hr),
            ]);
        }
    }
    emit(&table);
    println!("Reading: at production-like skew (alpha near 1) a cache holding ~1% of the");
    println!("catalogue serves roughly half the lookups; the remaining tail still forces DRAM,");
    println!("which is why the paper pairs caching with near-memory processing rather than");
    println!("treating either as sufficient alone.");
}
