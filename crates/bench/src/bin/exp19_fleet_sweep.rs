//! E19 — serving at fleet scale (Sec. V-B, deployment): a multi-node
//! cluster with consistent-hash routing, range-sharded replicated
//! embedding tables and reactive autoscaling, swept over traffic shape
//! (diurnal/Zipf, bursty/uniform, flash-crowd/hot-set) × fleet size
//! (2, 4, 8 nodes per lane with 4, 8, 16 embedding shards). Reported
//! per cell and lane: tail latencies, goodput per node-second, scale
//! events and the measured rebalance cost (moved probe keys on the
//! ring, moved shard bytes in the store).
//!
//! The whole cluster runs on virtual time, so every number is a pure
//! function of `(spec, trace)` — bit-identical across reruns and
//! `ENW_THREADS`; the only wall-clock reading times the simulator.
//!
//! Emits `BENCH_fleet.json` in the working directory so CI can track
//! tails and goodput-per-node over time. Pass `--smoke` for a short
//! horizon (CI-sized); full runs use a 4x longer one.

use enw_bench::{banner, emit};
use enw_core::fleet::presets::{fleet_spec, scales, trace, FleetScale, Scenario};
use enw_core::fleet::sim::{try_run, FleetReport};
use enw_core::report::Table;
use std::time::Instant;

const SEED: u64 = 19;
const SMOKE_HORIZON_NS: u64 = 50_000_000; // 50 ms of virtual time
const FULL_HORIZON_NS: u64 = 200_000_000; // 200 ms of virtual time

struct Cell {
    scenario: Scenario,
    scale: FleetScale,
    arrivals: usize,
    sim_seconds: f64,
    report: FleetReport,
}

/// One cell of the sweep: `scenario`'s traffic at `scale`'s size.
fn run_cell(scenario: Scenario, scale: FleetScale, horizon_ns: u64) -> Cell {
    let t = trace(scenario, scale, horizon_ns, SEED);
    let arrivals = t.len();
    let wall = Instant::now();
    let report = try_run(fleet_spec(scale), &t).expect("preset spec and trace are valid");
    Cell { scenario, scale, arrivals, sim_seconds: wall.elapsed().as_secs_f64(), report }
}

/// Std-only JSON rendering of the sweep (no serde in the workspace).
fn to_json(cells: &[Cell], deterministic: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"fleet_sweep\",\n  \"seed\": {SEED},\n  \"deterministic_rerun\": {deterministic},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"nodes\": {},\n      \"shards\": {},\n      \"arrivals\": {},\n      \"sim_seconds\": {:.4},\n      \"lanes\": [\n",
            c.scenario.name(),
            c.scale.nodes,
            c.scale.shards,
            c.arrivals,
            c.sim_seconds
        ));
        for (j, l) in c.report.lanes.iter().enumerate() {
            let p = l.metrics.summary();
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"arrived\": {}, \"completed\": {}, \"deadline_misses\": {}, \"shed\": {}, \"rejected\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"goodput_per_node_qps\": {:.1}, \"node_seconds\": {:.6}, \"replicas_peak\": {}, \"replicas_final\": {}, \"scale_ups\": {}, \"scale_downs\": {}, \"keys_moved\": {}, \"moved_bytes\": {}}}{}\n",
                l.name,
                l.metrics.arrived,
                l.metrics.completed,
                l.metrics.deadline_misses,
                l.metrics.shed,
                l.metrics.rejected,
                p.p50_ns,
                p.p95_ns,
                p.p99_ns,
                l.goodput_per_node_qps(),
                l.node_seconds,
                l.replicas_peak,
                l.replicas_final,
                l.scale_ups,
                l.scale_downs,
                l.keys_moved,
                l.moved_bytes,
                if j + 1 < c.report.lanes.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]");
        if let Some(sh) = &c.report.shard {
            s.push_str(&format!(
                ",\n      \"shard\": {{\"slots\": {}, \"hot\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"replicated_bytes\": {}, \"table_bytes\": {}}}",
                sh.shards,
                sh.hot_shards,
                sh.cache_hits,
                sh.cache_misses,
                sh.replicated_bytes,
                sh.table_bytes,
            ));
        }
        s.push_str(&format!("\n    }}{}\n", if i + 1 < cells.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    banner("E19");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon_ns = if smoke { SMOKE_HORIZON_NS } else { FULL_HORIZON_NS };
    println!(
        "mode: {} ({} ms virtual horizon per cell); offered load scales with fleet size,\nso cells compare shape and placement effects at equal nominal utilization\n",
        if smoke { "smoke" } else { "full" },
        horizon_ns / 1_000_000
    );

    // Determinism spot-check: a rerun of the same (spec, trace) must
    // produce the same report bytes, whatever ENW_THREADS is set to.
    let deterministic = {
        let probe = (Scenario::DiurnalZipf, scales()[0]);
        let a = run_cell(probe.0, probe.1, SMOKE_HORIZON_NS).report.render();
        let b = run_cell(probe.0, probe.1, SMOKE_HORIZON_NS).report.render();
        a == b
    };
    assert!(deterministic, "rerun of the same spec/trace diverged");

    let mut cells = Vec::new();
    for scale in scales() {
        for scenario in Scenario::all() {
            cells.push(run_cell(scenario, scale, horizon_ns));
        }
    }

    let mut table = Table::new(&[
        "scenario",
        "fleet",
        "lane",
        "arrived",
        "p50 (us)",
        "p99 (us)",
        "late",
        "dropped",
        "goodput/node",
        "peak",
        "ups/downs",
        "moved",
    ]);
    for c in &cells {
        for l in &c.report.lanes {
            let p = l.metrics.summary();
            let dropped = l.metrics.shed + l.metrics.rejected;
            table.row_owned(vec![
                c.scenario.name().to_string(),
                format!("{}n/{}s", c.scale.nodes, c.scale.shards),
                l.name.clone(),
                format!("{}", l.metrics.arrived),
                format!("{:.1}", p.p50_ns as f64 / 1e3),
                format!("{:.1}", p.p99_ns as f64 / 1e3),
                format!(
                    "{:.2}%",
                    100.0 * l.metrics.deadline_misses as f64 / l.metrics.arrived.max(1) as f64
                ),
                format!("{:.2}%", 100.0 * dropped as f64 / l.metrics.arrived.max(1) as f64),
                format!("{:.0}/s", l.goodput_per_node_qps()),
                format!("{}", l.replicas_peak),
                format!("{}/{}", l.scale_ups, l.scale_downs),
                format!("{}k+{}B", l.keys_moved, l.moved_bytes),
            ]);
        }
    }
    emit(&table);

    let json = to_json(&cells, deterministic);
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    let flash: Vec<&Cell> = cells.iter().filter(|c| c.scenario == Scenario::FlashHotSet).collect();
    let small = flash.first().expect("sweep covers every scenario");
    let large = flash.last().expect("sweep covers every scenario");
    // Lane 1 is the sharded recsys lane in every preset cell.
    let drop_rate = |c: &Cell| {
        let l = &c.report.lanes[1];
        100.0 * (l.metrics.shed + l.metrics.rejected) as f64 / l.metrics.arrived.max(1) as f64
    };
    println!();
    println!("Reading: the plain MLP lane scales cleanly — goodput-per-node is flat across the",);
    println!("size axis. The sharded recsys lane does not: at equal nominal utilization the",);
    println!(
        "flash crowd costs it {:.2}% drops on the {}-node fleet but {:.2}% on the {}-node",
        drop_rate(small),
        small.scale.nodes,
        drop_rate(large),
        large.scale.nodes
    );
    println!("fleet, because each batch's embedding fan-out widens with shard count — the");
    println!("all-to-all cost the paper flags for at-scale recommendation serving (Sec. V-B).");
    println!("Scale events price their own rebalance: moved probe keys stay near K/N on the");
    println!("ring and the store only copies bytes for shards whose owner set actually");
    println!("changed. Every number is a pure function of (spec, trace): reruns are");
    println!("byte-identical at any ENW_THREADS.");
}
