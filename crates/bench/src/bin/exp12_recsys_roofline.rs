//! E12 — Operator-level roofline characterization of recommendation
//! models (paper Sec. V-B): embedding operations sit orders of magnitude
//! below MLP operations in arithmetic intensity, flipping configurations
//! between compute- and memory-bound.

use enw_bench::{banner, emit};
use enw_core::recsys::characterize::{profile_batched, Bound, RooflineMachine};
use enw_core::recsys::model::RecModelConfig;
use enw_core::report::Table;

const BATCH: u64 = 128;

fn main() {
    banner("E12");
    let machine = RooflineMachine::server_cpu();
    println!(
        "machine: {:.1} TFLOP/s peak, {:.0} GB/s bandwidth, balance point {:.1} FLOP/byte; batch {BATCH}\n",
        machine.peak_flops / 1e12,
        machine.mem_bandwidth / 1e9,
        machine.balance()
    );

    for (name, cfg) in [
        ("RM-compute (MLP-heavy)", RecModelConfig::compute_bound()),
        ("RM-memory (embedding-heavy)", RecModelConfig::memory_bound()),
    ] {
        let p = profile_batched(&cfg, BATCH);
        let mut table = Table::new(&[
            "operator",
            "GFLOPs/batch",
            "MB moved/batch",
            "FLOP/byte",
            "bound",
            "time share",
        ]);
        let rows = [
            ("bottom MLP", p.bottom_mlp),
            ("embeddings", p.embeddings),
            ("interaction", p.interaction),
            ("top MLP", p.top_mlp),
        ];
        let total_time: f64 = rows.iter().map(|(_, op)| machine.time_seconds(op)).sum();
        for (op_name, op) in rows {
            let bound = match machine.bound(&op) {
                Bound::Compute => "compute",
                Bound::Memory => "memory",
            };
            table.row_owned(vec![
                op_name.to_string(),
                format!("{:.3}", op.flops as f64 / 1e9),
                format!("{:.3}", op.bytes as f64 / 1e6),
                format!("{:.2}", op.intensity()),
                bound.to_string(),
                format!("{:.0}%", 100.0 * machine.time_seconds(&op) / total_time),
            ]);
        }
        println!("-- {name} --");
        emit(&table);
        let intensity_gap =
            p.bottom_mlp.intensity() / p.embeddings.intensity().max(f64::MIN_POSITIVE);
        println!("MLP-vs-embedding intensity gap: {intensity_gap:.0}x\n");
    }
    println!("Reading: in the embedding-heavy configuration the gather/pool operators are deep");
    println!("in the memory-bound region and dominate execution time; in the MLP-heavy one the");
    println!("dense stacks dominate — the paper's compute- vs memory-bound dichotomy.");
}
