//! E21 — streaming tiled analog training at depth (Sec. II; the
//! large-scale training methodology of refs. \[14\]\[36\]).
//!
//! The earlier analog experiments (E2, E4) train shallow MLPs on single
//! tiles. This binary exercises the full streaming pipeline: a deep
//! (≥6 trainable layers) conv stack whose every weight array is a
//! `TiledAnalogLayer` — a grid of crossbar tiles with deterministic
//! partial-sum reduction — trained sample-by-sample with double-buffered
//! input staging and a virtual clock modeling prefetch/update overlap.
//!
//! Four contracts are gated (the process exits non-zero if any fails):
//!
//! 1. **Zero-alloc steady state** — a counting `#[global_allocator]`
//!    shows warm training steps perform no heap allocation.
//! 2. **Rerun determinism** — two identically seeded runs produce
//!    byte-identical checkpoints.
//! 3. **Thread invariance** — ENW_THREADS=1/2/8 produce byte-identical
//!    checkpoints.
//! 4. **Checkpoint/resume** — a run interrupted mid-flight and resumed
//!    from its checkpoint finishes byte-identical to an uninterrupted
//!    run.
//!
//! It then sweeps depth, tiling, and device technology, emitting
//! accuracy-vs-device surfaces and steady-state virtual-clock
//! throughput into `BENCH_analog_training.json`. Pass `--smoke` for
//! CI-sized iteration counts.

use enw_bench::alloc_audit::{self, CountingAlloc};
use enw_bench::{banner, emit};
use enw_core::crossbar::device::DeviceSpec;
use enw_core::crossbar::devices;
use enw_core::crossbar::pipeline::{AnalogPipeline, PipelineConfig};
use enw_core::crossbar::tile::TileConfig;
use enw_core::crossbar::tiled::TilingConfig;
use enw_core::nn::conv::{ConvNetConfig, MapShape};
use enw_core::nn::data::{Dataset, Split};
use enw_core::numerics::rng::Rng64;
use enw_core::parallel::with_threads;
use enw_core::report::Table;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SEED: u64 = 21;
const WARMUP_STEPS: usize = 8;

struct Sizes {
    /// Image side of the deep run (input is `side × side`).
    deep_side: usize,
    /// Conv channels of the deep stack (+ embedding + head ≥ 6 layers).
    deep_channels: &'static [usize],
    deep_steps: usize,
    /// Image side of the sweep runs.
    sweep_side: usize,
    sweep_steps: usize,
    /// Seeds averaged per sweep point (single runs are dominated by
    /// pulse-level noise — a deep analog net can die early by chance).
    sweep_seeds: u64,
    gate_steps: usize,
    measured_steps: usize,
    train_per_class: usize,
    test_per_class: usize,
}

const FULL: Sizes = Sizes {
    // 28 → 26 → pool 13 → 11 → pool 5 → 3 → 1: four conv stages fit.
    deep_side: 28,
    deep_channels: &[4, 6, 6, 8],
    deep_steps: 3600,
    sweep_side: 12,
    sweep_steps: 2400,
    sweep_seeds: 3,
    gate_steps: 12,
    measured_steps: 64,
    train_per_class: 30,
    test_per_class: 12,
};

const SMOKE: Sizes = Sizes {
    deep_side: 28,
    deep_channels: &[4, 6, 6, 8],
    deep_steps: 60,
    sweep_side: 12,
    sweep_steps: 30,
    sweep_seeds: 2,
    gate_steps: 10,
    measured_steps: 32,
    train_per_class: 10,
    test_per_class: 6,
};

fn make_data(side: usize, per_class: usize, test_per_class: usize, seed: u64) -> Split {
    let mut rng = Rng64::new(seed);
    enw_core::nn::data::SyntheticImages::builder()
        .classes(4)
        .dim(side * side)
        .train_per_class(per_class)
        .test_per_class(test_per_class)
        .noise(0.3)
        .build(&mut rng)
}

fn make_cfg(side: usize, channels: &[usize], spec: DeviceSpec, tiling: TilingConfig) -> PipelineConfig {
    PipelineConfig {
        net: ConvNetConfig {
            input: MapShape { channels: 1, height: side, width: side },
            conv_channels: channels.to_vec(),
            embed_dim: 24,
            classes: 4,
        },
        spec,
        tile: TileConfig::default(),
        tiling,
        // Streaming conv training applies one rank-1 update per im2col
        // position, so the effective per-sample step is much larger than
        // the MLP experiments' — 0.005 is the stable operating point.
        lr: 0.005,
        seed: SEED,
    }
}

fn gate_cfg() -> PipelineConfig {
    make_cfg(8, &[3, 4], devices::rram(), TilingConfig { tile_rows: 8, tile_cols: 10 })
}

/// Runs `steps` training steps on a fresh pipeline and returns the final
/// checkpoint — the byte-exact image of every piece of mutable state.
fn run_to_checkpoint(cfg: &PipelineConfig, data: &Dataset, steps: usize) -> Vec<u8> {
    let mut p = AnalogPipeline::new(cfg, data).expect("valid gate config");
    p.run(data, steps);
    p.checkpoint()
}

struct Gates {
    rerun_identical: bool,
    thread_invariant: bool,
    resume_identical: bool,
    allocs_per_step: f64,
    bytes_per_step: f64,
    zero_alloc: bool,
}

fn check_gates(sizes: &Sizes) -> Gates {
    let cfg = gate_cfg();
    let data = make_data(8, sizes.train_per_class, 2, SEED).train;
    let steps = sizes.gate_steps;

    // 1. Rerun determinism.
    let base = run_to_checkpoint(&cfg, &data, steps);
    let rerun_identical = base == run_to_checkpoint(&cfg, &data, steps);

    // 2. Thread invariance (the fan-out order over tiles must not leak).
    let thread_invariant = [1usize, 2, 8]
        .iter()
        .all(|&t| with_threads(t, || run_to_checkpoint(&cfg, &data, steps)) == base);

    // 3. Checkpoint/resume byte-identity.
    let mut a = AnalogPipeline::new(&cfg, &data).expect("valid gate config");
    a.run(&data, steps);
    let mid = a.checkpoint();
    a.run(&data, steps);
    let uninterrupted = a.checkpoint();
    let mut b = AnalogPipeline::new(&cfg, &data).expect("valid gate config");
    b.restore(&mid).expect("own checkpoint restores");
    b.run(&data, steps);
    let resume_identical = b.checkpoint() == uninterrupted;

    // 4. Zero allocations per steady-state step, once buffers and
    // scratch pools are warm.
    let mut p = AnalogPipeline::new(&cfg, &data).expect("valid gate config");
    for _ in 0..WARMUP_STEPS {
        p.step(&data);
    }
    let s0 = alloc_audit::snapshot();
    for _ in 0..sizes.measured_steps {
        p.step(&data);
    }
    let d = alloc_audit::snapshot().since(s0);
    let allocs_per_step = d.allocs as f64 / sizes.measured_steps as f64;
    let bytes_per_step = d.bytes as f64 / sizes.measured_steps as f64;

    Gates {
        rerun_identical,
        thread_invariant,
        resume_identical,
        allocs_per_step,
        bytes_per_step,
        zero_alloc: d.allocs == 0,
    }
}

struct DeepRun {
    layers: usize,
    tiles: usize,
    steps: u64,
    loss_first: f64,
    loss_last: f64,
    accuracy: f64,
    throughput: f64,
    clock_ms: f64,
    pulses: u64,
}

fn run_deep(sizes: &Sizes) -> DeepRun {
    let split = make_data(sizes.deep_side, sizes.train_per_class, sizes.test_per_class, SEED);
    // ECRAM: the symmetric, many-state technology the paper positions
    // for training — asymmetric RRAM collapses under plain SGD at this
    // depth (the sweep below records that surface; E4 holds the fix).
    let cfg = make_cfg(
        sizes.deep_side,
        sizes.deep_channels,
        devices::ecram(),
        TilingConfig { tile_rows: 16, tile_cols: 24 },
    );
    let mut p = AnalogPipeline::new(&cfg, &split.train).expect("valid deep config");
    let layers = p.net_mut().layer_count();
    let tiles = p.net_mut().backends().map(|l| l.tile_count()).sum();
    let chunk = sizes.deep_steps / 4;
    let loss_first = p.run(&split.train, chunk);
    p.run(&split.train, sizes.deep_steps - 2 * chunk);
    let loss_last = p.run(&split.train, chunk);
    let accuracy = p.evaluate(&split.test);
    DeepRun {
        layers,
        tiles,
        steps: p.steps(),
        loss_first,
        loss_last,
        accuracy,
        throughput: p.throughput(),
        clock_ms: p.clock_ns() as f64 / 1e6,
        pulses: p.stats().pulses,
    }
}

struct SweepPoint {
    device: &'static str,
    depth: usize,
    tile_rows: usize,
    tile_cols: usize,
    tiles: usize,
    accuracy: f64,
    throughput: f64,
    pulses: u64,
}

type DeviceFactory = fn() -> DeviceSpec;

fn run_sweep(sizes: &Sizes) -> Vec<SweepPoint> {
    let split = make_data(sizes.sweep_side, sizes.train_per_class, sizes.test_per_class, SEED + 1);
    let device_axis: &[(&'static str, DeviceFactory)] = &[
        ("ideal", || devices::ideal(1200)),
        ("rram", devices::rram),
        ("rram_optimized", devices::rram_optimized),
        ("ecram", devices::ecram),
    ];
    let tiling_axis =
        [TilingConfig { tile_rows: 256, tile_cols: 256 }, TilingConfig { tile_rows: 8, tile_cols: 8 }];
    let mut points = Vec::new();
    // Device × tiling surface at the deepest stack that fits the sweep
    // canvas (12 → 10 → pool 5 → 3 → 1: three conv stages).
    for (name, spec) in device_axis {
        for tiling in tiling_axis {
            points.push(sweep_point(sizes, &split, name, spec(), &[3, 4, 5], tiling));
        }
    }
    // Depth axis on the reference device at fine tiling.
    for depth in 1..=2usize {
        let channels: &[usize] = &[3, 4][..depth];
        points.push(sweep_point(
            sizes,
            &split,
            "rram",
            devices::rram(),
            channels,
            TilingConfig { tile_rows: 8, tile_cols: 8 },
        ));
    }
    points
}

fn sweep_point(
    sizes: &Sizes,
    split: &Split,
    device: &'static str,
    spec: DeviceSpec,
    channels: &[usize],
    tiling: TilingConfig,
) -> SweepPoint {
    let mut cfg = make_cfg(sizes.sweep_side, channels, spec, tiling);
    let (mut acc, mut thr, mut pulses, mut tiles) = (0.0f64, 0.0f64, 0u64, 0usize);
    for s in 0..sizes.sweep_seeds {
        cfg.seed = SEED + 1 + s;
        let mut p = AnalogPipeline::new(&cfg, &split.train).expect("valid sweep config");
        p.run(&split.train, sizes.sweep_steps);
        acc += p.evaluate(&split.test);
        thr += p.throughput();
        pulses += p.stats().pulses;
        tiles = p.net_mut().backends().map(|l| l.tile_count()).sum();
    }
    let n = sizes.sweep_seeds as f64;
    SweepPoint {
        device,
        depth: channels.len() + 2,
        tile_rows: tiling.tile_rows,
        tile_cols: tiling.tile_cols,
        tiles,
        accuracy: acc / n,
        throughput: thr / n,
        pulses: pulses / sizes.sweep_seeds,
    }
}

/// Std-only JSON rendering (no serde in the workspace).
fn to_json(gates: &Gates, deep: &DeepRun, sweep: &[SweepPoint], smoke: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"deep_analog\",\n  \"seed\": {SEED},\n  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    );
    s.push_str(&format!(
        "  \"determinism\": {{\"rerun_identical\": {}, \"thread_invariant\": {}, \"resume_identical\": {}}},\n",
        gates.rerun_identical, gates.thread_invariant, gates.resume_identical
    ));
    s.push_str(&format!(
        "  \"zero_alloc\": {{\"warmup_steps\": {WARMUP_STEPS}, \"allocs_per_step\": {:.4}, \"bytes_per_step\": {:.1}, \"zero_alloc_steady_state\": {}}},\n",
        gates.allocs_per_step, gates.bytes_per_step, gates.zero_alloc
    ));
    s.push_str(&format!(
        "  \"deep\": {{\"layers\": {}, \"tiles\": {}, \"steps\": {}, \"loss_first\": {:.4}, \"loss_last\": {:.4}, \"accuracy\": {:.4}, \"throughput_samples_per_s\": {:.1}, \"virtual_ms\": {:.3}, \"pulses\": {}}},\n",
        deep.layers,
        deep.tiles,
        deep.steps,
        deep.loss_first,
        deep.loss_last,
        deep.accuracy,
        deep.throughput,
        deep.clock_ms,
        deep.pulses
    ));
    s.push_str("  \"surface\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"device\": \"{}\", \"layers\": {}, \"tile_rows\": {}, \"tile_cols\": {}, \"tiles\": {}, \"accuracy\": {:.4}, \"throughput_samples_per_s\": {:.1}, \"pulses\": {}}}{}\n",
            p.device,
            p.depth,
            p.tile_rows,
            p.tile_cols,
            p.tiles,
            p.accuracy,
            p.throughput,
            p.pulses,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    banner("E21");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = if smoke { &SMOKE } else { &FULL };
    println!("mode: {}", if smoke { "smoke" } else { "full" });
    println!();

    let gates = check_gates(sizes);
    println!(
        "rerun determinism:   {}",
        if gates.rerun_identical { "PASS (byte-identical)" } else { "FAIL" }
    );
    println!(
        "thread invariance:   {}",
        if gates.thread_invariant { "PASS (ENW_THREADS=1/2/8 byte-identical)" } else { "FAIL" }
    );
    println!(
        "checkpoint/resume:   {}",
        if gates.resume_identical { "PASS (resume == uninterrupted)" } else { "FAIL" }
    );
    println!(
        "steady-state allocs: {:.4}/step ({:.1} bytes) -> {}",
        gates.allocs_per_step,
        gates.bytes_per_step,
        if gates.zero_alloc { "PASS (zero-alloc)" } else { "FAIL" }
    );
    println!();

    let deep = run_deep(sizes);
    println!(
        "deep stack: {} trainable layers over {} tiles; loss {:.3} -> {:.3} after {} steps; test accuracy {:.1}%",
        deep.layers,
        deep.tiles,
        deep.loss_first,
        deep.loss_last,
        deep.steps,
        100.0 * deep.accuracy
    );
    println!(
        "virtual clock: {:.3} ms for {} steps -> {:.0} samples/s steady state; {} pulses fired",
        deep.clock_ms, deep.steps, deep.throughput, deep.pulses
    );
    println!();

    let sweep = run_sweep(sizes);
    let mut table = Table::new(&[
        "device",
        "layers",
        "tile grid",
        "tiles",
        "accuracy",
        "samples/s",
        "pulses",
    ]);
    for p in &sweep {
        table.row_owned(vec![
            p.device.to_string(),
            p.depth.to_string(),
            format!("{}x{}", p.tile_rows, p.tile_cols),
            p.tiles.to_string(),
            format!("{:.1}%", 100.0 * p.accuracy),
            format!("{:.0}", p.throughput),
            p.pulses.to_string(),
        ]);
    }
    emit(&table);

    let json = to_json(&gates, &deep, &sweep, smoke);
    let path = "BENCH_analog_training.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    println!();
    println!("Reading: sharding every layer across tile grids leaves training a deterministic");
    println!("function of (config, seed) — the partial-sum reduction order is fixed, tile RNG");
    println!("streams are forked in grid order, and the double-buffered input stage plus the");
    println!("virtual clock make prefetch overlap free without breaking reproducibility. The");
    println!("checkpoint carries conductances, RNG streams, and the clock as raw bits, so a");
    println!("resumed run is indistinguishable from an uninterrupted one. The device surface");
    println!("reproduces Sec. II at depth: symmetric many-state technologies (ideal, ECRAM)");
    println!("train; asymmetric RRAM collapses under plain SGD — the failure zero-shifting");
    println!("and Tiki-Taka (E4) exist to fix. Fine tiling costs throughput (more partial-sum");
    println!("reads per cycle) but not correctness: the reduction stays bit-deterministic.");

    let ok = gates.rerun_identical
        && gates.thread_invariant
        && gates.resume_identical
        && gates.zero_alloc
        && deep.layers >= 6;
    if !ok {
        println!();
        println!("E21 GATE FAILED");
        std::process::exit(1);
    }
}
