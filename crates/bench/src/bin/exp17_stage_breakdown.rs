//! E17 — per-stage work attribution across all four workload lanes via
//! the `enw-trace` span recorder (methodology companion to E1/E15/E16).
//!
//! Every kernel crate records deterministic work units (element counts,
//! pulses) into named spans (`lane/stage`). This binary runs a small
//! representative workload per lane — analog crossbar training with
//! Tiki-Taka transfers, the MANN/X-MANN/TCAM few-shot memory path, DLRM
//! inference, and the E16 serving fleet — and reports each stage's share
//! of its lane's total work. Because the attributed quantities are element
//! counts on the virtual clock, every number here is bit-identical across
//! reruns and any `ENW_THREADS` setting (asserted by rerunning each lane).
//!
//! Emits `BENCH_stage_breakdown.json` (chrome-trace-style summary per
//! lane) in the working directory. Pass `--smoke` for CI-sized inputs.

use enw_bench::{banner, emit};
use enw_core::crossbar::devices;
use enw_core::crossbar::pipeline::{AnalogPipeline, PipelineConfig};
use enw_core::crossbar::tiki_taka::TikiTakaConfig;
use enw_core::crossbar::tile::TileConfig;
use enw_core::crossbar::tiled::TilingConfig;
use enw_core::crossbar::train::{tiki_taka_mlp, train_and_evaluate};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::nn::activation::Activation;
use enw_core::nn::conv::{ConvNetConfig, MapShape};
use enw_core::nn::data::SyntheticImages;
use enw_core::nn::mlp::SgdConfig;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::model::{Interaction, RecModel, RecModelConfig};
use enw_core::recsys::trace::TraceGenerator;
use enw_core::report::Table;
use enw_core::serve::presets::{saturation_qps, traffic_classes, try_fleet};
use enw_core::serve::{generate_trace, LoadSpec};
use enw_core::trace::{self, TraceMode, TraceReport};
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;
use enw_core::{cam, numerics};

const SEED: u64 = 17;

/// Analog crossbar training lane: forward/backward MVMs, stochastic-pulse
/// updates, programming, Tiki-Taka column transfers, and the streaming
/// tiled conv pipeline (partial-sum reduction + prefetch spans).
fn lane_crossbar(smoke: bool) {
    let mut rng = Rng64::new(SEED);
    let split = SyntheticImages::builder()
        .classes(4)
        .dim(16)
        .train_per_class(if smoke { 8 } else { 40 })
        .test_per_class(4)
        .noise(1.0)
        .build(&mut rng);
    let mut mlp = tiki_taka_mlp(
        &[16, 12, 4],
        &devices::rram(),
        TileConfig::default(),
        TikiTakaConfig::default(),
        Activation::Tanh,
        &mut rng,
    );
    let cfg = SgdConfig { epochs: if smoke { 1 } else { 3 }, learning_rate: 0.05 };
    let out = train_and_evaluate(&mut mlp, &split, &cfg, &mut rng);
    assert!((0.0..=1.0).contains(&out.test_accuracy));

    // Streaming tiled training (E21): conv-as-crossbar-matmul at depth,
    // attributed via the tiled reduce and train fb/update/prefetch spans.
    let conv_split = SyntheticImages::builder()
        .classes(3)
        .dim(64)
        .train_per_class(if smoke { 4 } else { 12 })
        .test_per_class(2)
        .build(&mut Rng64::new(SEED + 1));
    let pipe_cfg = PipelineConfig {
        net: ConvNetConfig {
            input: MapShape { channels: 1, height: 8, width: 8 },
            conv_channels: vec![3, 4],
            embed_dim: 12,
            classes: 3,
        },
        spec: devices::ecram(),
        tile: TileConfig::default(),
        tiling: TilingConfig { tile_rows: 8, tile_cols: 10 },
        lr: 0.005,
        seed: SEED,
    };
    let mut pipe = AnalogPipeline::new(&pipe_cfg, &conv_split.train).expect("valid lane config");
    pipe.run(&conv_split.train, if smoke { 4 } else { 24 });
}

/// Few-shot memory lane: MANN similarity scan, X-MANN tiled
/// similarity/read/write, and TCAM nearest-match search.
fn lane_fewshot(smoke: bool) {
    let mut rng = Rng64::new(SEED);
    let slots = if smoke { 64 } else { 512 };
    let dim = 32;
    let queries = if smoke { 8 } else { 64 };

    let mem = DifferentiableMemory::random(slots, dim, &mut rng);
    let mut xm = Xmann::new(slots, dim, XmannConfig::default(), XmannCostParams::default());
    let rows: Vec<Vec<f32>> = (0..slots).map(|s| mem.slot(s).to_vec()).collect();
    xm.load_memory(&rows);

    let mut bank = cam::bank::TcamBank::new(
        dim,
        16,
        cam::cells::fefet_2t(),
        cam::array::TcamConfig::default(),
    );
    for row in &rows {
        let bits: Vec<bool> = row.iter().map(|&v| v >= 0.0).collect();
        bank.write(BitVec::from_bools(&bits));
    }

    for _ in 0..queries {
        let q: Vec<f32> = (0..dim).map(|_| rng.uniform_f32() - 0.5).collect();
        let _ = mem.similarities(&q, Similarity::Cosine);
        let sim = xm.similarity(&q);
        let weights = numerics::vector::softmax(&sim.value, 1.0);
        let _ = xm.soft_read(&weights);
        let erase = vec![0.1f32; dim];
        let _ = xm.soft_write(&weights, &erase, &q);
        let bits: Vec<bool> = q.iter().map(|&v| v >= 0.0).collect();
        let _ = bank.search_nearest(&BitVec::from_bools(&bits));
    }
}

/// Recommendation lane: embedding gather+pool and the MLP stacks of a
/// DLRM-style model over a Zipf-skewed query trace.
fn lane_recsys(smoke: bool) {
    let mut rng = Rng64::new(SEED);
    let cfg = RecModelConfig {
        dense_features: 16,
        bottom_mlp: vec![32, 16],
        tables: vec![(1000, 4); 4],
        embedding_dim: 16,
        top_mlp: vec![32],
        interaction: Interaction::DotPairwise,
    };
    let mut model = RecModel::new(&cfg, &mut rng);
    let gen = TraceGenerator::new(&cfg, 1.0);
    let queries = gen.batch(if smoke { 64 } else { 512 }, &mut rng);
    let preds = model.predict_batch(&queries);
    assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
}

/// Serving lane: the E16 fleet near its saturation knee on a short
/// virtual-time trace.
fn lane_serve(smoke: bool) {
    let server = try_fleet(SEED).expect("preset fleet");
    let classes = traffic_classes();
    let qps = 0.9 * saturation_qps(&server, &classes);
    let horizon_ns = if smoke { 5_000_000 } else { 50_000_000 };
    let spec = LoadSpec { qps, duration_ns: horizon_ns, seed: SEED };
    let trace = generate_trace(&server, &spec, &classes);
    let report = server.try_run(&trace).expect("generated trace is valid");
    assert!(!report.stations.is_empty());
}

/// Runs one lane under a fresh summary-mode recording and drains it.
fn record_lane(run: &dyn Fn(bool), smoke: bool) -> TraceReport {
    trace::reset();
    run(smoke);
    trace::take_report()
}

struct Lane {
    name: &'static str,
    report: TraceReport,
}

/// Std-only JSON rendering (no serde in the workspace): one object per
/// lane with per-stage counts, work units, and work shares.
fn to_json(lanes: &[Lane], smoke: bool, deterministic: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"stage_breakdown\",\n  \"seed\": {SEED},\n  \"mode\": \"{}\",\n  \"deterministic_rerun\": {deterministic},\n  \"lanes\": [\n",
        if smoke { "smoke" } else { "full" }
    );
    for (i, l) in lanes.iter().enumerate() {
        let total = l.report.total_work().max(1);
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"total_work\": {},\n      \"stages\": [\n",
            l.name,
            l.report.total_work()
        ));
        for (j, sp) in l.report.spans.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"count\": {}, \"work\": {}, \"work_share\": {:.6}}}{}\n",
                sp.name,
                sp.count,
                sp.work,
                sp.work as f64 / total as f64,
                if j + 1 < l.report.spans.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < lanes.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    banner("E17");
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "mode: {}; work units are deterministic element/pulse counts, so every share below",
        if smoke { "smoke" } else { "full" }
    );
    println!("is bit-identical across reruns and any ENW_THREADS setting\n");
    trace::set_mode(TraceMode::Summary);

    let runs: [(&'static str, &dyn Fn(bool)); 4] = [
        ("crossbar_training", &lane_crossbar),
        ("fewshot_memory", &lane_fewshot),
        ("recsys_inference", &lane_recsys),
        ("serving", &lane_serve),
    ];

    // Each lane runs twice; the recorder must produce the same bytes both
    // times or the attribution is not trustworthy.
    let mut deterministic = true;
    let mut lanes = Vec::new();
    for (name, run) in runs {
        let first = record_lane(run, smoke);
        let second = record_lane(run, smoke);
        assert!(!first.spans.is_empty(), "lane {name} recorded no spans");
        deterministic &= first == second;
        lanes.push(Lane { name, report: first });
    }
    assert!(deterministic, "rerun of a lane produced a different trace report");

    let mut table = Table::new(&["lane", "stage", "count", "work units", "work %"]);
    for l in &lanes {
        let total = l.report.total_work().max(1);
        for sp in &l.report.spans {
            table.row_owned(vec![
                l.name.to_string(),
                sp.name.to_string(),
                format!("{}", sp.count),
                format!("{}", sp.work),
                format!("{:.1}%", 100.0 * sp.work as f64 / total as f64),
            ]);
        }
    }
    emit(&table);

    let json = to_json(&lanes, smoke, deterministic);
    let path = "BENCH_stage_breakdown.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    println!();
    println!("Reading: training work concentrates in the crossbar MVM/update pair with a");
    println!("fixed Tiki-Taka transfer overhead; the few-shot path is dominated by the");
    println!("similarity scans the CAM/X-MANN hardware accelerates; DLRM splits between");
    println!("embedding gather and the MLP stacks; serving work sits in backend execution.");
    println!("These shares are the attribution the paper's per-workload hardware arguments");
    println!("rest on, derived from the same instrumented kernels the experiments run.");
}
