//! E7 — Fixed-point range-encoded TCAM search vs FP32 cosine for few-shot
//! classification (paper Sec. IV-B1, ref. \[48\]).
//!
//! The paper's reference point: a combined L∞+L2 approach at 4-bit fixed
//! point achieves 96.00 % on Omniglot 5-way 1-shot, vs 99.06 % for a
//! 32-bit floating-point cosine MANN. This binary regenerates the
//! comparison on the synthetic few-shot domain: FP32 cosine baseline,
//! plain fixed-point searches, and the BRGC cube-growth (L∞) search with
//! L2 tie-break, swept over precision.

use enw_bench::{banner, emit};
use enw_core::mann::embedding::{EmbeddingConfig, EmbeddingNet};
use enw_core::mann::fewshot::{evaluate, SearchMethod};
use enw_core::mann::memory::Similarity;
use enw_core::nn::fewshot::{EpisodeSampler, FewShotDomain};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const EPISODES: usize = 60;
const HOLDOUT_FROM: usize = 30;

fn main() {
    banner("E7");
    let mut rng = Rng64::new(77);
    // Harder-than-default intra-class jitter so the precision/encoding
    // trade-offs are visible (the default domain saturates every method).
    let domain = FewShotDomain::generate_with(60, 64, 5, 0.3, 2.0, 0.12, &mut rng);
    let cfg = EmbeddingConfig {
        hidden: vec![96],
        embed_dim: 24,
        background_classes: HOLDOUT_FROM,
        samples_per_class: 40,
        epochs: 10,
        learning_rate: 0.05,
    };
    let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);
    let sampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 5 };

    let mut eval = |method, seed: u64| {
        evaluate(&mut net, &domain, sampler, HOLDOUT_FROM, method, EPISODES, &mut Rng64::new(seed))
    };

    let cosine = eval(SearchMethod::Exact(Similarity::Cosine), 1000);
    let mut table = Table::new(&["search method", "precision", "accuracy", "searches/query"]);
    table.row_owned(vec![
        "cosine (GPU baseline)".into(),
        "FP32".into(),
        percent(cosine.accuracy),
        format!("{:.1}", cosine.searches_per_query),
    ]);
    for &(metric, name) in
        &[(Similarity::NegL2, "L2 nearest"), (Similarity::NegLinf, "Linf nearest")]
    {
        let out = eval(SearchMethod::Quantized { bits: 4, metric }, 1000);
        table.row_owned(vec![
            name.into(),
            "4-bit fixed point".into(),
            percent(out.accuracy),
            format!("{:.1}", out.searches_per_query),
        ]);
    }
    for &bits in &[2u32, 3, 4, 6] {
        let out = eval(SearchMethod::RangeEncoded { bits }, 1000);
        table.row_owned(vec![
            "combined Linf+L2 (TCAM cubes)".into(),
            format!("{bits}-bit fixed point"),
            percent(out.accuracy),
            format!("{:.1}", out.searches_per_query),
        ]);
    }
    emit(&table);
    println!(
        "paper reference: 96.00% (combined Linf+L2, 4-bit) vs 99.06% (FP32 cosine) on Omniglot"
    );
    println!("Reading: the 4-bit combined search lands a few points under the FP32 cosine");
    println!("baseline while needing only a handful of parallel TCAM lookups per query —");
    println!("the paper's trade-off, reproduced on the synthetic domain.");
}
