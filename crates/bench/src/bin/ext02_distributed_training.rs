//! EXT-2 (extension beyond the paper's tables) — the distributed-training
//! balance of paper Sec. V-B: "efficient training requires carefully
//! balancing compute, memory, and network communication", with models
//! "re-trained on hourly and daily intervals".
//!
//! Sweeps worker count and network bandwidth for the compute-bound and
//! memory-bound model configurations, reporting the per-step phase
//! breakdown, the bottleneck resource, and whether a production-scale
//! refresh fits an hourly retraining window.

use enw_bench::emit;
use enw_core::recsys::model::RecModelConfig;
use enw_core::recsys::training::{retraining_time, step_breakdown, Cluster};
use enw_core::report::Table;

const BATCH: u64 = 8192;
/// Samples per refresh: a production-like stream slice.
const SAMPLES_PER_REFRESH: u64 = 2_000_000_000;

fn main() {
    println!("== EXT-2 [extension of Sec. V-B: distributed training balance] ==");
    println!("claim: training flips between compute-, memory- and network-bound; refresh");
    println!("windows constrain cluster sizing\n");

    for (name, cfg) in [
        ("RM-compute (MLP-heavy)", RecModelConfig::compute_bound()),
        ("RM-memory (embedding-heavy)", RecModelConfig::memory_bound()),
    ] {
        let mut table = Table::new(&[
            "workers",
            "net BW (Gb/s)",
            "compute ms/step",
            "memory ms/step",
            "network ms/step",
            "bottleneck",
            "2B-sample refresh (h)",
            "fits hourly window",
        ]);
        for &workers in &[8usize, 32, 128] {
            for &gbps in &[25.0f64, 100.0] {
                let mut cluster = Cluster::cpu_cluster(workers);
                cluster.net_bw_per_worker = gbps * 1e9 / 8.0;
                let b = step_breakdown(&cfg, BATCH, &cluster);
                let refresh_h =
                    retraining_time(&cfg, SAMPLES_PER_REFRESH, BATCH, &cluster) / 3600.0;
                table.row_owned(vec![
                    format!("{workers}"),
                    format!("{gbps:.0}"),
                    format!("{:.3}", b.compute_s * 1e3),
                    format!("{:.3}", b.memory_s * 1e3),
                    format!("{:.3}", b.network_s * 1e3),
                    b.bottleneck().to_string(),
                    format!("{refresh_h:.2}"),
                    if refresh_h <= 1.0 { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
        println!("-- {name} (global batch {BATCH}) --");
        emit(&table);
    }
    println!("Reading: the embedding-heavy model is memory/network-bound and needs either more");
    println!("workers or faster fabric to fit hourly refreshes; the MLP-heavy model scales with");
    println!("compute — no single accelerator design serves both, the paper's closing point.");
}
