//! E13 — Reduced-precision embedding-table compression (paper Sec. V-B,
//! ref. \[65\]: "compress embedding tables by up to 16×"), with the quality
//! cost measured end-to-end as CTR drift through the same MLP stacks.

use enw_bench::{banner, emit};
use enw_core::numerics::rng::Rng64;
use enw_core::numerics::stats::OnlineStats;
use enw_core::recsys::model::{Interaction, RecModel, RecModelConfig};
use enw_core::recsys::quantize::QuantizedTable;
use enw_core::recsys::trace::TraceGenerator;
use enw_core::report::Table;

fn main() {
    banner("E13");
    let cfg = RecModelConfig {
        dense_features: 32,
        bottom_mlp: vec![64, 32],
        tables: vec![(20_000, 8); 8],
        embedding_dim: 32,
        top_mlp: vec![64],
        interaction: Interaction::Concat,
    };
    let mut rng = Rng64::new(13);
    let mut model = RecModel::new(&cfg, &mut rng);
    let gen = TraceGenerator::new(&cfg, 1.0);
    let queries = gen.batch(300, &mut rng);
    let fp32_bytes: u64 = model.tables().iter().map(|t| t.bytes()).sum();

    let mut table = Table::new(&[
        "precision",
        "table storage (MB)",
        "compression",
        "row RMSE (rel.)",
        "mean |dCTR|",
        "max |dCTR|",
    ]);
    table.row_owned(vec![
        "FP32".into(),
        format!("{:.1}", fp32_bytes as f64 / 1e6),
        "1.0x".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    for &bits in &[8u32, 4, 2] {
        let quantized: Vec<QuantizedTable> =
            model.tables().iter().map(|t| QuantizedTable::from_table(t, bits)).collect();
        let bytes: u64 = quantized.iter().map(|q| q.bytes()).sum();
        let rmse: f64 =
            quantized.iter().zip(model.tables()).map(|(q, t)| q.relative_rmse(t)).sum::<f64>()
                / quantized.len() as f64;
        // End-to-end CTR drift: same MLPs, quantized gathers.
        let originals: Vec<_> = model.tables().to_vec();
        let mut drift = OnlineStats::new();
        for q in &queries {
            let ctr_fp: f32 = {
                let pooled: Vec<Vec<f32>> =
                    originals.iter().zip(&q.sparse).map(|(t, idx)| t.lookup_pool(idx)).collect();
                model.predict_with_pooled(&q.dense, &pooled)
            };
            let ctr_q: f32 = {
                let pooled: Vec<Vec<f32>> =
                    quantized.iter().zip(&q.sparse).map(|(t, idx)| t.lookup_pool(idx)).collect();
                model.predict_with_pooled(&q.dense, &pooled)
            };
            drift.push((ctr_fp - ctr_q).abs() as f64);
        }
        table.row_owned(vec![
            format!("int{bits}"),
            format!("{:.1}", bytes as f64 / 1e6),
            format!("{:.1}x", fp32_bytes as f64 / bytes as f64),
            format!("{rmse:.4}"),
            format!("{:.4}", drift.mean()),
            format!("{:.4}", drift.max()),
        ]);
    }
    emit(&table);
    println!("Reading: int8 is essentially free; int4 costs little; int2 approaches the paper's");
    println!("16x compression with visible but bounded CTR drift. Even compressed, the tables");
    println!("remain far beyond on-chip storage — the paper's capacity point stands.");
}
