//! E10 — 2-FeFET TCAM cells vs 16T CMOS (paper Sec. IV-C, ref. \[9\]):
//! "replacing 16T CMOS TCAMs with 2 FeFET TCAMs can further reduce the
//! latency and energy for memory search operations in MANNs by 1.1X and
//! 2.4X respectively", with the density headroom enabling larger MANN
//! memories.

use enw_bench::{banner, emit};
use enw_core::cam::array::{TcamArray, TcamConfig};
use enw_core::cam::cells;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::rng::Rng64;
use enw_core::report::{energy, latency, Table};

fn main() {
    banner("E10");
    let mut rng = Rng64::new(10);

    let mut table = Table::new(&[
        "cell",
        "transistors",
        "search energy (512x64)",
        "search latency",
        "cell area (um^2)",
        "64-bit words per mm^2",
        "endurance (cycles)",
    ]);
    for tech in [cells::cmos_16t(), cells::fefet_2t()] {
        let mut cam = TcamArray::new(64, tech, TcamConfig::default());
        for _ in 0..512 {
            let w: BitVec = (0..64).map(|_| rng.bernoulli(0.5)).collect();
            cam.write(w);
        }
        let q: BitVec = (0..64).map(|_| rng.bernoulli(0.5)).collect();
        let (_, cost) = cam.search_nearest(&q);
        table.row_owned(vec![
            tech.name.to_string(),
            format!("{}", tech.transistors),
            energy(cost.energy_pj),
            latency(cost.latency_ns),
            format!("{:.2}", tech.cell_area_um2),
            format!("{}", tech.words_per_area(64, 1.0)),
            tech.endurance.map_or("unlimited".to_string(), |e| format!("{e:.0e}")),
        ]);
    }
    emit(&table);

    let c = cells::cmos_16t();
    let f = cells::fefet_2t();
    println!(
        "FeFET vs CMOS: {:.1}x search energy, {:.2}x search latency, {:.1}x density",
        c.search_bit_pj / f.search_bit_pj,
        c.search_ns / f.search_ns,
        c.cell_area_um2 / f.cell_area_um2,
    );
    println!("paper reference: 2.4x energy, 1.1x latency; compactness 'could also enable larger");
    println!("MANN memories'. The endurance column records the open FeFET reliability question.");
}
