//! E3 — RRAM potentiation/depression cycling (paper Fig. 2, Sec. II-B2).
//!
//! Reproduces the figure's measurement protocol on the behavioural RRAM
//! model: three cycles of 1000 potentiation pulses followed by 1000
//! depression pulses, reading the device state (the read-current proxy)
//! along the way. The series shows the saturating nonlinearity, the
//! up/down asymmetry and the cycle-to-cycle stochasticity the paper
//! discusses.

use enw_bench::{banner, emit};
use enw_core::crossbar::device::PulseDir;
use enw_core::crossbar::devices;
use enw_core::numerics::rng::Rng64;
use enw_core::numerics::stats::OnlineStats;
use enw_core::report::Table;

fn main() {
    banner("E3");
    let mut rng = Rng64::new(3);
    let dev = devices::rram().materialize(&mut rng);
    println!(
        "device: dw_up {:.4}, dw_down {:.4}, asymmetry {:.2}, symmetry point {:.3}\n",
        dev.dw_up,
        dev.dw_down,
        dev.asymmetry(),
        dev.symmetry_point()
    );

    let mut w = -1.0f32;
    let mut table = Table::new(&["cycle", "phase", "pulse #", "state (norm. read current)"]);
    let mut cycle_peaks = Vec::new();
    for cycle in 1..=3 {
        for (phase, dir) in [("potentiation", PulseDir::Up), ("depression", PulseDir::Down)] {
            for p in 1..=1000 {
                w = dev.pulse(w, dir, &mut rng);
                if p % 200 == 0 {
                    table.row_owned(vec![
                        format!("{cycle}"),
                        phase.to_string(),
                        format!("{p}"),
                        format!("{w:+.4}"),
                    ]);
                }
            }
            if dir == PulseDir::Up {
                cycle_peaks.push(w);
            }
        }
    }
    emit(&table);

    let peaks: OnlineStats = cycle_peaks.iter().map(|&p| p as f64).collect();
    println!(
        "peak state after each potentiation ramp: mean {:.3}, spread {:.4} (cycle-to-cycle noise)",
        peaks.mean(),
        peaks.max() - peaks.min()
    );
    println!("Reading: the ramps saturate (soft bounds), depression is weaker than potentiation");
    println!("(asymmetry), and repeated cycles do not retrace exactly (stochastic switching) —");
    println!("the three signatures of paper Fig. 2.");
}
