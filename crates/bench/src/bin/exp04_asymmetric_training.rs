//! E4 — Training on asymmetric devices: plain SGD vs zero-shifting vs the
//! coupled-dynamics algorithm (paper Sec. II-B5, refs. \[30\]\[35\]).
//!
//! Four training configurations on the same task and the same RRAM-like
//! asymmetric device population:
//!
//! 1. ideal symmetric devices + plain SGD (the reference),
//! 2. asymmetric devices + plain SGD (degrades: asymmetry biases gradient
//!    accumulation),
//! 3. asymmetric devices + zero-shifting only (partial recovery),
//! 4. asymmetric devices + zero-shifting + Tiki-Taka (matches the
//!    reference — the paper's "indistinguishable from ... perfectly
//!    symmetric, ideal devices" claim).

use enw_bench::{banner, emit};
use enw_core::crossbar::devices;
use enw_core::crossbar::tiki_taka::TikiTakaConfig;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::crossbar::train::{analog_mlp, tiki_taka_mlp, train_and_evaluate};
use enw_core::nn::activation::Activation;
use enw_core::nn::data::{Split, SyntheticImages};
use enw_core::nn::layer::DenseLayer;
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const DIMS: [usize; 3] = [64, 32, 10];

fn task() -> Split {
    SyntheticImages::builder()
        .classes(10)
        .dim(64)
        .train_per_class(50)
        .test_per_class(25)
        .noise(1.3)
        .build(&mut Rng64::new(7))
}

fn cfg() -> SgdConfig {
    SgdConfig { epochs: 5, learning_rate: 0.05 }
}

/// Builds an analog MLP whose tiles are zero-shift calibrated before
/// programming (configuration 3).
fn zero_shifted_mlp(rng: &mut Rng64) -> Mlp<AnalogTile> {
    let spec = devices::rram();
    let layers = DIMS
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let mut tile = AnalogTile::new(w[1], w[0], &spec, TileConfig::ideal(), rng);
            tile.calibrate_zero_shift(800);
            let limit = (6.0 / (w[0] + w[1]) as f64).sqrt();
            let mut init = Matrix::random_uniform(w[1], w[0] + 1, -limit, limit, rng);
            for r in 0..w[1] {
                init.set(r, w[0], 0.0);
            }
            tile.program_effective(&init);
            let act = if i + 2 == DIMS.len() { Activation::Identity } else { Activation::Tanh };
            DenseLayer::new(tile, act)
        })
        .collect();
    Mlp::from_layers(layers)
}

fn main() {
    banner("E4");
    let split = task();
    let mut table = Table::new(&["configuration", "devices", "test accuracy"]);

    let mut rng = Rng64::new(21);
    let mut ideal =
        analog_mlp(&DIMS, &devices::ideal(1000), TileConfig::ideal(), Activation::Tanh, &mut rng);
    let acc_ideal = train_and_evaluate(&mut ideal, &split, &cfg(), &mut rng).test_accuracy;
    table.row_owned(vec!["plain SGD".into(), "ideal symmetric".into(), percent(acc_ideal)]);

    let mut rng = Rng64::new(22);
    let mut plain =
        analog_mlp(&DIMS, &devices::rram(), TileConfig::ideal(), Activation::Tanh, &mut rng);
    let acc_plain = train_and_evaluate(&mut plain, &split, &cfg(), &mut rng).test_accuracy;
    table.row_owned(vec!["plain SGD".into(), "RRAM (asymmetric)".into(), percent(acc_plain)]);

    let mut rng = Rng64::new(23);
    let mut zs = zero_shifted_mlp(&mut rng);
    let acc_zs = train_and_evaluate(&mut zs, &split, &cfg(), &mut rng).test_accuracy;
    table.row_owned(vec![
        "SGD + zero-shifting".into(),
        "RRAM (asymmetric)".into(),
        percent(acc_zs),
    ]);

    let mut rng = Rng64::new(24);
    let mut tt = tiki_taka_mlp(
        &DIMS,
        &devices::rram(),
        TileConfig::ideal(),
        TikiTakaConfig::default(),
        Activation::Tanh,
        &mut rng,
    );
    let acc_tt = train_and_evaluate(&mut tt, &split, &cfg(), &mut rng).test_accuracy;
    table.row_owned(vec![
        "zero-shift + Tiki-Taka".into(),
        "RRAM (asymmetric)".into(),
        percent(acc_tt),
    ]);

    emit(&table);
    println!(
        "gap to ideal: plain {:+.1} pts, zero-shift {:+.1} pts, Tiki-Taka {:+.1} pts",
        100.0 * (acc_plain - acc_ideal),
        100.0 * (acc_zs - acc_ideal),
        100.0 * (acc_tt - acc_ideal)
    );
    println!("Reading: aggressive bidirectional asymmetry is compensated by the coupled-dynamics");
    println!("algorithm, recovering (near-)ideal-device accuracy at minimal implementation cost.");
}
