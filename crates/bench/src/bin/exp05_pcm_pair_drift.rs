//! E5 — PCM differential pairs: signed-weight tracking under
//! unidirectional updates, periodic reset, and resistance drift with and
//! without the projection liner (paper Sec. II-B1, refs. \[18\]\[26\]\[27\]).

use enw_bench::{banner, emit};
use enw_core::crossbar::devices::pcm::{PcmConfig, PcmPair};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

fn main() {
    banner("E5");
    let mut rng = Rng64::new(5);

    // Part 1: track a slowly varying signed target with SET-only pulses.
    let mut pair = PcmPair::new(PcmConfig::bare());
    let mut table = Table::new(&["step", "target weight", "pair weight", "G+", "G-", "refreshes"]);
    let mut worst = 0.0f32;
    for step in 1..=400 {
        // The periodic simultaneous reset of [18]: every 25 updates both
        // members are melt-quenched and only the difference reprogrammed,
        // keeping each conductance in its high-gain (unsaturated) region.
        if step % 25 == 0 {
            pair.refresh(0.0);
        }
        let target = 0.6 * (step as f32 / 60.0).sin();
        // Closed-loop update: program toward the target from the *read*
        // weight, so saturation-shrunk steps are re-tried next update.
        pair.update(target - pair.weight(0.0), &mut rng);
        worst = worst.max((pair.weight(0.0) - target).abs());
        if step % 80 == 0 {
            let (gp, gm) = pair.conductances();
            table.row_owned(vec![
                format!("{step}"),
                format!("{target:+.3}"),
                format!("{:+.3}", pair.weight(0.0)),
                format!("{gp:.3}"),
                format!("{gm:.3}"),
                format!("{}", pair.refresh_count()),
            ]);
        }
    }
    println!("-- signed-weight tracking with unidirectional devices --");
    emit(&table);
    println!("worst tracking error over 400 signed updates: {worst:.3} (weight range ±1)\n");

    // Part 2: drift with and without the projection liner.
    let mut drift =
        Table::new(&["read time (a.u.)", "bare PCM retention", "projected PCM retention"]);
    let mut bare = PcmPair::new(PcmConfig { write_noise: 0.0, ..PcmConfig::bare() });
    let mut lined = PcmPair::new(PcmConfig { write_noise: 0.0, ..PcmConfig::projected() });
    bare.update(0.4, &mut rng);
    lined.update(0.4, &mut rng);
    let w0_bare = bare.weight(0.0);
    let w0_lined = lined.weight(0.0);
    for &t in &[1.0f64, 1e2, 1e4, 1e6, 1e8] {
        drift.row_owned(vec![
            format!("{t:.0e}"),
            percent((bare.weight(t) / w0_bare) as f64),
            percent((lined.weight(t) / w0_lined) as f64),
        ]);
    }
    println!("-- resistance drift: metallic projection liner vs bare cell --");
    emit(&drift);
    println!("Reading: the pair tracks signed weights despite SET-only switching (periodic reset");
    println!("preserving the difference), and the projection liner suppresses the conductance");
    println!("drift by about an order of magnitude in exponent, as in refs. [26][27].");
}
