//! EXT-4 (extension beyond the paper's tables) — the reduced-precision
//! inference paragraph of Sec. II: statistical weight scaling, calibrated
//! activation clipping, and the claim (ref. \[13\]) that "2-bit integer
//! weights and activations" can approach full-precision accuracy given
//! the right training.
//!
//! Sweeps precision for naive post-training quantization vs
//! quantization-aware fine-tuning (straight-through estimator).

use enw_bench::emit;
use enw_core::nn::activation::Activation;
use enw_core::nn::data::SyntheticImages;
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::nn::quantized::{quantization_aware_finetune, InferenceQuant, QuantizedMlp};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

fn main() {
    println!("== EXT-4 [extension of Sec. II: reduced-precision inference] ==");
    println!("claim: statistical scaling + calibrated clipping keep int8/int4 near FP32;");
    println!("2-bit needs quantization-aware training (ref. [13])\n");
    let mut rng = Rng64::new(44);
    let split = SyntheticImages::builder()
        .classes(8)
        .dim(64)
        .train_per_class(60)
        .test_per_class(30)
        .noise(1.0)
        .build(&mut rng);
    let mut mlp = Mlp::digital(&[64, 32, 8], Activation::Tanh, &mut rng);
    mlp.train_sgd(&split.train, &SgdConfig { epochs: 8, learning_rate: 0.05 }, &mut rng);
    let fp = mlp.evaluate(&split.test);
    println!("FP32 baseline: {}\n", percent(fp));

    let mut table =
        Table::new(&["precision (w/a)", "post-training", "after QAT fine-tune", "vs FP32 (QAT)"]);
    for &bits in &[8u32, 4, 2] {
        // Low-bit grids want the clip near the weight bulk, not the tail.
        let wp = if bits <= 2 { 0.75 } else { 0.999 };
        let cfg = InferenceQuant {
            weight_bits: bits,
            activation_bits: bits,
            weight_percentile: wp,
            ..Default::default()
        };
        let naive = QuantizedMlp::from_mlp(&mut mlp, &cfg, &split.train).evaluate(&split.test);
        // Fine-tune a copy so each row starts from the same FP32 network.
        let mut tuned = mlp.clone();
        quantization_aware_finetune(&mut tuned, &cfg, &split.train, 10, 0.03, &mut Rng64::new(45));
        let qat = QuantizedMlp::from_mlp(&mut tuned, &cfg, &split.train).evaluate(&split.test);
        table.row_owned(vec![
            format!("int{bits}/int{bits}"),
            percent(naive),
            percent(qat),
            format!("{:+.1} pts", 100.0 * (qat - fp)),
        ]);
    }
    emit(&table);
    println!("Reading: int8 is free and int4 nearly so with pure post-training calibration;");
    println!("at 2 bits the straight-through fine-tune recovers most of the collapse — the");
    println!("'proper algorithmic advances' Sec. II says reduced precision depends on.");
}
