//! EXT-1 (extension beyond the paper's tables) — end-to-end analog
//! *inference* deployment on PCM, combining three Sec. II ingredients:
//! write-verify programming of a software-trained network, resistance
//! drift over deployment time, the projection liner \[26\]\[27\], and the
//! algorithmic drift compensation of \[28\].
//!
//! Not a table of the paper itself (the paper cites these results), but a
//! direct consequence of its Sec. II discussion; recorded in
//! EXPERIMENTS.md under "extensions".

use enw_bench::emit;
use enw_core::crossbar::devices::pcm::PcmConfig;
use enw_core::crossbar::inference::PcmLayer;
use enw_core::nn::activation::Activation;
use enw_core::nn::backend::LinearBackend;
use enw_core::nn::data::{Split, SyntheticImages};
use enw_core::nn::mlp::{Mlp, SgdConfig};
use enw_core::numerics::rng::Rng64;
use enw_core::numerics::vector::argmax;
use enw_core::report::{percent, Table};

/// A two-layer network deployed on PCM.
struct DeployedNet {
    l1: PcmLayer,
    l2: PcmLayer,
}

impl DeployedNet {
    fn classify(&self, x: &[f32], now: f64) -> usize {
        let mut xa = x.to_vec();
        xa.push(1.0);
        let mut h = self.l1.matvec(&xa, now);
        for v in &mut h {
            *v = v.tanh();
        }
        h.push(1.0);
        argmax(&self.l2.matvec(&h, now))
    }

    fn accuracy(&self, split: &Split, now: f64) -> f64 {
        let test = &split.test;
        let correct =
            (0..test.len()).filter(|&i| self.classify(test.input(i), now) == test.label(i)).count();
        correct as f64 / test.len() as f64
    }

    fn compensate(&mut self, now: f64) {
        self.l1.compensate_drift(now);
        self.l2.compensate_drift(now);
    }

    fn reset(&mut self) {
        self.l1.reset_compensation();
        self.l2.reset_compensation();
    }
}

fn main() {
    println!("== EXT-1 [extension of Sec. II-B1: PCM inference deployment] ==");
    println!("claim: drift degrades deployed accuracy; liner and compensation recover it\n");
    let mut rng = Rng64::new(51);
    let split = SyntheticImages::builder()
        .classes(10)
        .dim(64)
        .train_per_class(60)
        .test_per_class(60)
        .noise(1.3)
        .build(&mut rng);
    // Train in software.
    let mut mlp = Mlp::digital(&[64, 24, 10], Activation::Tanh, &mut rng);
    mlp.train_sgd(&split.train, &SgdConfig { epochs: 8, learning_rate: 0.05 }, &mut rng);
    let sw_acc = mlp.evaluate(&split.test);
    println!("software (FP32) test accuracy: {}\n", percent(sw_acc));

    let mut table = Table::new(&[
        "deployment",
        "t = 0",
        "t = 1e4",
        "t = 1e6",
        "t = 1e8",
        "t = 1e8 + compensation",
    ]);
    for (name, cfg) in [("bare PCM", PcmConfig::bare()), ("projected PCM", PcmConfig::projected())]
    {
        let w1 = mlp.layers()[0].backend().weights();
        let w2 = mlp.layers()[1].backend().weights();
        let mut net = DeployedNet {
            l1: PcmLayer::program(&w1, cfg, &mut rng),
            l2: PcmLayer::program(&w2, cfg, &mut rng),
        };
        let a0 = net.accuracy(&split, 0.0);
        let a4 = net.accuracy(&split, 1e4);
        let a6 = net.accuracy(&split, 1e6);
        let a8 = net.accuracy(&split, 1e8);
        net.compensate(1e8);
        let a8c = net.accuracy(&split, 1e8);
        net.reset();
        table.row_owned(vec![
            name.to_string(),
            percent(a0),
            percent(a4),
            percent(a6),
            percent(a8),
            percent(a8c),
        ]);
    }
    emit(&table);
    println!("Reading: per-device drift dispersion walks the deployed network away from its");
    println!("programmed operating point; the projection liner (nu ~10x lower) holds accuracy");
    println!("flat across the whole deployment window, while the scalar correction of ref. [28]");
    println!("recovers the mean-scale component of the loss (the nu dispersion it cannot see");
    println!("remains — which is why the paper presents the liner as the stronger fix).");
}
