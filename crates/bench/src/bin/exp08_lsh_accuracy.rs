//! E8 — Cosine-GPU vs LSH-TCAM classification accuracy across N-way
//! K-shot settings (paper Fig. 5 inset, Sec. IV-B2).
//!
//! Also sweeps the LSH plane count: "the number of LSH hashing planes is a
//! hyper-parameter and is tuned until further increase does not further
//! improve accuracy".

use enw_bench::{banner, emit};
use enw_core::mann::embedding::{EmbeddingConfig, EmbeddingNet};
use enw_core::mann::fewshot::{evaluate, SearchMethod};
use enw_core::mann::memory::Similarity;
use enw_core::nn::fewshot::{EpisodeSampler, FewShotDomain};
use enw_core::numerics::rng::Rng64;
use enw_core::report::{percent, Table};

const EPISODES: usize = 50;
const HOLDOUT_FROM: usize = 30;
const PLANES: usize = 256;

fn main() {
    banner("E8");
    let mut rng = Rng64::new(88);
    // Harder-than-default intra-class jitter so the precision/encoding
    // trade-offs are visible (the default domain saturates every method).
    let domain = FewShotDomain::generate_with(60, 64, 5, 0.3, 2.0, 0.12, &mut rng);
    let cfg = EmbeddingConfig {
        hidden: vec![96],
        embed_dim: 24,
        background_classes: HOLDOUT_FROM,
        samples_per_class: 40,
        epochs: 10,
        learning_rate: 0.05,
    };
    let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);

    // Plane-count sweep at the paper's 5-way 1-shot setting.
    let sweep_sampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 5 };
    let mut sweep = Table::new(&["LSH planes", "accuracy"]);
    for &planes in &[8usize, 16, 32, 64, 128, 256, 512] {
        let out = evaluate(
            &mut net,
            &domain,
            sweep_sampler,
            HOLDOUT_FROM,
            SearchMethod::Lsh { planes },
            EPISODES,
            &mut Rng64::new(500),
        );
        sweep.row_owned(vec![format!("{planes}"), percent(out.accuracy)]);
    }
    println!("-- LSH plane-count sweep (5-way 1-shot) --");
    emit(&sweep);

    // The Fig. 5 inset grid: cosine vs LSH across task difficulty.
    let mut grid = Table::new(&["task", "cosine (FP32 GPU)", "LSH + Hamming (TCAM)", "gap"]);
    for &(n_way, k_shot) in &[(5usize, 1usize), (5, 5), (10, 1), (10, 5), (20, 1), (20, 5)] {
        let sampler = EpisodeSampler { n_way, k_shot, n_query: 3 };
        let cos = evaluate(
            &mut net,
            &domain,
            sampler,
            HOLDOUT_FROM,
            SearchMethod::Exact(Similarity::Cosine),
            EPISODES,
            &mut Rng64::new(600 + n_way as u64),
        );
        let lsh = evaluate(
            &mut net,
            &domain,
            sampler,
            HOLDOUT_FROM,
            SearchMethod::Lsh { planes: PLANES },
            EPISODES,
            &mut Rng64::new(600 + n_way as u64),
        );
        grid.row_owned(vec![
            format!("{n_way}-way {k_shot}-shot"),
            percent(cos.accuracy),
            percent(lsh.accuracy),
            format!("{:+.1} pts", 100.0 * (lsh.accuracy - cos.accuracy)),
        ]);
    }
    println!("-- cosine vs LSH across N-way K-shot settings (Fig. 5 inset) --");
    emit(&grid);
    println!("Reading: LSH accuracy saturates with plane count and approaches (sometimes");
    println!("matches) the cosine baseline; harder tasks (more ways, fewer shots) show the");
    println!("larger gaps — the paper's iso-accuracy caveat.");
}
