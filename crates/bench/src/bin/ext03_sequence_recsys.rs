//! EXT-3 (extension beyond the paper's tables) — sequence-aware
//! recommendation and SLA-bounded serving (paper Sec. V-B: "emerging
//! recommendation models rely on explicitly modeling sequences of user
//! interactions and interests with RNNs and attention", and inference
//! runs under strict latency targets).
//!
//! Part 1 quantifies what DIN-style attention adds per candidate as the
//! interaction history grows. Part 2 maps the throughput/latency frontier
//! of the paper's two model regimes under SLAs.

use enw_bench::emit;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::characterize::RooflineMachine;
use enw_core::recsys::model::RecModelConfig;
use enw_core::recsys::sequence::{InterestModel, InterestModelConfig};
use enw_core::recsys::serving;
use enw_core::report::Table;

fn main() {
    println!("== EXT-3 [extension of Sec. V-B: attention models + SLA serving] ==");
    println!("claim: sequence attention adds per-candidate cost linear in history; SLAs cap");
    println!("the batching that memory-bound models barely benefit from anyway\n");

    let mut rng = Rng64::new(33);
    let cfg = InterestModelConfig::default();
    let mut model = InterestModel::new(&cfg, &mut rng);

    // Behaviour: attention reacts to the history.
    let dense = vec![0.2f32; cfg.dense_features];
    let relevant: Vec<usize> = vec![42, 42, 43, 44];
    let irrelevant: Vec<usize> = vec![9000, 9100, 9200, 9300];
    let ctr_rel = model.predict(&relevant, 42, &dense);
    let ctr_irr = model.predict(&irrelevant, 42, &dense);
    println!(
        "candidate 42: CTR {ctr_rel:.3} with related history vs {ctr_irr:.3} with unrelated history\n"
    );

    let mut prof = Table::new(&["history length", "KFLOPs/prediction", "KB moved/prediction"]);
    for &h in &[1usize, 10, 50, 200, 1000] {
        let p = model.prediction_profile(h);
        prof.row_owned(vec![
            format!("{h}"),
            format!("{:.2}", p.flops as f64 / 1e3),
            format!("{:.2}", p.bytes as f64 / 1e3),
        ]);
    }
    println!("-- attention cost vs interaction-history length --");
    emit(&prof);

    // Part 2: SLA-bounded serving.
    let machine = RooflineMachine::server_cpu();
    let mut sla_table = Table::new(&[
        "model",
        "SLA",
        "max batch",
        "throughput (QPS)",
        "batch-1 QPS",
        "batching gain",
    ]);
    for (name, cfg) in [
        ("RM-compute", RecModelConfig::compute_bound()),
        ("RM-memory", RecModelConfig::memory_bound()),
    ] {
        for &sla_ms in &[1.0f64, 10.0, 100.0] {
            let sla = sla_ms / 1e3;
            let row = match serving::try_max_batch_under_sla(&cfg, &machine, sla, 65_536).ok() {
                None => vec![
                    name.to_string(),
                    format!("{sla_ms} ms"),
                    "-".into(),
                    "unreachable".into(),
                    "-".into(),
                    "-".into(),
                ],
                Some(b) => {
                    let qps = serving::throughput(&cfg, b, &machine);
                    let qps1 = serving::throughput(&cfg, 1, &machine);
                    vec![
                        name.to_string(),
                        format!("{sla_ms} ms"),
                        format!("{b}"),
                        format!("{qps:.0}"),
                        format!("{qps1:.0}"),
                        format!("{:.1}x", qps / qps1),
                    ]
                }
            };
            sla_table.row_owned(row);
        }
    }
    println!("-- SLA-bounded serving frontier --");
    emit(&sla_table);
    println!("Reading: attention cost scales linearly with history (another memory-dominated");
    println!("operator once histories get long), and batching under an SLA buys the MLP-heavy");
    println!("model an order of magnitude more throughput than the embedding-heavy one —");
    println!("the flexibility-vs-specialization tension the paper closes on.");
}
