//! Prints the experiment registry: one binary name per line (pipe into a
//! shell loop to run everything), with `-v` for the full table.

use enw_core::report::Table;

fn main() {
    let verbose = std::env::args().any(|a| a == "-v" || a == "--verbose");
    if verbose {
        let mut t = Table::new(&["id", "paper anchor", "binary", "claim"]);
        for e in enw_core::experiments() {
            t.row(&[e.id, e.paper_anchor, e.binary, e.claim]);
        }
        println!("{}", t.render());
    } else {
        for e in enw_core::experiments() {
            println!("{}", e.binary);
        }
    }
}
