//! E18 — allocation accounting for the zero-allocation hot paths
//! (methodology companion to E15/E17).
//!
//! The memory-bound workloads (recsys Sec. V, X-MANN Sec. III) spend
//! their budget on bytes moved, so per-inference `Vec` churn is pure
//! overhead. This binary installs a counting `#[global_allocator]` and
//! measures, for each of the four workload lanes, heap allocations and
//! bytes per inference through the allocating convenience APIs (before)
//! versus the scratch-pooled `_into` APIs (after), once warm. It also
//! shows the serving event loop allocates nothing per request at steady
//! state: the marginal allocation cost of 8x more requests through a
//! station is ~zero.
//!
//! Emits `BENCH_alloc.json` in the working directory. Pass `--smoke` for
//! CI-sized iteration counts.

use enw_bench::alloc_audit::{self, CountingAlloc};
use enw_bench::{banner, emit};
use enw_core::crossbar::devices;
use enw_core::crossbar::tile::{AnalogTile, TileConfig};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::nn::backend::LinearBackend;
use enw_core::numerics::rng::Rng64;
use enw_core::parallel::scratch;
use enw_core::recsys::model::{Interaction, RecModel, RecModelConfig};
use enw_core::recsys::trace::TraceGenerator;
use enw_core::report::Table;
use enw_core::serve::backend::{Backend, ServiceModel};
use enw_core::serve::policy::{BatchPolicy, StationSpec};
use enw_core::serve::request::{Output, Payload, Request};
use enw_core::serve::scheduler::Server;
use enw_core::trace::{self, TraceMode};
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;
use std::hint::black_box;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SEED: u64 = 18;
const WARMUP: usize = 32;

/// Allocations, bytes, and wall nanoseconds per iteration of `f`, after
/// `WARMUP` unmeasured iterations have faulted pages in and warmed the
/// thread-local scratch pools.
fn measure(iters: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    for _ in 0..WARMUP {
        f();
    }
    let s0 = alloc_audit::snapshot();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let d = alloc_audit::snapshot().since(s0);
    (d.allocs as f64 / iters as f64, d.bytes as f64 / iters as f64, ns)
}

struct Lane {
    name: &'static str,
    before: (f64, f64, f64),
    after: (f64, f64, f64),
}

impl Lane {
    fn reduction_pct(&self) -> f64 {
        if self.before.0 <= 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.after.0 / self.before.0)
    }

    fn meets_target(&self) -> bool {
        self.reduction_pct() >= 90.0
    }
}

/// Analog crossbar inference: `AnalogTile::forward` (allocating) vs
/// `forward_into` writing a caller buffer.
fn lane_crossbar(iters: usize) -> Lane {
    let mut rng = Rng64::new(SEED);
    let (out_dim, in_dim) = (64, 64);
    let mut tile =
        AnalogTile::new(out_dim, in_dim, &devices::rram(), TileConfig::default(), &mut rng);
    let x: Vec<f32> = (0..in_dim).map(|_| rng.uniform_f32() - 0.5).collect();
    let before = measure(iters, || {
        black_box(tile.forward(&x));
    });
    let mut out = vec![0.0f32; out_dim];
    let after = measure(iters, || {
        tile.forward_into(&x, &mut out);
        black_box(out[0]);
    });
    Lane { name: "crossbar", before, after }
}

/// X-MANN content addressing + soft read: the allocating API pair vs the
/// `_into` pair over reused buffers.
fn lane_xmann(iters: usize) -> Lane {
    let (slots, dim) = (128, 32);
    let mut rng = Rng64::new(SEED);
    let rows: Vec<Vec<f32>> =
        (0..slots).map(|_| (0..dim).map(|_| rng.uniform_f32() - 0.5).collect()).collect();
    let mut xm = Xmann::new(slots, dim, XmannConfig::default(), XmannCostParams::default());
    xm.load_memory(&rows);
    let q: Vec<f32> = (0..dim).map(|_| rng.uniform_f32() - 0.5).collect();
    let before = measure(iters, || {
        let w = xm.content_address(&q, 1.0);
        let r = xm.soft_read(&w.value);
        black_box(r.value[0]);
    });
    let mut w = vec![0.0f32; slots];
    let mut r = vec![0.0f32; dim];
    let after = measure(iters, || {
        xm.content_address_into(&q, 1.0, &mut w);
        xm.soft_read_into(&w, &mut r);
        black_box(r[0]);
    });
    // The `_into` forms must be bit-identical to the allocating forms.
    let reference = xm.content_address(&q, 1.0).value;
    assert!(
        w.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
        "content_address_into diverged from content_address"
    );
    Lane { name: "xmann", before, after }
}

/// MANN/CAM few-shot memory path: differentiable-memory content
/// addressing + soft read, allocating vs `_into`.
fn lane_cam_mann(iters: usize) -> Lane {
    let (slots, dim) = (256, 32);
    let mut rng = Rng64::new(SEED);
    let mem = DifferentiableMemory::random(slots, dim, &mut rng);
    let q: Vec<f32> = (0..dim).map(|_| rng.uniform_f32() - 0.5).collect();
    let before = measure(iters, || {
        let w = mem.content_address(&q, Similarity::Cosine, 2.0);
        let r = mem.soft_read(&w);
        black_box(r[0]);
    });
    let mut w = vec![0.0f32; slots];
    let mut r = vec![0.0f32; dim];
    let after = measure(iters, || {
        mem.content_address_into(&q, Similarity::Cosine, 2.0, &mut w);
        mem.soft_read_into(&w, &mut r);
        black_box(r[0]);
    });
    let ref_w = mem.content_address(&q, Similarity::Cosine, 2.0);
    let ref_r = mem.soft_read(&ref_w);
    assert!(
        r.iter().zip(&ref_r).all(|(a, b)| a.to_bits() == b.to_bits()),
        "soft_read_into diverged from soft_read"
    );
    Lane { name: "cam_mann", before, after }
}

/// DLRM-style CTR inference: per-table `lookup_pool` + the pooled
/// predict entry (allocating composition) vs the fused scratch-based
/// `predict_query`.
fn lane_recsys(iters: usize) -> Lane {
    let mut rng = Rng64::new(SEED);
    let cfg = RecModelConfig {
        dense_features: 16,
        bottom_mlp: vec![32, 16],
        tables: vec![(1000, 4); 4],
        embedding_dim: 16,
        top_mlp: vec![32],
        interaction: Interaction::DotPairwise,
    };
    let mut model = RecModel::new(&cfg, &mut rng);
    let gen = TraceGenerator::new(&cfg, 1.0);
    let q = gen.query(&mut rng);
    let before = measure(iters, || {
        let pooled: Vec<Vec<f32>> =
            model.tables().iter().zip(&q.sparse).map(|(t, idx)| t.lookup_pool(idx)).collect();
        black_box(model.predict_with_pooled(&q.dense, &pooled));
    });
    let after = measure(iters, || {
        black_box(model.predict_query(&q));
    });
    let pooled: Vec<Vec<f32>> =
        model.tables().iter().zip(&q.sparse).map(|(t, idx)| t.lookup_pool(idx)).collect();
    let a = model.predict_with_pooled(&q.dense, &pooled);
    let b = model.predict_query(&q);
    assert!(a.to_bits() == b.to_bits(), "pooled and fused predictions diverged");
    Lane { name: "recsys", before, after }
}

/// Minimal constant-output lane, so the serve measurement isolates the
/// scheduler event loop (queue, batch close, pending hand-off) from
/// backend output allocation.
struct ConstLabel;

impl Backend for ConstLabel {
    fn name(&self) -> &str {
        "const_label"
    }
    fn service_ns(&self, batch: usize) -> u64 {
        ServiceModel { setup_ns: 200, per_item_ns: 50 }.ns(batch)
    }
    fn serve(&mut self, batch: &[Request]) -> Vec<Output> {
        let mut out = Vec::new();
        self.serve_into(batch, &mut out);
        out
    }
    fn serve_into(&mut self, batch: &[Request], out: &mut Vec<Output>) {
        out.clear();
        out.extend(batch.iter().map(|_| Output::Label(Some(1))));
    }
    fn make_payload(&self, _rng: &mut Rng64) -> Payload {
        Payload::Features(Vec::new())
    }
}

/// Total allocations of one owned-trace run with `n` requests (the trace
/// is built before the measurement starts).
fn serve_run_allocs(n: usize) -> u64 {
    let trace_reqs: Vec<Request> = (0..n)
        .map(|k| Request {
            id: k as u64,
            station: 0,
            payload: Payload::Features(Vec::new()),
            arrival_ns: 1_000 * k as u64,
            deadline_ns: u64::MAX,
        })
        .collect();
    let spec = StationSpec::simple(Box::new(ConstLabel), BatchPolicy::new(8, 500, 64));
    let server = Server::try_new(vec![spec]).expect("one valid station");
    let s0 = alloc_audit::snapshot();
    let report = server.try_run_owned(trace_reqs).expect("generated trace is valid");
    let d = alloc_audit::snapshot().since(s0);
    assert_eq!(report.responses.len(), n, "every request must resolve");
    d.allocs
}

struct ServeCheck {
    small_n: usize,
    large_n: usize,
    small_allocs: u64,
    large_allocs: u64,
}

impl ServeCheck {
    fn marginal_per_request(&self) -> f64 {
        self.large_allocs.saturating_sub(self.small_allocs) as f64
            / (self.large_n - self.small_n) as f64
    }

    fn zero_alloc(&self) -> bool {
        // Fewer than one allocation per hundred extra requests counts as
        // an allocation-free steady state (setup noise aside).
        self.marginal_per_request() < 0.01
    }
}

fn check_serve(smoke: bool) -> ServeCheck {
    let (small_n, large_n) = if smoke { (256, 2048) } else { (512, 4096) };
    // Warm-up run: faults in code paths and any lazily initialized state.
    let _ = serve_run_allocs(small_n);
    let small_allocs = serve_run_allocs(small_n);
    let large_allocs = serve_run_allocs(large_n);
    ServeCheck { small_n, large_n, small_allocs, large_allocs }
}

/// Std-only JSON rendering (no serde in the workspace).
fn to_json(lanes: &[Lane], serve: &ServeCheck, smoke: bool) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"alloc_audit\",\n  \"seed\": {SEED},\n  \"mode\": \"{}\",\n  \"lanes\": [\n",
        if smoke { "smoke" } else { "full" }
    );
    for (i, l) in lanes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"allocs_per_inference_before\": {:.3}, \"allocs_per_inference_after\": {:.3}, \"bytes_per_inference_before\": {:.1}, \"bytes_per_inference_after\": {:.1}, \"alloc_reduction_pct\": {:.1}, \"ns_per_inference_before\": {:.0}, \"ns_per_inference_after\": {:.0}, \"meets_90pct_target\": {}}}{}\n",
            l.name,
            l.before.0,
            l.after.0,
            l.before.1,
            l.after.1,
            l.reduction_pct(),
            l.before.2,
            l.after.2,
            l.meets_target(),
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    let stats = scratch::thread_stats();
    s.push_str(&format!(
        "  ],\n  \"serve\": {{\"requests_small\": {}, \"requests_large\": {}, \"allocs_small\": {}, \"allocs_large\": {}, \"allocs_marginal_per_request\": {:.4}, \"zero_alloc_steady_state\": {}}},\n",
        serve.small_n,
        serve.large_n,
        serve.small_allocs,
        serve.large_allocs,
        serve.marginal_per_request(),
        serve.zero_alloc()
    ));
    s.push_str(&format!(
        "  \"scratch\": {{\"checkouts\": {}, \"pool_hits\": {}, \"fresh_allocs\": {}}}\n}}\n",
        stats.checkouts, stats.pool_hits, stats.fresh_allocs
    ));
    s
}

fn main() {
    banner("E18");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 64 } else { 512 };
    // Feed the counting allocator into the trace layer so
    // ENW_TRACE=summary output carries the allocator line.
    let installed = trace::install_alloc_source(alloc_audit::counters);
    println!(
        "mode: {}; counting global allocator installed (trace alloc source: {}); {} measured",
        if smoke { "smoke" } else { "full" },
        if installed { "wired" } else { "already set" },
        format_args!("{iters} inferences per lane after {WARMUP} warm-up"),
    );
    println!();

    let lanes =
        vec![lane_crossbar(iters), lane_xmann(iters), lane_cam_mann(iters), lane_recsys(iters)];
    let serve = check_serve(smoke);

    let mut table = Table::new(&[
        "lane",
        "allocs/inf before",
        "allocs/inf after",
        "bytes/inf before",
        "bytes/inf after",
        "reduction",
        "ns/inf before",
        "ns/inf after",
    ]);
    for l in &lanes {
        table.row_owned(vec![
            l.name.to_string(),
            format!("{:.2}", l.before.0),
            format!("{:.2}", l.after.0),
            format!("{:.0}", l.before.1),
            format!("{:.0}", l.after.1),
            format!("{:.1}%", l.reduction_pct()),
            format!("{:.0}", l.before.2),
            format!("{:.0}", l.after.2),
        ]);
    }
    emit(&table);

    for l in &lanes {
        println!(
            "{}: {:.1}% fewer steady-state allocations per inference -> {}",
            l.name,
            l.reduction_pct(),
            if l.meets_target() { "PASS (>=90%)" } else { "BELOW TARGET" }
        );
    }
    println!(
        "serve: {} -> {} requests cost {} -> {} allocations ({:.4}/extra request) -> {}",
        serve.small_n,
        serve.large_n,
        serve.small_allocs,
        serve.large_allocs,
        serve.marginal_per_request(),
        if serve.zero_alloc() { "PASS (zero-alloc steady state)" } else { "BELOW TARGET" }
    );
    let stats = scratch::thread_stats();
    println!(
        "scratch pools: {} checkouts, {} pool hits, {} fresh allocations",
        stats.checkouts, stats.pool_hits, stats.fresh_allocs
    );

    let json = to_json(&lanes, &serve, smoke);
    let path = "BENCH_alloc.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    // Demonstrate the trace integration: a short burst under summary mode
    // renders the span table with the allocator totals appended.
    trace::set_mode(TraceMode::Summary);
    trace::reset();
    {
        let mut rng = Rng64::new(SEED);
        let mem = DifferentiableMemory::random(64, 16, &mut rng);
        let q: Vec<f32> = (0..16).map(|_| rng.uniform_f32() - 0.5).collect();
        let mut w = vec![0.0f32; 64];
        for _ in 0..8 {
            mem.content_address_into(&q, Similarity::Cosine, 2.0, &mut w);
        }
    }
    let report = trace::take_report();
    trace::set_mode(TraceMode::Off);
    println!();
    println!("ENW_TRACE=summary rendering with allocator totals:");
    print!("{}", report.summary_table());

    println!();
    println!("Reading: once the scratch pools are warm, every kernel lane serves inference");
    println!("from reused buffers — the allocating convenience wrappers cost exactly their");
    println!("output vectors, and the _into forms cost nothing. The serving loop's batch and");
    println!("output arenas make the marginal allocation price of a request zero, so tail");
    println!("latency cannot inherit allocator jitter. Outputs stay bit-identical to the");
    println!("allocating APIs (asserted above), preserving the determinism contract.");
}
