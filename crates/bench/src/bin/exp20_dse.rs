//! E20 — hardware/workload co-design search (Sec. VI): deterministic
//! design-space exploration over every tunable subsystem in the
//! workspace. Each lane (crossbar tile periphery, X-MANN bank geometry,
//! TCAM segmentation, recommendation-model shape, serving-lane batching)
//! exposes its config through the `Tunable` API; the engine sweeps an
//! exhaustive grid plus seeded hill-climbs, evaluating candidates in
//! parallel, and reports the Pareto front over modeled latency, energy
//! and quality-per-area — then picks one config per lane under a fleet
//! energy budget with `pick_configs`.
//!
//! Every number is a pure function of `(space, evaluator, seed)`:
//! randomness comes from per-restart `Rng64` streams and time from the
//! virtual clock, so the emitted JSON is byte-identical across reruns
//! and `ENW_THREADS`; the only wall-clock reading times the search.
//!
//! Emits `BENCH_dse.json` in the working directory so CI can track the
//! fronts over time. Pass `--smoke` for the CI-sized search; full runs
//! use more restarts and deeper climbs.

use enw_bench::{banner, emit};
use enw_core::report::Table;
use enw_core::tunable::Point;
use enw_dse::{explore, SearchConfig, SearchResult};
use enw_dse::{pick_configs, Candidate, Lane, Objectives, Pick};

/// Slack multiplier on the cheapest-possible selection when deriving the
/// demo energy budget (2x the floor leaves room for upgrades without
/// making every upgrade affordable).
const BUDGET_SLACK: f64 = 2.0;

struct LaneRun {
    lane: Lane,
    result: SearchResult,
    default_point: Point,
    default_objs: Objectives,
    default_dominated: bool,
}

/// Explores one lane and scores its hand-picked default against the
/// front.
fn run_lane(lane: Lane, cfg: &SearchConfig) -> LaneRun {
    let result = explore(&lane.space(), &|p| lane.evaluate(p), cfg);
    let default_point = lane.default_point();
    let default_objs =
        lane.evaluate(&default_point).expect("hand-picked default configs are feasible");
    let default_dominated = result.front.iter().any(|c| c.objectives.dominates(&default_objs));
    LaneRun { lane, result, default_point, default_objs, default_dominated }
}

fn objectives_json(o: &Objectives) -> String {
    format!(
        "\"latency_ns\": {:.6e}, \"energy_pj\": {:.6e}, \"quality_per_area\": {:.6e}",
        o.latency_ns, o.energy_pj, o.quality_per_area
    )
}

/// Std-only JSON rendering of the per-lane searches (no serde in the
/// workspace). Excludes wall-clock timings so the rendered bytes are a
/// pure function of the virtual-time search.
fn lanes_json(runs: &[LaneRun]) -> String {
    let mut s = String::from("  \"lanes\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"lane\": \"{}\",\n      \"evaluated\": {},\n      \"feasible\": {},\n      \"clock_ns\": {},\n      \"default\": {{\"key\": \"{}\", {}, \"dominated_by_front\": {}}},\n      \"front\": [\n",
            r.lane.name(),
            r.result.evaluated,
            r.result.feasible,
            r.result.clock_ns,
            r.default_point.key(),
            objectives_json(&r.default_objs),
            r.default_dominated
        ));
        for (j, c) in r.result.front.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"key\": \"{}\", {}, \"stamp_ns\": {}}}{}\n",
                c.point.key(),
                objectives_json(&c.objectives),
                c.stamp_ns,
                if j + 1 < r.result.front.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < runs.len() { "," } else { "" }));
    }
    s.push_str("  ]");
    s
}

fn picks_json(picks: &[Pick], budget_pj: f64) -> String {
    let mut s =
        format!("  \"picks\": {{\n    \"budget_pj\": {budget_pj:.6e},\n    \"selected\": [\n");
    for (i, p) in picks.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"lane\": \"{}\", \"key\": \"{}\", {}}}{}\n",
            p.lane.name(),
            p.candidate.point.key(),
            objectives_json(&p.candidate.objectives),
            if i + 1 < picks.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

fn sweep(cfg: &SearchConfig) -> Vec<LaneRun> {
    Lane::all().iter().map(|&lane| run_lane(lane, cfg)).collect()
}

fn main() {
    banner("E20");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke { SearchConfig::smoke() } else { SearchConfig::default() };
    println!(
        "mode: {} (grid {} levels/axis, {} restarts x {} hill steps, seed {})\n",
        if smoke { "smoke" } else { "full" },
        cfg.grid_levels,
        cfg.restarts,
        cfg.hill_steps,
        cfg.seed
    );

    let runs = sweep(&cfg);

    // Determinism spot-check: the whole sweep rerun must render the same
    // bytes, whatever ENW_THREADS is set to.
    let deterministic = lanes_json(&runs) == lanes_json(&sweep(&cfg));
    assert!(deterministic, "rerun of the same search diverged");

    for r in &runs {
        assert!(
            r.result.front.len() >= 3,
            "{} front collapsed to {} members",
            r.lane.name(),
            r.result.front.len()
        );
    }
    assert!(
        runs.iter().any(|r| r.default_dominated),
        "no lane's search dominated its hand-picked default"
    );

    // Deployment selection: budget = 2x the cheapest feasible selection,
    // so some — but not all — upgrades fit.
    let fronts: Vec<(Lane, Vec<Candidate>)> =
        runs.iter().map(|r| (r.lane, r.result.front.clone())).collect();
    let floor_pj: f64 = fronts
        .iter()
        .map(|(_, f)| f.iter().map(|c| c.objectives.energy_pj).fold(f64::INFINITY, f64::min))
        .sum();
    let budget_pj = BUDGET_SLACK * floor_pj;
    let picks = pick_configs(&fronts, budget_pj).expect("2x-floor budget is feasible");

    let mut table = Table::new(&[
        "lane",
        "evaluated",
        "feasible",
        "front",
        "best lat (ns)",
        "best en (pJ)",
        "best q/area",
        "default beaten",
        "search clock (ms)",
    ]);
    for r in &runs {
        let best = |f: fn(&Objectives) -> f64, init: f64, pick: fn(f64, f64) -> f64| {
            r.result.front.iter().map(|c| f(&c.objectives)).fold(init, pick)
        };
        table.row_owned(vec![
            r.lane.name().to_string(),
            format!("{}", r.result.evaluated),
            format!("{}", r.result.feasible),
            format!("{}", r.result.front.len()),
            format!("{:.1}", best(|o| o.latency_ns, f64::INFINITY, f64::min)),
            format!("{:.2}", best(|o| o.energy_pj, f64::INFINITY, f64::min)),
            format!("{:.3e}", best(|o| o.quality_per_area, f64::NEG_INFINITY, f64::max)),
            format!("{}", r.default_dominated),
            format!("{:.3}", r.result.clock_ns as f64 / 1.0e6),
        ]);
    }
    emit(&table);

    println!("budget {budget_pj:.1} pJ (2x floor {floor_pj:.1} pJ) selects:");
    for p in &picks {
        println!(
            "  {:<8} {}  ({:.1} pJ, q/area {:.3e})",
            p.lane.name(),
            p.candidate.point.key(),
            p.candidate.objectives.energy_pj,
            p.candidate.objectives.quality_per_area
        );
    }
    println!();

    let json = format!(
        "{{\n  \"bench\": \"dse\",\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"deterministic_rerun\": {},\n{},\n{}\n}}\n",
        cfg.seed,
        if smoke { "smoke" } else { "full" },
        deterministic,
        lanes_json(&runs),
        picks_json(&picks, budget_pj)
    );
    let path = "BENCH_dse.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    let xmann = runs.iter().find(|r| r.lane == Lane::Xmann).expect("sweep covers every lane");
    println!();
    println!("Reading: co-design beats catalog defaults. The X-MANN default bank (256 tiles)");
    println!(
        "is over-provisioned for this episode footprint; the search right-sizes it and {}",
        if xmann.default_dominated { "strictly dominates the default" } else { "matches it" }
    );
    println!("on quality-per-area at equal latency and energy. The TCAM front keeps every");
    println!("segment count because segmentation genuinely trades search energy against");
    println!("latency, and the serving lane trades batch-formation delay against goodput —");
    println!("fronts, not single optima, which is why pick_configs exists: under the energy");
    println!("budget it spends slack on whichever lane upgrade buys the most quality per");
    println!("picojoule. Every number above is virtual-time deterministic: reruns emit");
    println!("byte-identical JSON at any ENW_THREADS.");
}
