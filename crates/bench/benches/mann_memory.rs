//! Criterion microbenchmarks for the MANN differentiable-memory kernels
//! (paper Sec. III): similarity scans, soft reads and soft writes on the
//! reference memory, and the X-MANN architectural simulator's overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enw_core::mann::memory::{DifferentiableMemory, Similarity};
use enw_core::numerics::rng::Rng64;
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("mann_similarity_scan");
    for &slots in &[1024usize, 8192] {
        let mut rng = Rng64::new(1);
        let mem = DifferentiableMemory::random(slots, 64, &mut rng);
        let q: Vec<f32> = (0..64).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        group.bench_with_input(BenchmarkId::new("cosine", slots), &slots, |b, _| {
            b.iter(|| black_box(mem.similarities(black_box(&q), Similarity::Cosine)));
        });
        group.bench_with_input(BenchmarkId::new("l2", slots), &slots, |b, _| {
            b.iter(|| black_box(mem.similarities(black_box(&q), Similarity::NegL2)));
        });
    }
    group.finish();
}

fn bench_soft_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("mann_soft_ops");
    let mut rng = Rng64::new(2);
    let mut mem = DifferentiableMemory::random(4096, 64, &mut rng);
    let w: Vec<f32> = (0..4096).map(|_| 1.0 / 4096.0).collect();
    let erase = vec![0.1f32; 64];
    let add = vec![0.05f32; 64];
    group.bench_function("soft_read_4096x64", |b| {
        b.iter(|| black_box(mem.soft_read(black_box(&w))));
    });
    group.bench_function("soft_write_4096x64", |b| {
        b.iter(|| mem.soft_write(black_box(&w), black_box(&erase), black_box(&add)));
    });
    group.finish();
}

fn bench_xmann_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("xmann_simulator");
    let mut x = Xmann::new(4096, 64, XmannConfig::default(), XmannCostParams::default());
    let q = vec![0.1f32; 64];
    group.bench_function("content_address_4096x64", |b| {
        b.iter(|| black_box(x.content_address(black_box(&q), 5.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_soft_ops, bench_xmann_sim);
criterion_main!(benches);
