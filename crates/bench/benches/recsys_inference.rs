//! Criterion microbenchmarks for the recommendation-model path (paper
//! Sec. V): end-to-end inference, the embedding gather/pool kernel alone,
//! quantized gathers, and cache simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enw_core::numerics::rng::{Rng64, ZipfSampler};
use enw_core::recsys::cache::EmbeddingCache;
use enw_core::recsys::model::{EmbeddingTable, Interaction, RecModel, RecModelConfig};
use enw_core::recsys::quantize::QuantizedTable;
use enw_core::recsys::trace::TraceGenerator;

fn small_cfg() -> RecModelConfig {
    RecModelConfig {
        dense_features: 32,
        bottom_mlp: vec![64, 32],
        tables: vec![(100_000, 8); 8],
        embedding_dim: 32,
        top_mlp: vec![64],
        interaction: Interaction::Concat,
    }
}

fn bench_inference(c: &mut Criterion) {
    let cfg = small_cfg();
    let mut rng = Rng64::new(1);
    let mut model = RecModel::new(&cfg, &mut rng);
    let gen = TraceGenerator::new(&cfg, 1.0);
    let queries = gen.batch(64, &mut rng);
    c.bench_function("recsys_predict_8tables_8lookups", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(model.predict_query(black_box(q)))
        });
    });
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_gather_pool");
    let mut rng = Rng64::new(2);
    let table = EmbeddingTable::random(100_000, 64, &mut rng);
    let q8 = QuantizedTable::from_table(&table, 8);
    for &lookups in &[4usize, 32] {
        let idx: Vec<usize> = (0..lookups).map(|_| rng.below(100_000)).collect();
        group.bench_with_input(BenchmarkId::new("fp32", lookups), &lookups, |b, _| {
            b.iter(|| black_box(table.lookup_pool(black_box(&idx))));
        });
        group.bench_with_input(BenchmarkId::new("int8", lookups), &lookups, |b, _| {
            b.iter(|| black_box(q8.lookup_pool(black_box(&idx))));
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let zipf = ZipfSampler::new(1_000_000, 1.0);
    let mut rng = Rng64::new(3);
    let mut cache = EmbeddingCache::new(10_000);
    c.bench_function("embedding_cache_access_zipf", |b| {
        b.iter(|| {
            let row = zipf.sample(&mut rng);
            black_box(cache.access(0, row))
        });
    });
}

criterion_group!(benches, bench_inference, bench_gather, bench_cache);
criterion_main!(benches);
