//! Criterion microbenchmarks for the analog-crossbar kernels (paper
//! Sec. II): forward read, transposed read, stochastic-pulse update, and
//! write-verify programming, across array sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enw_core::crossbar::devices;
use enw_core::crossbar::tile::{AnalogTile, TileConfig, UpdateScheme};
use enw_core::nn::backend::LinearBackend;
use enw_core::numerics::matrix::Matrix;
use enw_core::numerics::rng::Rng64;

fn tile(n: usize, scheme: UpdateScheme, seed: u64) -> AnalogTile {
    let mut rng = Rng64::new(seed);
    let cfg = TileConfig { update: scheme, ..TileConfig::ideal() };
    let mut t = AnalogTile::new(n, n, &devices::ideal(2000), cfg, &mut rng);
    let target = Matrix::random_uniform(n, n + 1, -0.2, 0.2, &mut rng);
    t.program_effective(&target);
    t
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_forward");
    for &n in &[64usize, 256] {
        let mut t = tile(n, UpdateScheme::StochasticPulse { bl: 31 }, 1);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32) - 0.5).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(t.forward(black_box(&x))));
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_backward");
    for &n in &[64usize, 256] {
        let mut t = tile(n, UpdateScheme::StochasticPulse { bl: 31 }, 2);
        let d: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32) - 0.5).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(t.backward(black_box(&d))));
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_update");
    for (name, scheme) in [
        ("stochastic_bl31", UpdateScheme::StochasticPulse { bl: 31 }),
        ("mean_field", UpdateScheme::MeanField),
    ] {
        let n = 128;
        let mut t = tile(n, scheme, 3);
        let d: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) / 10.0).collect();
        let x: Vec<f32> = (0..n).map(|i| ((i % 5) as f32 - 2.0) / 10.0).collect();
        group.bench_function(name, |b| {
            b.iter(|| t.update(black_box(&d), black_box(&x), 0.01));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward, bench_update);
criterion_main!(benches);
