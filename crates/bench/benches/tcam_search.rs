//! Criterion microbenchmarks for the TCAM search paths (paper Sec. IV):
//! nearest-Hamming search, ternary cube matching, and LSH encoding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use enw_core::cam::array::{TcamArray, TcamConfig};
use enw_core::cam::cells;
use enw_core::mann::encoding::{cube_pattern, encode_levels};
use enw_core::mann::lsh::RandomHyperplaneLsh;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::rng::Rng64;

fn random_word(bits: usize, rng: &mut Rng64) -> BitVec {
    (0..bits).map(|_| rng.bernoulli(0.5)).collect()
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcam_nearest_search");
    for &entries in &[512usize, 8192] {
        let mut rng = Rng64::new(1);
        let mut cam = TcamArray::new(128, cells::cmos_16t(), TcamConfig::default());
        for _ in 0..entries {
            let w = random_word(128, &mut rng);
            cam.write(w);
        }
        let q = random_word(128, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| black_box(cam.search_nearest(black_box(&q))));
        });
    }
    group.finish();
}

fn bench_ternary(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let bits = 4u32;
    let dims = 16usize;
    let mut cam = TcamArray::new(dims * bits as usize, cells::cmos_16t(), TcamConfig::default());
    for _ in 0..2048 {
        let levels: Vec<u32> = (0..dims).map(|_| rng.below(16) as u32).collect();
        cam.write(encode_levels(&levels, bits));
    }
    let q_levels: Vec<u32> = (0..dims).map(|_| rng.below(16) as u32).collect();
    let pattern = cube_pattern(&q_levels, 2, bits);
    c.bench_function("tcam_ternary_cube_2048x64", |b| {
        b.iter(|| black_box(cam.search_ternary(black_box(&pattern))));
    });
}

fn bench_lsh_encode(c: &mut Criterion) {
    let mut rng = Rng64::new(3);
    let lsh = RandomHyperplaneLsh::new(256, 64, &mut rng);
    let v: Vec<f32> = (0..64).map(|_| rng.range(-1.0, 1.0) as f32).collect();
    c.bench_function("lsh_encode_256planes_64d", |b| {
        b.iter(|| black_box(lsh.encode(black_box(&v))));
    });
}

criterion_group!(benches, bench_nearest, bench_ternary, bench_lsh_encode);
criterion_main!(benches);
