//! Property-based tests for the limb-packed TCAM search path.
//!
//! Compiled only with `--features proptest` so the default tier-1 run
//! stays lean; enable it in CI sweeps via `scripts/verify.sh --full`.
#![cfg(feature = "proptest")]

use enw_cam::array::{NearestHit, TcamConfig};
use enw_cam::bank::TcamBank;
use enw_cam::cells;
use enw_mann::encoding::TernaryWord;
use enw_numerics::bits::BitVec;
use enw_numerics::rng::Rng64;
use proptest::prelude::*;

/// Draws `len` words of `width` random bits (both packed and unpacked
/// forms, for the naive per-bit reference).
fn random_words(len: usize, width: usize, rng: &mut Rng64) -> Vec<Vec<bool>> {
    (0..len).map(|_| (0..width).map(|_| rng.below(2) == 1).collect()).collect()
}

/// The naive software CAM: per-bit Hamming scan with the lowest-index
/// tie rule — the behavioural reference for the packed `u64` search.
fn naive_nearest(words: &[Vec<bool>], query: &[bool]) -> Option<NearestHit> {
    let mut best: Option<NearestHit> = None;
    for (i, w) in words.iter().enumerate() {
        let distance = w.iter().zip(query).filter(|(a, b)| a != b).count();
        if best.is_none_or(|b| distance < b.distance) {
            best = Some(NearestHit { index: i, distance });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// The limb-packed bank search returns exactly what the per-bit scan
    /// returns — same index (lowest on ties, the priority-encoder rule)
    /// and same distance — for widths straddling the u64 limb boundary.
    #[test]
    fn bank_search_matches_naive_per_bit_scan(
        width in 1usize..140, len in 1usize..400, rows_per_array in 1usize..65,
        seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let words = random_words(len, width, &mut rng);
        let mut bank = TcamBank::new(width, rows_per_array, cells::fefet_2t(), TcamConfig::default());
        for w in &words {
            bank.write(BitVec::from_bools(w));
        }
        for _ in 0..4 {
            let q: Vec<bool> = (0..width).map(|_| rng.below(2) == 1).collect();
            let (hit, _) = bank.search_nearest(&BitVec::from_bools(&q));
            prop_assert_eq!(hit, naive_nearest(&words, &q));
        }
    }

    /// Bank search results are identical at ENW_THREADS=1/2/8; sizes are
    /// chosen so roughly half the cases cross the `plan_chunks` gate and
    /// actually fan out across the pool.
    #[test]
    fn bank_search_bit_identical_at_any_thread_count(
        width in 32usize..129, len in 1usize..900, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let words = random_words(len, width, &mut rng);
        let queries: Vec<BitVec> = (0..4)
            .map(|_| BitVec::from_bools(&(0..width).map(|_| rng.below(2) == 1).collect::<Vec<_>>()))
            .collect();
        let hits_at = |threads: usize| {
            enw_parallel::with_threads(threads, || {
                let mut bank =
                    TcamBank::new(width, 32, cells::fefet_2t(), TcamConfig::default());
                for w in &words {
                    bank.write(BitVec::from_bools(w));
                }
                queries.iter().map(|q| bank.search_nearest(q).0).collect::<Vec<_>>()
            })
        };
        let serial = hits_at(1);
        for t in [2usize, 8] {
            prop_assert_eq!(hits_at(t), serial.clone(), "thread count {}", t);
        }
    }

    /// `TernaryWord::matches` (the limb-wise masked compare) agrees with
    /// the per-bit model: every cared bit equal, don't-care bits free.
    #[test]
    fn ternary_match_agrees_with_per_bit_model(
        width in 1usize..140, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let bits: Vec<bool> = (0..width).map(|_| rng.below(2) == 1).collect();
        let care: Vec<bool> = (0..width).map(|_| rng.below(4) != 0).collect();
        let pattern = TernaryWord::new(BitVec::from_bools(&bits), BitVec::from_bools(&care));
        for _ in 0..8 {
            // Mix exact copies, near-misses, and random words.
            let stored: Vec<bool> = match rng.below(3) {
                0 => bits.clone(),
                1 => {
                    let mut s = bits.clone();
                    let flip = rng.below(width);
                    s[flip] = !s[flip];
                    s
                }
                _ => (0..width).map(|_| rng.below(2) == 1).collect(),
            };
            let reference = bits
                .iter()
                .zip(&care)
                .zip(&stored)
                .all(|((b, c), s)| !c || b == s);
            let mismatches = bits
                .iter()
                .zip(&care)
                .zip(&stored)
                .filter(|((b, c), s)| **c && b != s)
                .count();
            let packed = BitVec::from_bools(&stored);
            prop_assert_eq!(pattern.matches(&packed), reference);
            prop_assert_eq!(pattern.mismatches(&packed), mismatches);
        }
    }
}
