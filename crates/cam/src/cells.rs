//! TCAM cell technologies (paper Sec. IV-C).
//!
//! A conventional CMOS TCAM cell spends 16 transistors per ternary bit;
//! the FeFET cell of ref. \[9\] stores the same ternary state in just two
//! ferroelectric transistors. Fewer and smaller devices mean shorter
//! match lines, lower search energy (~2.4× reported) and slightly lower
//! search latency (~1.1×) — and, because a 2-transistor cell is ~8× denser,
//! much larger MANN memories per unit area.

/// Per-cell and per-search parameters of one TCAM cell technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTech {
    /// Technology name.
    pub name: &'static str,
    /// Transistors per ternary cell.
    pub transistors: u32,
    /// Search energy per cell per search (pJ) — match-line charge/
    /// discharge plus search-line toggling, amortized per bit.
    pub search_bit_pj: f64,
    /// Search latency of one parallel array search (ns) — match-line
    /// evaluation plus sensing.
    pub search_ns: f64,
    /// Energy to program one cell (pJ).
    pub write_bit_pj: f64,
    /// Latency to program one word (ns).
    pub write_word_ns: f64,
    /// Cell area (µm²) — determines how much memory fits a die.
    pub cell_area_um2: f64,
    /// Program/erase cycles before wear-out (`None` = effectively
    /// unlimited, as for CMOS SRAM-based cells).
    pub endurance: Option<u64>,
}

/// The conventional 16-transistor CMOS TCAM cell.
pub fn cmos_16t() -> CellTech {
    CellTech {
        name: "16T CMOS",
        transistors: 16,
        search_bit_pj: 1.6,
        search_ns: 4.4,
        write_bit_pj: 0.8,
        write_word_ns: 1.0,
        cell_area_um2: 1.1,
        endurance: None,
    }
}

/// The 2-FeFET TCAM cell of ref. \[9\]: ~2.4× lower search energy, ~1.1×
/// lower search latency, ~8× denser — but finite ferroelectric endurance.
pub fn fefet_2t() -> CellTech {
    CellTech {
        name: "2FeFET",
        transistors: 2,
        search_bit_pj: 1.6 / 2.4,
        search_ns: 4.4 / 1.1,
        write_bit_pj: 2.0, // polarization switching is costlier per write
        write_word_ns: 10.0,
        cell_area_um2: 0.14,
        endurance: Some(100_000_000),
    }
}

impl CellTech {
    /// Memory words of `bits` width that fit in `area_mm2` of silicon.
    pub fn words_per_area(&self, bits: usize, area_mm2: f64) -> u64 {
        let per_word_um2 = self.cell_area_um2 * bits as f64;
        (area_mm2 * 1e6 / per_word_um2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fefet_improves_search_energy_by_published_factor() {
        let c = cmos_16t();
        let f = fefet_2t();
        let ratio = c.search_bit_pj / f.search_bit_pj;
        assert!((ratio - 2.4).abs() < 0.01, "energy ratio {ratio}");
    }

    #[test]
    fn fefet_improves_search_latency_by_published_factor() {
        let ratio = cmos_16t().search_ns / fefet_2t().search_ns;
        assert!((ratio - 1.1).abs() < 0.01, "latency ratio {ratio}");
    }

    #[test]
    fn fefet_is_denser() {
        let c = cmos_16t().words_per_area(64, 1.0);
        let f = fefet_2t().words_per_area(64, 1.0);
        assert!(f > 5 * c, "2FeFET must fit far more words: {f} vs {c}");
    }

    #[test]
    fn fefet_has_finite_endurance() {
        assert!(fefet_2t().endurance.is_some());
        assert!(cmos_16t().endurance.is_none());
    }
}
