//! Content-addressable-memory hardware for MANNs — paper Sec. IV.
//!
//! A ternary CAM compares a query against *every* stored word in one
//! parallel operation, making it a natural home for the
//! similarity-search inner loop of a memory-augmented network: no
//! DRAM-to-GPU transfer, no per-entry arithmetic. This crate models the
//! hardware:
//!
//! * [`cells`] — cell technologies: conventional 16T CMOS vs. the 2-FeFET
//!   cell of ref. \[9\] (2.4× search energy, 1.1× latency, ~8× density).
//! * [`mod@array`] — the TCAM array: exact ternary matches (for BRGC range
//!   encodings) and nearest-Hamming searches by match-line discharge
//!   sensing, with per-search energy/latency accounting and a match-line
//!   segmentation knob.
//! * [`baseline`] — the GPU + DRAM cosine-search baseline and the
//!   comparison harness behind the paper's 24×-energy / 2582×-latency
//!   claim (experiment E9) and the FeFET deltas (E10).
//! * [`bank`] — banked organizations: many arrays searched concurrently
//!   behind a global priority stage, scaling capacity at flat latency.
//! * [`lsh_memory`] — a complete TCAM-backed key–value lifelong memory:
//!   LSH signatures in, class labels out, hardware cost per operation.
//!
//! Functional encodings (LSH, BRGC, ternary words) come from `enw-mann`;
//! this crate adds the hardware that executes them.
//!
//! # Example
//!
//! ```
//! use enw_cam::{array::{TcamArray, TcamConfig}, cells};
//! use enw_numerics::bits::BitVec;
//!
//! let mut cam = TcamArray::new(32, cells::fefet_2t(), TcamConfig::default());
//! cam.write(BitVec::from_bools(&[true; 32]));
//! cam.write(BitVec::from_bools(&[false; 32]));
//! let (hit, cost) = cam.search_nearest(&BitVec::from_bools(&[true; 32]));
//! assert_eq!(hit.expect("non-empty").index, 0);
//! assert!(cost.latency_ns < 5.0); // one parallel search
//! ```

pub mod array;
pub mod bank;
pub mod baseline;
pub mod cells;
pub mod error;
pub mod lsh_memory;

pub use array::{NearestHit, TcamArray, TcamConfig, TcamConfigBuilder};
pub use bank::TcamBank;
pub use baseline::{compare_search, gpu_search_cost, SearchComparison};
pub use cells::CellTech;
pub use error::CamError;
pub use lsh_memory::TcamKeyValueMemory;
