//! The GPU + DRAM memory-search baseline and the TCAM comparison harness
//! (paper Sec. IV-B2: "24× and 2,582× reductions in energy and latency …
//! when a 16T CMOS TCAM replaces DRAM").
//!
//! The baseline models the attentional memory search as it runs on a GPU:
//! the `M × D` FP32 key matrix streams from DRAM, a distance kernel
//! computes cosine similarities, and a reduction kernel finds the best
//! match — two kernel launches per query.

use crate::array::{TcamArray, TcamConfig};
use crate::cells::CellTech;
use enw_numerics::bits::BitVec;
use enw_numerics::rng::Rng64;
use enw_xmann::cost::{Cost, GpuCostParams};

/// Cost of one cosine-similarity memory search over `entries × dim` FP32
/// keys on the GPU baseline.
///
/// Charged: full key-matrix DRAM traffic + 4 FLOPs/element for the
/// distance kernel, then an argmax reduction kernel over the scores.
pub fn gpu_search_cost(entries: usize, dim: usize, params: &GpuCostParams) -> Cost {
    let bytes = (entries * dim * 4) as u64;
    let distance = params.kernel(bytes, 4 * (entries * dim) as u64);
    let reduce = params.kernel((entries * 4) as u64, entries as u64);
    distance + reduce
}

/// One row of the TCAM-vs-GPU comparison table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchComparison {
    /// Stored entries.
    pub entries: usize,
    /// Signature width (TCAM) / feature dims (GPU).
    pub bits: usize,
    /// Cost of one TCAM nearest-match search.
    pub tcam: Cost,
    /// Cost of one GPU cosine search (over `bits`-dimensional FP32 keys).
    pub gpu: Cost,
}

impl SearchComparison {
    /// GPU energy / TCAM energy.
    pub fn energy_reduction(&self) -> f64 {
        self.gpu.energy_pj / self.tcam.energy_pj
    }

    /// GPU latency / TCAM latency.
    pub fn latency_reduction(&self) -> f64 {
        self.gpu.latency_ns / self.tcam.latency_ns
    }
}

/// Builds a TCAM holding `entries` random `bits`-wide signatures and
/// compares one nearest-match search against the GPU baseline searching
/// the same number of `bits`-dimensional FP32 keys.
pub fn compare_search(
    entries: usize,
    bits: usize,
    tech: CellTech,
    cfg: TcamConfig,
    gpu: &GpuCostParams,
    rng: &mut Rng64,
) -> SearchComparison {
    let mut cam = TcamArray::new(bits, tech, cfg);
    for _ in 0..entries {
        let word: BitVec = (0..bits).map(|_| rng.bernoulli(0.5)).collect();
        cam.write(word);
    }
    let query: BitVec = (0..bits).map(|_| rng.bernoulli(0.5)).collect();
    let (_, tcam_cost) = cam.search_nearest(&query);
    SearchComparison { entries, bits, tcam: tcam_cost, gpu: gpu_search_cost(entries, bits, gpu) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    #[test]
    fn gpu_search_pays_two_launches() {
        let p = GpuCostParams::default();
        let c = gpu_search_cost(512, 64, &p);
        assert!(c.latency_ns >= 2.0 * p.kernel_launch_ns);
    }

    #[test]
    fn tcam_beats_gpu_dramatically_on_paper_configuration() {
        // Paper setup: 16T CMOS TCAM replacing DRAM for the memory search.
        // Reported: 24× energy, 2582× latency. Shape check within ~3×.
        let mut rng = Rng64::new(1);
        let cmp = compare_search(
            512,
            64,
            cells::cmos_16t(),
            TcamConfig::default(),
            &GpuCostParams::default(),
            &mut rng,
        );
        let e = cmp.energy_reduction();
        let l = cmp.latency_reduction();
        assert!((8.0..80.0).contains(&e), "energy reduction {e}");
        assert!((800.0..8000.0).contains(&l), "latency reduction {l}");
    }

    #[test]
    fn fefet_adds_its_cell_level_factors() {
        let mut rng = Rng64::new(2);
        let cmos = compare_search(
            512,
            64,
            cells::cmos_16t(),
            TcamConfig::default(),
            &GpuCostParams::default(),
            &mut rng,
        );
        let fefet = compare_search(
            512,
            64,
            cells::fefet_2t(),
            TcamConfig::default(),
            &GpuCostParams::default(),
            &mut rng,
        );
        let extra_e = fefet.energy_reduction() / cmos.energy_reduction();
        let extra_l = fefet.latency_reduction() / cmos.latency_reduction();
        assert!((extra_e - 2.4).abs() < 0.1, "extra energy factor {extra_e}");
        assert!((extra_l - 1.1).abs() < 0.05, "extra latency factor {extra_l}");
    }

    #[test]
    fn latency_reduction_grows_with_entries() {
        // The TCAM search is O(1) in rows; the GPU streams more bytes.
        let mut rng = Rng64::new(3);
        let small = compare_search(
            512,
            64,
            cells::cmos_16t(),
            TcamConfig::default(),
            &GpuCostParams::default(),
            &mut rng,
        );
        let large = compare_search(
            65_536,
            64,
            cells::cmos_16t(),
            TcamConfig::default(),
            &GpuCostParams::default(),
            &mut rng,
        );
        assert!(large.latency_reduction() > small.latency_reduction());
    }
}
