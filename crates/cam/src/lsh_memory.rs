//! A complete CAM-based MANN memory: the key–value lifelong memory of
//! `enw-mann` re-implemented with LSH signatures stored in a TCAM array
//! (paper Fig. 5 — "GPU-based vs. TCAM-based MANNs").
//!
//! Real-valued keys hash to binary signatures; retrieval is one parallel
//! nearest-Hamming search; updates rewrite TCAM words. Every operation
//! returns its hardware cost, so end-to-end few-shot episodes can be both
//! *scored* (accuracy) and *billed* (energy/latency) on the same run.

use crate::array::{NearestHit, TcamArray, TcamConfig};
use crate::cells::CellTech;
use enw_mann::lsh::RandomHyperplaneLsh;
use enw_numerics::rng::Rng64;
use enw_xmann::cost::Cost;

/// Retrieval result from the TCAM memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamRetrieval {
    /// Stored value (class label) of the best match.
    pub value: usize,
    /// Hamming distance of the match.
    pub distance: usize,
    /// Slot index.
    pub slot: usize,
}

/// A key–value memory whose keys live in a TCAM as LSH signatures.
///
/// # Example
///
/// ```
/// use enw_cam::lsh_memory::TcamKeyValueMemory;
/// use enw_cam::{cells, array::TcamConfig};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut mem = TcamKeyValueMemory::new(
///     16, 8, 64, cells::cmos_16t(), TcamConfig::default(), &mut rng);
/// mem.update(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3);
/// let (hit, _cost) = mem.retrieve(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// assert_eq!(hit.expect("non-empty").value, 3);
/// ```
#[derive(Debug, Clone)]
pub struct TcamKeyValueMemory {
    lsh: RandomHyperplaneLsh,
    cam: TcamArray,
    values: Vec<usize>,
    ages: Vec<u64>,
    capacity: usize,
    clock: u64,
}

impl TcamKeyValueMemory {
    /// An empty memory of `capacity` slots for `dim`-dimensional keys
    /// hashed to `planes`-bit signatures.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(
        capacity: usize,
        dim: usize,
        planes: usize,
        tech: CellTech,
        cfg: TcamConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert!(capacity > 0, "degenerate memory");
        TcamKeyValueMemory {
            lsh: RandomHyperplaneLsh::new(planes, dim, rng),
            cam: TcamArray::new(planes, tech, cfg),
            values: Vec::new(),
            ages: Vec::new(),
            capacity,
            clock: 0,
        }
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total hardware cost accumulated by the underlying TCAM.
    pub fn total_cost(&self) -> Cost {
        self.cam.total_cost()
    }

    /// Retrieves the nearest stored key (one parallel TCAM search).
    pub fn retrieve(&mut self, query: &[f32]) -> (Option<TcamRetrieval>, Cost) {
        let sig = self.lsh.encode(query);
        let (hit, cost) = self.cam.search_nearest(&sig);
        let r = hit.map(|NearestHit { index, distance }| TcamRetrieval {
            value: self.values[index],
            distance,
            slot: index,
        });
        (r, cost)
    }

    /// Lifelong-memory update (same policy as the reference
    /// `enw_mann::KeyValueMemory`): correct retrievals refresh the slot's
    /// age and rewrite its signature with the fresh query; wrong or empty
    /// retrievals claim a free slot or evict the oldest.
    ///
    /// Returns the written slot and the hardware cost.
    pub fn update(&mut self, query: &[f32], value: usize) -> (usize, Cost) {
        self.clock += 1;
        let sig = self.lsh.encode(query);
        let mut cost = Cost::zero();
        let retrieved = if self.values.is_empty() {
            None
        } else {
            let (hit, c) = self.cam.search_nearest(&sig);
            cost += c;
            hit
        };
        if let Some(hit) = retrieved {
            if self.values[hit.index] == value {
                cost += self.cam.rewrite(hit.index, sig);
                self.ages[hit.index] = self.clock;
                return (hit.index, cost);
            }
        }
        if self.values.len() < self.capacity {
            let (slot, c) = self.cam.write(sig);
            cost += c;
            self.values.push(value);
            self.ages.push(self.clock);
            (slot, cost)
        } else {
            // `unwrap_or(0)`: at capacity the range is non-empty, and slot 0
            // is a correct (if arbitrary) victim in the impossible branch.
            let oldest = (0..self.values.len()).min_by_key(|&s| self.ages[s]).unwrap_or(0);
            cost += self.cam.rewrite(oldest, sig);
            self.values[oldest] = value;
            self.ages[oldest] = self.clock;
            (oldest, cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    fn mem(capacity: usize, rng: &mut Rng64) -> TcamKeyValueMemory {
        TcamKeyValueMemory::new(capacity, 8, 128, cells::cmos_16t(), TcamConfig::default(), rng)
    }

    fn unit(hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; 8];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn one_shot_store_and_retrieve() {
        let mut rng = Rng64::new(1);
        let mut m = mem(8, &mut rng);
        m.update(&unit(2), 42);
        let (hit, _) = m.retrieve(&unit(2));
        assert_eq!(hit.expect("non-empty").value, 42);
    }

    #[test]
    fn retrieval_is_noise_tolerant() {
        let mut rng = Rng64::new(2);
        let mut m = mem(8, &mut rng);
        m.update(&unit(0), 1);
        m.update(&unit(4), 2);
        let mut q = unit(0);
        q[1] = 0.3; // perturb
        let (hit, _) = m.retrieve(&q);
        assert_eq!(hit.expect("non-empty").value, 1);
    }

    #[test]
    fn eviction_at_capacity() {
        let mut rng = Rng64::new(3);
        let mut m = mem(2, &mut rng);
        m.update(&unit(0), 0);
        m.update(&unit(1), 1);
        m.update(&unit(2), 2); // evicts the oldest (class 0)
        assert_eq!(m.len(), 2);
        let (hit, _) = m.retrieve(&unit(2));
        assert_eq!(hit.expect("non-empty").value, 2);
    }

    #[test]
    fn costs_accumulate_per_operation() {
        let mut rng = Rng64::new(4);
        let mut m = mem(8, &mut rng);
        let (_, c1) = m.update(&unit(0), 0);
        assert!(c1.energy_pj > 0.0);
        let before = m.total_cost();
        m.retrieve(&unit(0));
        assert!(m.total_cost().energy_pj > before.energy_pj);
    }

    #[test]
    fn agrees_with_reference_memory_on_clean_inputs() {
        // The TCAM memory and the FP32 reference should retrieve the same
        // classes for well-separated keys.
        use enw_mann::kv_memory::KeyValueMemory;
        use enw_mann::memory::Similarity;
        let mut rng = Rng64::new(5);
        let mut hw = mem(8, &mut rng);
        let mut sw = KeyValueMemory::new(8, 8, Similarity::Cosine);
        for (i, label) in [(0usize, 10usize), (3, 11), (6, 12)] {
            hw.update(&unit(i), label);
            sw.update(&unit(i), label);
        }
        for i in [0usize, 3, 6] {
            let (h, _) = hw.retrieve(&unit(i));
            let s = sw.retrieve(&unit(i)).expect("non-empty");
            assert_eq!(h.expect("non-empty").value, s.value);
        }
    }
}
