//! The TCAM array: ternary-match and nearest-Hamming searches with
//! match-line energy/latency accounting (paper Sec. IV).
//!
//! Two search styles map to the paper's two encoding families:
//!
//! * [`TcamArray::search_ternary`] — exact ternary match (RENE range
//!   queries): every stored word either matches the query pattern or not.
//! * [`TcamArray::search_nearest`] — degree-of-match sensing: the match
//!   line of a word with more mismatched bits discharges faster, so the
//!   array returns the minimum-Hamming-distance entry in a *single*
//!   parallel search (the LSH-MANN mode of ref. \[9\]).

use crate::cells::CellTech;
use enw_mann::encoding::TernaryWord;
use enw_numerics::bits::{hamming_limbs, BitVec};
use enw_xmann::cost::Cost;

/// Geometry and segmentation of a TCAM array.
///
/// Construct via [`TcamConfig::builder`]; direct struct-literal
/// construction in downstream code is deprecated (it bypasses
/// validation and will stop compiling as fields are added).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamConfig {
    /// Match-line segments: selective precharge evaluates segments
    /// sequentially and aborts on mismatch, trading latency for energy.
    /// 1 = conventional monolithic match lines.
    pub segments: usize,
}

impl Default for TcamConfig {
    fn default() -> Self {
        TcamConfig { segments: 1 }
    }
}

impl TcamConfig {
    /// Starts a validating builder seeded with the default geometry.
    pub fn builder() -> TcamConfigBuilder {
        TcamConfigBuilder { segments: TcamConfig::default().segments }
    }
}

/// Validating builder for [`TcamConfig`].
///
/// `build()` rejects degenerate geometry with a typed
/// [`CamError`](crate::error::CamError) instead of panicking, so search
/// drivers can probe candidate configurations safely.
#[derive(Debug, Clone)]
pub struct TcamConfigBuilder {
    segments: usize,
}

impl TcamConfigBuilder {
    /// Sets the number of match-line segments.
    pub fn segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<TcamConfig, crate::error::CamError> {
        if self.segments == 0 {
            return Err(crate::error::CamError::InvalidConfig {
                reason: "segments must be at least 1",
            });
        }
        Ok(TcamConfig { segments: self.segments })
    }
}

/// A ternary CAM array of fixed word width.
///
/// # Example
///
/// ```
/// use enw_cam::array::{TcamArray, TcamConfig};
/// use enw_cam::cells;
/// use enw_numerics::bits::BitVec;
///
/// let mut cam = TcamArray::new(64, cells::cmos_16t(), TcamConfig::default());
/// cam.write(BitVec::from_bools(&vec![true; 64]));
/// let (hit, _cost) = cam.search_nearest(&BitVec::from_bools(&vec![true; 64]));
/// assert_eq!(hit.expect("non-empty").distance, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TcamArray {
    width: usize,
    /// `u64` limbs per stored word (`width.div_ceil(64)`).
    limbs_per_word: usize,
    tech: CellTech,
    cfg: TcamConfig,
    /// All stored words' limbs, contiguous (`len * limbs_per_word`).
    /// One flat buffer instead of a `Vec<BitVec>` keeps a whole-array
    /// search a single sequential sweep — no per-word pointer chase —
    /// which is what lets the limb-wise match kernels stream.
    limbs: Vec<u64>,
    len: usize,
    writes: u64,
    total: Cost,
}

/// Result of a nearest-match search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearestHit {
    /// Index of the best-matching stored word (lowest index on ties,
    /// matching the priority encoder of real arrays).
    pub index: usize,
    /// Hamming distance of the match.
    pub distance: usize,
}

impl TcamArray {
    /// An empty array of `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `cfg.segments` is zero.
    pub fn new(width: usize, tech: CellTech, cfg: TcamConfig) -> Self {
        assert!(width > 0, "zero-width TCAM");
        assert!(cfg.segments > 0, "need at least one match-line segment");
        TcamArray {
            width,
            limbs_per_word: width.div_ceil(64),
            tech,
            cfg,
            limbs: Vec::new(),
            len: 0,
            writes: 0,
            total: Cost::zero(),
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored word count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell technology in use.
    pub fn tech(&self) -> &CellTech {
        &self.tech
    }

    /// Cumulative cost of all writes and searches.
    pub fn total_cost(&self) -> Cost {
        self.total
    }

    /// Total program operations (for endurance accounting).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Returns `true` once per-cell program counts could exceed the
    /// technology's endurance rating (conservative: assumes writes spread
    /// evenly).
    pub fn endurance_exceeded(&self) -> bool {
        match self.tech.endurance {
            None => false,
            Some(e) => self.len == 0 || self.writes / self.len.max(1) as u64 > e,
        }
    }

    /// Appends a stored word; returns its index and the write cost.
    ///
    /// # Panics
    ///
    /// Panics if the word width mismatches.
    pub fn write(&mut self, word: BitVec) -> (usize, Cost) {
        assert_eq!(word.len(), self.width, "word width mismatch");
        self.limbs.extend_from_slice(word.limbs());
        self.len += 1;
        self.writes += 1;
        let cost = Cost::new(self.width as f64 * self.tech.write_bit_pj, self.tech.write_word_ns);
        self.total += cost;
        (self.len - 1, cost)
    }

    /// Overwrites a stored word in place.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the width mismatches.
    pub fn rewrite(&mut self, index: usize, word: BitVec) -> Cost {
        assert!(index < self.len, "index out of range");
        assert_eq!(word.len(), self.width, "word width mismatch");
        let lpw = self.limbs_per_word;
        self.limbs[index * lpw..(index + 1) * lpw].copy_from_slice(word.limbs());
        self.writes += 1;
        let cost = Cost::new(self.width as f64 * self.tech.write_bit_pj, self.tech.write_word_ns);
        self.total += cost;
        cost
    }

    /// Cost of one parallel search over the whole array.
    ///
    /// With `s` match-line segments, selective precharge evaluates one
    /// segment at a time and kills mismatching lines early; to first order
    /// the expected charged-cell count drops toward `1/s` of the array
    /// while latency grows by one sense stage per extra segment.
    fn search_cost(&self) -> Cost {
        let cells = (self.len * self.width) as f64;
        let s = self.cfg.segments as f64;
        let energy = cells * self.tech.search_bit_pj * (1.0 / s + 0.5 / s.max(1.0) * (s - 1.0) / s);
        let latency = self.tech.search_ns + (s - 1.0) * 0.5 * self.tech.search_ns;
        Cost::new(energy, latency)
    }

    /// Books one search against the array's cumulative cost and returns
    /// that search's cost. Split out from the search entry points so
    /// `TcamBank` can run the pure match computation on worker threads
    /// and do the accounting serially afterwards.
    pub(crate) fn record_search(&mut self) -> Cost {
        let cost = self.search_cost();
        self.total += cost;
        cost
    }

    /// Pure ternary match (no cost accounting): indices of stored words
    /// matching `pattern`. Allocating wrapper around
    /// [`peek_ternary_into`](TcamArray::peek_ternary_into).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width mismatches.
    pub fn peek_ternary(&self, pattern: &TernaryWord) -> Vec<usize> {
        let mut hits = Vec::new();
        self.peek_ternary_into(pattern, &mut hits);
        hits
    }

    /// Pure ternary match appending matching indices to a caller-owned
    /// vector (`hits` is cleared first) — the form the match loop itself
    /// runs in, so repeated searches can reuse one buffer.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width mismatches.
    // enw:hot
    pub fn peek_ternary_into(&self, pattern: &TernaryWord, hits: &mut Vec<usize>) {
        assert_eq!(pattern.len(), self.width, "pattern width mismatch");
        hits.clear();
        hits.extend(
            self.limbs
                .chunks_exact(self.limbs_per_word)
                .enumerate()
                .filter(|(_, w)| pattern.matches_limbs(w))
                .map(|(i, _)| i),
        );
    }

    /// Exact ternary match of `pattern` against every stored word — one
    /// parallel search.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width mismatches.
    pub fn search_ternary(&mut self, pattern: &TernaryWord) -> (Vec<usize>, Cost) {
        let hits = self.peek_ternary(pattern);
        let cost = self.record_search();
        (hits, cost)
    }

    /// Pure nearest-match computation (no cost accounting): the
    /// minimum-Hamming-distance stored word, ties to the lowest index.
    /// See [`search_nearest`](TcamArray::search_nearest).
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    // enw:hot
    pub fn peek_nearest(&self, query: &BitVec) -> Option<NearestHit> {
        assert_eq!(query.len(), self.width, "query width mismatch");
        let q = query.limbs();
        let mut best: Option<NearestHit> = None;
        // Ascending scan with strict `<` keeps the lowest index on ties —
        // the priority-encoder rule the old `min_by_key((dist, index))`
        // expressed.
        for (i, w) in self.limbs.chunks_exact(self.limbs_per_word).enumerate() {
            let distance = hamming_limbs(q, w) as usize;
            if best.is_none_or(|b| distance < b.distance) {
                best = Some(NearestHit { index: i, distance });
            }
        }
        best
    }

    /// Nearest-match search by match-line discharge-rate sensing: returns
    /// the minimum-Hamming-distance stored word in a single parallel
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn search_nearest(&mut self, query: &BitVec) -> (Option<NearestHit>, Cost) {
        let best = self.peek_nearest(query);
        let cost = self.record_search();
        (best, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use enw_mann::encoding::{cube_pattern, encode_levels};

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn nearest_finds_minimum_hamming() {
        let mut cam = TcamArray::new(4, cells::cmos_16t(), TcamConfig::default());
        cam.write(bv(&[1, 1, 1, 1]));
        cam.write(bv(&[0, 0, 0, 0]));
        cam.write(bv(&[1, 1, 0, 0]));
        let (hit, _) = cam.search_nearest(&bv(&[1, 0, 0, 0]));
        let hit = hit.expect("non-empty");
        assert_eq!(hit.index, 1);
        assert_eq!(hit.distance, 1);
    }

    #[test]
    fn nearest_on_empty_array_is_none() {
        let mut cam = TcamArray::new(4, cells::cmos_16t(), TcamConfig::default());
        let (hit, _) = cam.search_nearest(&bv(&[1, 0, 0, 0]));
        assert!(hit.is_none());
    }

    #[test]
    fn ternary_search_returns_all_matches() {
        let mut cam = TcamArray::new(8, cells::cmos_16t(), TcamConfig::default());
        // Store BRGC-encoded levels 3, 5, 12 (4 bits, 2 dims of 1 value? —
        // use 2-dim levels of 4 bits for an 8-bit word).
        cam.write(encode_levels(&[3, 5], 4));
        cam.write(encode_levels(&[4, 5], 4));
        cam.write(encode_levels(&[12, 1], 4));
        let pattern = cube_pattern(&[3, 5], 1, 4);
        let (hits, _) = cam.search_ternary(&pattern);
        assert!(hits.contains(&0));
        assert!(hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn search_cost_scales_with_stored_words() {
        let mut small = TcamArray::new(64, cells::cmos_16t(), TcamConfig::default());
        let mut large = TcamArray::new(64, cells::cmos_16t(), TcamConfig::default());
        for _ in 0..10 {
            small.write(BitVec::zeros(64));
        }
        for _ in 0..100 {
            large.write(BitVec::zeros(64));
        }
        let q = BitVec::zeros(64);
        let (_, cs) = small.search_nearest(&q);
        let (_, cl) = large.search_nearest(&q);
        assert!((cl.energy_pj / cs.energy_pj - 10.0).abs() < 0.1);
        // Latency is a single parallel evaluation — independent of rows.
        assert_eq!(cs.latency_ns, cl.latency_ns);
    }

    #[test]
    fn fefet_array_cheaper_per_search() {
        let mut cmos = TcamArray::new(64, cells::cmos_16t(), TcamConfig::default());
        let mut fefet = TcamArray::new(64, cells::fefet_2t(), TcamConfig::default());
        for _ in 0..32 {
            cmos.write(BitVec::zeros(64));
            fefet.write(BitVec::zeros(64));
        }
        let q = BitVec::zeros(64);
        let (_, cc) = cmos.search_nearest(&q);
        let (_, cf) = fefet.search_nearest(&q);
        assert!((cc.energy_pj / cf.energy_pj - 2.4).abs() < 0.05);
        assert!((cc.latency_ns / cf.latency_ns - 1.1).abs() < 0.05);
    }

    #[test]
    fn segmentation_saves_energy_costs_latency() {
        let mut mono = TcamArray::new(64, cells::cmos_16t(), TcamConfig { segments: 1 });
        let mut seg = TcamArray::new(64, cells::cmos_16t(), TcamConfig { segments: 4 });
        for _ in 0..32 {
            mono.write(BitVec::zeros(64));
            seg.write(BitVec::zeros(64));
        }
        let q = BitVec::zeros(64);
        let (_, cm) = mono.search_nearest(&q);
        let (_, cs) = seg.search_nearest(&q);
        assert!(cs.energy_pj < cm.energy_pj);
        assert!(cs.latency_ns > cm.latency_ns);
    }

    #[test]
    fn rewrite_replaces_word() {
        let mut cam = TcamArray::new(4, cells::cmos_16t(), TcamConfig::default());
        let (i, _) = cam.write(bv(&[1, 1, 1, 1]));
        cam.rewrite(i, bv(&[0, 0, 0, 0]));
        let (hit, _) = cam.search_nearest(&bv(&[0, 0, 0, 0]));
        assert_eq!(hit.expect("non-empty").distance, 0);
    }

    #[test]
    fn endurance_tracking() {
        let mut tech = cells::fefet_2t();
        tech.endurance = Some(3);
        let mut cam = TcamArray::new(4, tech, TcamConfig::default());
        let (i, _) = cam.write(bv(&[1, 0, 1, 0]));
        assert!(!cam.endurance_exceeded());
        for _ in 0..5 {
            cam.rewrite(i, bv(&[0, 1, 0, 1]));
        }
        assert!(cam.endurance_exceeded());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_write_panics() {
        TcamArray::new(8, cells::cmos_16t(), TcamConfig::default()).write(BitVec::zeros(4));
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(TcamConfig::builder().build().unwrap(), TcamConfig::default());
    }

    #[test]
    fn builder_rejects_zero_segments() {
        let err = TcamConfig::builder().segments(0).build().unwrap_err();
        assert!(err.to_string().contains("segments"), "{err}");
    }

    #[test]
    fn builder_sets_segments() {
        assert_eq!(TcamConfig::builder().segments(4).build().unwrap().segments, 4);
    }
}
