//! Banked TCAM organizations (paper Sec. IV-C: a compact cell "could also
//! enable larger MANN memories" — but a single array's word-line/match-
//! line lengths are bounded, so large memories are built from banks
//! searched in parallel and combined by a global priority stage).

use crate::array::{NearestHit, TcamArray, TcamConfig};
use crate::cells::CellTech;
use enw_mann::encoding::TernaryWord;
use enw_numerics::bits::BitVec;
use enw_xmann::cost::Cost;

/// Arrays handled per parallel chunk during a bank search. One array per
/// chunk maximizes balance; the per-chunk overhead is tiny relative to a
/// whole-array Hamming scan.
const PAR_ARRAY_CHUNK: usize = 1;

/// Work units charged per stored bit when gating a bank search through
/// `enw_parallel::plan_chunks` (XOR + popcount both touch every bit).
const SEARCH_WORK_PER_BIT: usize = 2;

/// A bank of equally sized TCAM arrays behaving as one large memory.
///
/// Searches broadcast to every array concurrently (latency = one array
/// search + one combine stage; energy = sum over arrays), and writes fill
/// arrays in order.
///
/// # Example
///
/// ```
/// use enw_cam::bank::TcamBank;
/// use enw_cam::{array::TcamConfig, cells};
/// use enw_numerics::bits::BitVec;
///
/// let mut bank = TcamBank::new(16, 4, cells::fefet_2t(), TcamConfig::default());
/// for i in 0..6 {
///     let word: BitVec = (0..16).map(|b| (b + i) % 3 == 0).collect();
///     bank.write(word);
/// }
/// let q = BitVec::zeros(16);
/// let (hit, _cost) = bank.search_nearest(&q);
/// assert!(hit.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TcamBank {
    arrays: Vec<TcamArray>,
    rows_per_array: usize,
    cfg: TcamConfig,
    combine_stage_ns: f64,
    total: Cost,
}

impl TcamBank {
    /// An empty bank of arrays with `rows_per_array` capacity each.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_array` is zero (array construction panics on
    /// zero width).
    pub fn new(width: usize, rows_per_array: usize, tech: CellTech, cfg: TcamConfig) -> Self {
        assert!(rows_per_array > 0, "arrays need capacity");
        TcamBank {
            arrays: vec![TcamArray::new(width, tech, cfg)],
            rows_per_array,
            cfg,
            combine_stage_ns: 0.5,
            total: Cost::zero(),
        }
    }

    /// Word width.
    pub fn width(&self) -> usize {
        self.arrays[0].width()
    }

    /// Total stored words.
    pub fn len(&self) -> usize {
        self.arrays.iter().map(|a| a.len()).sum()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical arrays currently allocated.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Cumulative hardware cost.
    pub fn total_cost(&self) -> Cost {
        self.total
    }

    /// Appends a word, allocating a new array when the current one fills.
    /// Returns the global index.
    ///
    /// # Panics
    ///
    /// Panics if the word width mismatches.
    pub fn write(&mut self, word: BitVec) -> (usize, Cost) {
        if self.arrays.last().is_none_or(|a| a.len() >= self.rows_per_array) {
            let tech = *self.arrays[0].tech();
            self.arrays.push(TcamArray::new(self.width(), tech, self.cfg));
        }
        let bank_idx = self.arrays.len() - 1;
        let (local, cost) = self.arrays[bank_idx].write(word);
        self.total += cost;
        (bank_idx * self.rows_per_array + local, cost)
    }

    /// True when this search is large enough to fan out to worker
    /// threads (simulation-host parallelism; the modeled hardware always
    /// searches arrays concurrently). Gated through the shared
    /// `plan_chunks` work model with the average per-array bit count as
    /// the per-item work; chunking stays at [`PAR_ARRAY_CHUNK`] arrays.
    fn parallel_search(&self) -> bool {
        let per_array = SEARCH_WORK_PER_BIT * self.len() * self.width() / self.arrays.len().max(1);
        enw_parallel::plan_chunks(self.arrays.len(), per_array).is_some()
    }

    /// Books the deterministic host-side traffic of one whole-bank
    /// search: every stored limb is read once, plus the query/pattern
    /// words; the write side is the per-word match-line readout.
    fn record_search_traffic(&self, name: &'static str, query_words: u64) {
        let bits = (self.len() * self.width()) as u64;
        enw_trace::record_span_io(
            name,
            bits,
            bits / 8 + query_words * (self.width() as u64).div_ceil(8),
            (self.len() as u64).div_ceil(8),
        );
    }

    /// Per-array pure nearest hits, in array order. The match computation
    /// runs on worker threads for large banks; results come back in chunk
    /// order, so the merge below is identical to the serial sweep.
    fn nearest_per_array(&self, query: &BitVec) -> Vec<Option<NearestHit>> {
        if self.parallel_search() {
            enw_parallel::map_chunks(self.arrays.len(), PAR_ARRAY_CHUNK, |r| {
                r.map(|b| self.arrays[b].peek_nearest(query)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            self.arrays.iter().map(|a| a.peek_nearest(query)).collect()
        }
    }

    /// Nearest-Hamming search across every array in parallel; ties break
    /// toward the lowest global index (the global priority encoder).
    pub fn search_nearest(&mut self, query: &BitVec) -> (Option<NearestHit>, Cost) {
        self.record_search_traffic("cam/search_nearest", 1);
        let hits = self.nearest_per_array(query);
        let mut best: Option<NearestHit> = None;
        let mut energy = 0.0;
        let mut latency: f64 = 0.0;
        for (b, (arr, hit)) in self.arrays.iter_mut().zip(hits).enumerate() {
            let cost = arr.record_search();
            energy += cost.energy_pj;
            latency = latency.max(cost.latency_ns); // concurrent arrays
            if let Some(h) = hit {
                let global =
                    NearestHit { index: b * self.rows_per_array + h.index, distance: h.distance };
                best = match best {
                    None => Some(global),
                    Some(cur) if (global.distance, global.index) < (cur.distance, cur.index) => {
                        Some(global)
                    }
                    Some(cur) => Some(cur),
                };
            }
        }
        let cost = Cost::new(energy, latency + self.combine_stage_ns);
        self.total += cost;
        (best, cost)
    }

    /// Ternary match across all arrays; returns global indices.
    pub fn search_ternary(&mut self, pattern: &TernaryWord) -> (Vec<usize>, Cost) {
        // A ternary pattern ships two words (bits + care mask).
        self.record_search_traffic("cam/search_ternary", 2);
        let per_array: Vec<Vec<usize>> = if self.parallel_search() {
            enw_parallel::map_chunks(self.arrays.len(), PAR_ARRAY_CHUNK, |r| {
                r.map(|b| self.arrays[b].peek_ternary(pattern)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            self.arrays.iter().map(|a| a.peek_ternary(pattern)).collect()
        };
        let mut hits = Vec::new();
        let mut energy = 0.0;
        let mut latency: f64 = 0.0;
        for (b, (arr, local)) in self.arrays.iter_mut().zip(per_array).enumerate() {
            let cost = arr.record_search();
            energy += cost.energy_pj;
            latency = latency.max(cost.latency_ns);
            hits.extend(local.into_iter().map(|i| b * self.rows_per_array + i));
        }
        let cost = Cost::new(energy, latency + self.combine_stage_ns);
        self.total += cost;
        (hits, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use enw_numerics::rng::Rng64;

    fn word(bits: usize, rng: &mut Rng64) -> BitVec {
        (0..bits).map(|_| rng.bernoulli(0.5)).collect()
    }

    #[test]
    fn bank_grows_beyond_one_array() {
        let mut rng = Rng64::new(1);
        let mut bank = TcamBank::new(32, 4, cells::cmos_16t(), TcamConfig::default());
        for _ in 0..10 {
            bank.write(word(32, &mut rng));
        }
        assert_eq!(bank.len(), 10);
        assert_eq!(bank.array_count(), 3); // 4 + 4 + 2
    }

    #[test]
    fn global_indices_are_stable() {
        let mut rng = Rng64::new(2);
        let mut bank = TcamBank::new(32, 2, cells::cmos_16t(), TcamConfig::default());
        let mut words = Vec::new();
        for _ in 0..5 {
            let w = word(32, &mut rng);
            let (idx, _) = bank.write(w.clone());
            words.push((idx, w));
        }
        for (idx, w) in &words {
            let (hit, _) = bank.search_nearest(w);
            assert_eq!(hit.expect("stored").index, *idx);
        }
    }

    #[test]
    fn banked_search_matches_flat_array() {
        let mut rng = Rng64::new(3);
        let mut bank = TcamBank::new(48, 8, cells::cmos_16t(), TcamConfig::default());
        let mut flat = TcamArray::new(48, cells::cmos_16t(), TcamConfig::default());
        for _ in 0..30 {
            let w = word(48, &mut rng);
            bank.write(w.clone());
            flat.write(w);
        }
        for _ in 0..10 {
            let q = word(48, &mut rng);
            let (bh, _) = bank.search_nearest(&q);
            let (fh, _) = flat.search_nearest(&q);
            assert_eq!(bh.expect("non-empty").distance, fh.expect("non-empty").distance);
            assert_eq!(bh.expect("non-empty").index, fh.expect("non-empty").index);
        }
    }

    #[test]
    fn latency_stays_flat_as_banks_grow() {
        // The capacity-scaling argument: more banks cost energy, not
        // search latency (arrays search concurrently).
        let mut rng = Rng64::new(4);
        let mut small = TcamBank::new(32, 64, cells::fefet_2t(), TcamConfig::default());
        let mut large = TcamBank::new(32, 64, cells::fefet_2t(), TcamConfig::default());
        for _ in 0..32 {
            small.write(word(32, &mut rng));
        }
        for _ in 0..512 {
            large.write(word(32, &mut rng));
        }
        let q = word(32, &mut rng);
        let (_, cs) = small.search_nearest(&q);
        let (_, cl) = large.search_nearest(&q);
        assert_eq!(cs.latency_ns, cl.latency_ns);
        assert!(cl.energy_pj > 10.0 * cs.energy_pj);
    }

    #[test]
    fn parallel_bank_search_matches_serial_exactly() {
        // 600 words x 64 bits x 2 work units comfortably clears the
        // `plan_chunks` gate, so the multi-threaded runs exercise the
        // map_chunks path; results and booked costs must not depend on
        // the thread count.
        let mut rng = Rng64::new(5);
        let mut bank = TcamBank::new(64, 32, cells::cmos_16t(), TcamConfig::default());
        for _ in 0..600 {
            bank.write(word(64, &mut rng));
        }
        let queries: Vec<BitVec> = (0..6).map(|_| word(64, &mut rng)).collect();
        let pattern = {
            use enw_mann::encoding::cube_pattern;
            cube_pattern(&[7, 3, 11, 1, 9, 6, 2, 14, 0, 5, 8, 13, 4, 10, 15, 12], 2, 4)
        };
        let mut outcomes = Vec::new();
        for threads in [1usize, 3, 8] {
            let mut b = bank.clone();
            let result = enw_parallel::with_threads(threads, || {
                let nearest: Vec<_> = queries.iter().map(|q| b.search_nearest(q)).collect();
                let ternary = b.search_ternary(&pattern);
                (nearest, ternary, b.total_cost())
            });
            outcomes.push(result);
        }
        for other in &outcomes[1..] {
            assert_eq!(outcomes[0].0, other.0, "nearest hits/costs differ across thread counts");
            assert_eq!(outcomes[0].1, other.1, "ternary hits/cost differ across thread counts");
            assert_eq!(outcomes[0].2, other.2, "total cost differs across thread counts");
        }
    }

    #[test]
    fn ternary_search_spans_banks() {
        use enw_mann::encoding::{cube_pattern, encode_levels};
        let mut bank = TcamBank::new(8, 2, cells::cmos_16t(), TcamConfig::default());
        for a in 0..3u32 {
            for b in 0..2u32 {
                bank.write(encode_levels(&[a, b], 4));
            }
        }
        let (hits, _) = bank.search_ternary(&cube_pattern(&[1, 0], 1, 4));
        // Levels within Linf radius 1 of (1,0): a ∈ {0,1,2}, b ∈ {0,1} → all 6.
        assert_eq!(hits.len(), 6);
    }
}
